//! End-to-end tests of the compiled `good-db` binary: `-c` mode,
//! script-file mode, and the interactive REPL via piped stdin.

use std::io::Write;
use std::process::{Command, Stdio};

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_good-db"))
}

const SETUP: &str = "class Info; printable String string; functional Info name String; \
                     multivalued Info links-to Info; init";

#[test]
fn dash_c_mode_runs_commands() {
    let output = binary()
        .arg("-c")
        .arg(format!(
            "{SETUP}; insert Info as a; insert Info as b; edge a links-to b; stats"
        ))
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("2 nodes, 1 edges"), "{stdout}");
}

#[test]
fn dash_c_mode_handles_patterns_with_semicolons() {
    let output = binary()
        .arg("-c")
        .arg(format!(
            "{SETUP}; insert Info as a; value String \"x\" as n; edge a name n; \
             match {{ i: Info; s: String; i -name-> s; }}"
        ))
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("1 matching(s)"), "{stdout}");
}

#[test]
fn script_file_mode() {
    let mut path = std::env::temp_dir();
    path.push(format!("good-cli-script-{}.gdb", std::process::id()));
    std::fs::write(
        &path,
        "# build a tiny base\n\
         class Info\n\
         printable String string\n\
         functional Info name String\n\
         init\n\
         insert Info as a\n\
         value String \"hello\" as n\n\
         edge a name n\n\
         match {\n  i: Info;\n  s: String = \"hello\";\n  i -name-> s;\n}\n\
         validate\n",
    )
    .expect("write script");
    let output = binary().arg(&path).output().expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("1 matching(s)"), "{stdout}");
    assert!(stdout.contains("all invariants hold"), "{stdout}");
    std::fs::remove_file(path).expect("cleanup");
}

#[test]
fn script_errors_exit_nonzero() {
    let output = binary()
        .arg("-c")
        .arg("complete nonsense")
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown command"), "{stderr}");
}

#[test]
fn repl_reads_multiline_patterns_from_stdin() {
    let mut child = binary()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    let stdin = child.stdin.as_mut().expect("stdin");
    stdin
        .write_all(
            b"class Info\nprintable String string\nfunctional Info name String\ninit\n\
              insert Info as a\nvalue String \"hi\" as n\nedge a name n\n\
              match {\n i: Info;\n s: String;\n i -name-> s;\n}\nquit\n",
        )
        .expect("write stdin");
    let output = child.wait_with_output().expect("binary finishes");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("good-db"), "{stdout}");
    assert!(stdout.contains("1 matching(s)"), "{stdout}");
}
