//! The GOODQL abstract syntax tree and its pretty-printer.
//!
//! GOODQL is a small GQL/Cypher-flavored MATCH/WHERE/RETURN fragment
//! ("Foundations of Modern Query Languages for Graph Databases" is the
//! semantic guide). One query string compiles to one GOOD pattern plus
//! a path-derivation program (see [`crate::compile`]); the fragment is
//! deliberately tractable — conjunctive patterns, printable predicates,
//! crossed edges, and property paths over homogeneous edge labels.
//!
//! The pretty-printer is canonical: `parse ∘ print` is the identity on
//! normalized ASTs (property-tested in `tests/parser_props.rs`), which
//! is what lets the random query generator drive the three-backend
//! differential oracle through the full text pipeline.

use good_core::value::Value;
use std::fmt;

/// A parsed GOODQL query.
///
/// ```text
/// MATCH (a:Info)-[:links-to*1..3]->(b:Info), (a)-[:name]->(n:String)
/// WHERE n STARTS WITH "info" AND NOT (b)-[:links-to]->(a)
/// RETURN DISTINCT a, b LIMIT 10
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The comma-separated MATCH chains.
    pub chains: Vec<Chain>,
    /// The AND-separated WHERE predicates (possibly empty).
    pub predicates: Vec<Predicate>,
    /// `RETURN DISTINCT`?
    pub distinct: bool,
    /// The returned variables, in RETURN order.
    pub returns: Vec<String>,
    /// `LIMIT n`, applied after canonical row ordering.
    pub limit: Option<u64>,
}

/// One MATCH chain: a head node pattern followed by link/node pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// The leftmost node pattern.
    pub head: NodePattern,
    /// Each `-[:edge]->` link and the node pattern it lands on.
    pub links: Vec<(Link, NodePattern)>,
}

/// A `(var:Label = literal)` node pattern. Label and literal are both
/// optional; a variable may be declared in one chain and referenced
/// bare in another.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePattern {
    /// The variable name.
    pub var: String,
    /// Optional class label.
    pub label: Option<String>,
    /// Optional exact print value (printable classes only).
    pub value: Option<Value>,
    /// Source byte offset (for error carets; ignored by `normalized`).
    pub pos: usize,
}

/// A `-[:edge]->` or `-[:edge*m..M]->` link.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// The edge label.
    pub edge: String,
    /// Property-path repetition, if starred.
    pub path: Option<PathSpec>,
    /// Source byte offset.
    pub pos: usize,
}

/// Path repetition bounds: `*` is `1..`, `*0..` zero-or-more, `*m..M`
/// an inclusive walk-length window, `*k` exactly `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSpec {
    /// Minimum walk length (0 admits the identity pair).
    pub min: u32,
    /// Maximum walk length; `None` is unbounded (transitive closure).
    pub max: Option<u32>,
}

/// Comparison operators of the WHERE clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// One WHERE predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `var OP literal`.
    Cmp {
        /// The printable variable.
        var: String,
        /// The operator.
        op: CmpOp,
        /// The literal to compare against.
        value: Value,
        /// Source byte offset.
        pos: usize,
    },
    /// `var CONTAINS "needle"` (strings only).
    Contains {
        /// The printable variable.
        var: String,
        /// The substring.
        needle: String,
        /// Source byte offset.
        pos: usize,
    },
    /// `var STARTS WITH "prefix"` (strings only).
    StartsWith {
        /// The printable variable.
        var: String,
        /// The prefix.
        prefix: String,
        /// Source byte offset.
        pos: usize,
    },
    /// `var BETWEEN lo AND hi` (inclusive).
    Between {
        /// The printable variable.
        var: String,
        /// Lower bound.
        lo: Value,
        /// Upper bound.
        hi: Value,
        /// Source byte offset.
        pos: usize,
    },
    /// `var IN [a, b, c]`.
    OneOf {
        /// The printable variable.
        var: String,
        /// The candidate values.
        values: Vec<Value>,
        /// Source byte offset.
        pos: usize,
    },
    /// `NOT (src)-[:edge]->(dst)` — a crossed edge (Figure 26).
    NoEdge {
        /// Source variable.
        src: String,
        /// Edge label.
        edge: String,
        /// Destination variable.
        dst: String,
        /// Source byte offset.
        pos: usize,
    },
}

impl Predicate {
    /// The source byte offset (for error carets).
    pub fn pos(&self) -> usize {
        match self {
            Predicate::Cmp { pos, .. }
            | Predicate::Contains { pos, .. }
            | Predicate::StartsWith { pos, .. }
            | Predicate::Between { pos, .. }
            | Predicate::OneOf { pos, .. }
            | Predicate::NoEdge { pos, .. } => *pos,
        }
    }
}

impl Query {
    /// The query with all source positions zeroed — the equality domain
    /// of the `parse ∘ print` identity property.
    pub fn normalized(&self) -> Query {
        let mut out = self.clone();
        for chain in &mut out.chains {
            chain.head.pos = 0;
            for (link, node) in &mut chain.links {
                link.pos = 0;
                node.pos = 0;
            }
        }
        for predicate in &mut out.predicates {
            match predicate {
                Predicate::Cmp { pos, .. }
                | Predicate::Contains { pos, .. }
                | Predicate::StartsWith { pos, .. }
                | Predicate::Between { pos, .. }
                | Predicate::OneOf { pos, .. }
                | Predicate::NoEdge { pos, .. } => *pos = 0,
            }
        }
        out
    }
}

/// Render a value as a GOODQL literal. The output parses back to an
/// equal value (bytes excepted — they have no literal syntax).
pub fn render_value(value: &Value) -> String {
    match value {
        Value::Str(text) => {
            let mut out = String::with_capacity(text.len() + 2);
            out.push('"');
            for c in text.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    other => out.push(other),
                }
            }
            out.push('"');
            out
        }
        Value::Int(int) => int.to_string(),
        Value::Real(real) => {
            let rendered = real.get().to_string();
            if rendered.contains('.') || rendered.contains('e') || rendered.contains("inf") {
                rendered
            } else {
                format!("{rendered}.0")
            }
        }
        Value::Bool(b) => b.to_string(),
        Value::Date(date) => format!("date({:04}-{:02}-{:02})", date.year, date.month, date.day),
        Value::Bytes(_) => "\"<bytes>\"".to_string(),
    }
}

impl fmt::Display for PathSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min, self.max) {
            (1, None) => write!(f, "*"),
            (min, None) => write!(f, "*{min}.."),
            (min, Some(max)) if min == max => write!(f, "*{min}"),
            (min, Some(max)) => write!(f, "*{min}..{max}"),
        }
    }
}

impl fmt::Display for NodePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}", self.var)?;
        if let Some(label) = &self.label {
            write!(f, ":{label}")?;
        }
        if let Some(value) = &self.value {
            write!(f, " = {}", render_value(value))?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.path {
            Some(path) => write!(f, "-[:{}{}]->", self.edge, path),
            None => write!(f, "-[:{}]->", self.edge),
        }
    }
}

impl fmt::Display for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        for (link, node) in &self.links {
            write!(f, "{link}{node}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp { var, op, value, .. } => {
                write!(f, "{var} {} {}", op.symbol(), render_value(value))
            }
            Predicate::Contains { var, needle, .. } => {
                write!(f, "{var} CONTAINS {}", render_value(&Value::str(needle)))
            }
            Predicate::StartsWith { var, prefix, .. } => {
                write!(f, "{var} STARTS WITH {}", render_value(&Value::str(prefix)))
            }
            Predicate::Between { var, lo, hi, .. } => {
                write!(
                    f,
                    "{var} BETWEEN {} AND {}",
                    render_value(lo),
                    render_value(hi)
                )
            }
            Predicate::OneOf { var, values, .. } => {
                let rendered: Vec<String> = values.iter().map(render_value).collect();
                write!(f, "{var} IN [{}]", rendered.join(", "))
            }
            Predicate::NoEdge { src, edge, dst, .. } => write!(f, "NOT ({src})-[:{edge}]->({dst})"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MATCH ")?;
        for (index, chain) in self.chains.iter().enumerate() {
            if index > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{chain}")?;
        }
        if !self.predicates.is_empty() {
            write!(f, " WHERE ")?;
            for (index, predicate) in self.predicates.iter().enumerate() {
                if index > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{predicate}")?;
            }
        }
        write!(f, " RETURN ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        write!(f, "{}", self.returns.join(", "))?;
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        Ok(())
    }
}
