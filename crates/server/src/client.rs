//! A small blocking client for the wire protocol: the scripted driver
//! behind `good-db client`, the protocol test suites, and the E17
//! loopback bench.
//!
//! The client is single-threaded but **pipelines**: [`Client::submit`]
//! fires without waiting, [`Client::wait_ack`] redeems replies by
//! request id, buffering any out-of-order frames in between. For the
//! common case, [`Client::submit_wait`] does both, and
//! [`Client::submit_wait_retrying`] additionally honours the server's
//! typed backoff hints (`QueueFull`/`QuotaExceeded`/`Overloaded`).

use crate::proto::{read_frame, write_frame, ErrCode, Frame, ProtoError, SnapshotInfo};
use good_core::program::Program;
use std::collections::VecDeque;
use std::fmt;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Stream-level I/O failure (connect, read, write).
    Io(
        /// The error, rendered.
        String,
    ),
    /// The peer broke the protocol (bad frame, unexpected type).
    Proto(
        /// What was wrong.
        String,
    ),
    /// The server refused a request with a typed error frame.
    Rejected {
        /// The typed refusal.
        code: ErrCode,
        /// Backoff hint for retryable codes, milliseconds.
        retry_after_ms: u32,
        /// Human-readable detail.
        detail: String,
    },
    /// The server said [`Frame::Goodbye`] and the stream is closing.
    ServerClosed(
        /// The server's stated reason.
        String,
    ),
    /// The stream ended without a `Goodbye`.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(detail) => write!(f, "i/o failure: {detail}"),
            ClientError::Proto(detail) => write!(f, "protocol violation: {detail}"),
            ClientError::Rejected {
                code,
                retry_after_ms,
                detail,
            } => write!(
                f,
                "rejected ({code}, retry after {retry_after_ms}ms): {detail}"
            ),
            ClientError::ServerClosed(reason) => write!(f, "server closed: {reason}"),
            ClientError::Disconnected => f.write_str("server disconnected"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(err: ProtoError) -> ClientError {
        match err {
            ProtoError::Io(detail) => ClientError::Io(detail),
            ProtoError::Timeout => ClientError::Io("read timed out".into()),
            other => ClientError::Proto(other.to_string()),
        }
    }
}

/// A query result: the epoch answered at, the pattern's column names,
/// and one row of rendered cells per matching.
pub type QueryRows = (u64, Vec<String>, Vec<Vec<String>>);

/// A redeemed acknowledgement, the client-side view of [`Frame::Ack`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireAck {
    /// The request id this ack answers.
    pub request: u64,
    /// Snapshot epoch published by the committing batch.
    pub epoch: u64,
    /// Global commit sequence number; `None` = model-rejected.
    pub commit_seq: Option<u64>,
    /// The server's report or the model's rejection.
    pub outcome: Result<String, String>,
}

/// One protocol connection: `Hello` handshake on connect, pipelined
/// submits, snapshot/query reads, `Goodbye` on close.
pub struct Client {
    reader: BufReader<TcpStream>,
    /// Buffered so pipelined submits coalesce into few syscalls; every
    /// blocking read flushes first (see [`Client::recv`]).
    writer: BufWriter<TcpStream>,
    session: u64,
    next_request: u64,
    /// Replies read while waiting for a different request id.
    pending: VecDeque<Frame>,
}

impl Client {
    /// Connect and shake hands. The server assigns the session id.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        Client::from_stream(stream)
    }

    /// Handshake over an already-open stream (tests use this to craft
    /// sockets with specific timeouts).
    pub fn from_stream(stream: TcpStream) -> Result<Client, ClientError> {
        let _ = stream.set_nodelay(true);
        let writer = stream
            .try_clone()
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(writer),
            session: 0,
            next_request: 1,
            pending: VecDeque::new(),
        };
        client.send(&Frame::Hello { session: 0 })?;
        match client.recv()? {
            Frame::Hello { session } => {
                client.session = session;
                Ok(client)
            }
            Frame::Err {
                code,
                detail,
                retry_after_ms,
                ..
            } => Err(ClientError::Rejected {
                code,
                retry_after_ms,
                detail,
            }),
            other => Err(ClientError::Proto(format!(
                "expected Hello, got {}",
                other.type_name()
            ))),
        }
    }

    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Set the read timeout for subsequent replies.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(|e| ClientError::Io(e.to_string()))
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        write_frame(&mut self.writer, frame).map_err(ClientError::from)
    }

    fn recv(&mut self) -> Result<Frame, ClientError> {
        // Anything still buffered must reach the server before we park
        // on its reply.
        self.writer
            .flush()
            .map_err(|e| ClientError::Io(e.to_string()))?;
        match read_frame(&mut self.reader) {
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => Err(ClientError::Disconnected),
            Err(err) => Err(err.into()),
        }
    }

    fn frame_request(frame: &Frame) -> Option<u64> {
        match frame {
            Frame::Ack { request, .. }
            | Frame::Rows { request, .. }
            | Frame::Snapshot { request, .. }
            | Frame::StatsReply { request, .. }
            | Frame::Err { request, .. } => Some(*request),
            _ => None,
        }
    }

    /// The next reply for `request`, buffering unrelated frames.
    /// `Err` frames for the request become [`ClientError::Rejected`];
    /// connection-scoped `Err` frames (request 0) reject too.
    fn recv_matching(&mut self, request: u64) -> Result<Frame, ClientError> {
        if let Some(position) = self
            .pending
            .iter()
            .position(|f| Self::frame_request(f) == Some(request))
        {
            let frame = self.pending_remove(position);
            return self.settle(frame, request);
        }
        loop {
            let frame = self.recv()?;
            match &frame {
                Frame::Goodbye { reason } => return Err(ClientError::ServerClosed(reason.clone())),
                _ => {
                    let id = Self::frame_request(&frame);
                    if id == Some(request) || id == Some(0) {
                        return self.settle(frame, request);
                    }
                    self.pending.push_back(frame);
                }
            }
        }
    }

    fn pending_remove(&mut self, position: usize) -> Frame {
        self.pending.remove(position).expect("position valid")
    }

    fn settle(&mut self, frame: Frame, _request: u64) -> Result<Frame, ClientError> {
        if let Frame::Err {
            code,
            retry_after_ms,
            detail,
            ..
        } = frame
        {
            return Err(ClientError::Rejected {
                code,
                retry_after_ms,
                detail,
            });
        }
        Ok(frame)
    }

    /// Flush buffered submits to the server. Every blocking read
    /// flushes implicitly; call this only when pipelined submits must
    /// reach the server before any reply is awaited.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer
            .flush()
            .map_err(|e| ClientError::Io(e.to_string()))
    }

    /// Fire one submit without waiting; returns its request id. The
    /// frame is buffered — it reaches the server at the next blocking
    /// read ([`Client::wait_ack`] etc.) or explicit [`Client::flush`].
    pub fn submit(&mut self, program: &Program) -> Result<u64, ClientError> {
        self.submit_traced(program, None)
    }

    /// [`Client::submit`] with a trace id carried on the wire: the
    /// server propagates it through its commit pipeline spans so this
    /// request's timeline (queue-wait → batch → fsync → publish →
    /// ack) can be reconstructed from a capture. Pass the request id
    /// itself (or any client-chosen correlation value).
    pub fn submit_traced(
        &mut self,
        program: &Program,
        trace: Option<u64>,
    ) -> Result<u64, ClientError> {
        let request = self.next_request;
        self.next_request += 1;
        let bytes = crate::proto::encode_submit(request, program, trace);
        self.writer
            .write_all(&bytes)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(request)
    }

    /// Redeem the ack for a pipelined submit.
    pub fn wait_ack(&mut self, request: u64) -> Result<WireAck, ClientError> {
        match self.recv_matching(request)? {
            Frame::Ack {
                request,
                epoch,
                commit_seq,
                outcome,
            } => Ok(WireAck {
                request,
                epoch,
                commit_seq,
                outcome,
            }),
            other => Err(ClientError::Proto(format!(
                "expected Ack, got {}",
                other.type_name()
            ))),
        }
    }

    /// Submit one program and wait for its ack.
    pub fn submit_wait(&mut self, program: &Program) -> Result<WireAck, ClientError> {
        let request = self.submit(program)?;
        self.wait_ack(request)
    }

    /// [`Client::submit_wait`], honouring the server's typed backoff:
    /// retryable refusals sleep `retry_after_ms` and resubmit, up to
    /// `max_retries` times. Non-retryable refusals surface at once.
    pub fn submit_wait_retrying(
        &mut self,
        program: &Program,
        max_retries: usize,
    ) -> Result<WireAck, ClientError> {
        let mut attempts = 0;
        loop {
            match self.submit_wait(program) {
                Err(ClientError::Rejected {
                    code,
                    retry_after_ms,
                    ..
                }) if code.retryable() && attempts < max_retries => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1) as u64));
                }
                other => return other,
            }
        }
    }

    /// Run a pattern query against the current snapshot (`at = None`)
    /// or a retained MVCC epoch. Returns `(epoch, columns, rows)`.
    pub fn query(&mut self, pattern: &str, at: Option<u64>) -> Result<QueryRows, ClientError> {
        self.query_traced(pattern, at, None)
    }

    /// [`Client::query`] with a wire-carried trace id (see
    /// [`Client::submit_traced`]).
    pub fn query_traced(
        &mut self,
        pattern: &str,
        at: Option<u64>,
        trace: Option<u64>,
    ) -> Result<QueryRows, ClientError> {
        let request = self.next_request;
        self.next_request += 1;
        self.send(&Frame::Query {
            request,
            at,
            pattern: pattern.into(),
            trace,
        })?;
        match self.recv_matching(request)? {
            Frame::Rows {
                epoch,
                columns,
                rows,
                ..
            } => Ok((epoch, columns, rows)),
            other => Err(ClientError::Proto(format!(
                "expected Rows, got {}",
                other.type_name()
            ))),
        }
    }

    /// Describe a committed snapshot; `want_dot` asks for the full
    /// DOT render.
    pub fn snapshot(
        &mut self,
        at: Option<u64>,
        want_dot: bool,
    ) -> Result<SnapshotInfo, ClientError> {
        let request = self.next_request;
        self.next_request += 1;
        self.send(&Frame::Snapshot {
            request,
            at,
            want_dot,
            info: None,
        })?;
        match self.recv_matching(request)? {
            Frame::Snapshot {
                info: Some(info), ..
            } => Ok(info),
            other => Err(ClientError::Proto(format!(
                "expected Snapshot reply, got {}",
                other.type_name()
            ))),
        }
    }

    /// Fetch the server's live introspection snapshot (metrics, MVCC
    /// ring, admission state, slow-query ring) as a JSON string —
    /// the `Stats` frame round trip.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let request = self.next_request;
        self.next_request += 1;
        self.send(&Frame::Stats { request })?;
        match self.recv_matching(request)? {
            Frame::StatsReply { json, .. } => Ok(json),
            other => Err(ClientError::Proto(format!(
                "expected StatsReply, got {}",
                other.type_name()
            ))),
        }
    }

    /// Close gracefully: send `Goodbye`, read until the server's
    /// `Goodbye` (or EOF), drop the stream.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        self.send(&Frame::Goodbye {
            reason: "done".into(),
        })?;
        self.writer
            .flush()
            .map_err(|e| ClientError::Io(e.to_string()))?;
        loop {
            match read_frame(&mut self.reader) {
                Ok(Some(Frame::Goodbye { .. })) | Ok(None) => return Ok(()),
                Ok(Some(_)) => continue, // late acks flushing out
                Err(_) => return Ok(()), // peer raced the close
            }
        }
    }
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("session", &self.session)
            .field("next_request", &self.next_request)
            .field("pending", &self.pending.len())
            .finish()
    }
}
