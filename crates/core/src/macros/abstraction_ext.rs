//! Derived abstractions (the closing remarks of Section 3.5).
//!
//! The paper defines abstraction only over one single multivalued
//! property and asserts two reductions, both implemented (and tested)
//! here as macro expansions over the core operations:
//!
//! * "abstraction over functional properties is expressible using the
//!   other GOOD operations" — [`abstraction_over_functional`] groups
//!   objects by the *value* of a functional property using one node
//!   addition per group plus an edge addition (no `AB` at all);
//! * "abstraction over multiple properties can always be reduced to
//!   abstraction over one single property" —
//!   [`abstraction_over_two_properties`] wraps both properties'
//!   targets into shared wrapper objects behind a single fresh
//!   multivalued property, then applies one ordinary abstraction.

use crate::error::{GoodError, Result};
use crate::instance::Instance;
use crate::label::{EdgeKind, Label};
use crate::ops::{Abstraction, EdgeAddition, NodeAddition, OpReport};
use crate::pattern::Pattern;
use crate::program::Env;
use good_graph::NodeId;

/// Group the images of `node` (under `pattern`) by the value of the
/// *functional* property `key`: for every distinct key target a
/// `group_label` object is created with a functional `key-of` edge to
/// the shared target, and multivalued `member_edge` edges to the
/// members. Matched objects *without* the property form one extra
/// group (mirroring `AB`'s empty-set class).
///
/// Uses only node and edge additions — the paper's claim that
/// functional abstraction needs no `AB`.
pub fn abstraction_over_functional(
    db: &mut Instance,
    env: &mut Env,
    pattern: &Pattern,
    node: NodeId,
    group_label: impl Into<Label>,
    member_edge: impl Into<Label>,
    key: impl Into<Label>,
) -> Result<OpReport> {
    let group_label = group_label.into();
    let member_edge = member_edge.into();
    let key = key.into();
    if db.scheme().edge_kind(&key) != Some(EdgeKind::Functional) {
        return Err(GoodError::EdgeKindMismatch {
            label: key,
            registered: EdgeKind::Multivalued,
            used: EdgeKind::Functional,
        });
    }
    let node_label = pattern
        .node_label(node)
        .ok_or_else(|| GoodError::NodeNotInPattern(format!("{node:?}")))?
        .clone();
    // The key's target label, from the scheme (needed to build typed
    // pattern nodes).
    let target_label = db
        .scheme()
        .triples()
        .find(|(src, edge, _)| src == &node_label && edge == &key)
        .map(|(_, _, dst)| dst.clone())
        .ok_or_else(|| GoodError::EdgeNotInScheme {
            src: node_label.clone(),
            edge: key.clone(),
            dst: Label::new("?"),
        })?;
    let key_of = Label::new(format!("{group_label}-key"));
    let mut report = OpReport::default();

    // 1. NA: one group object per distinct key value among matched
    //    nodes (the bold edge to the shared target deduplicates).
    let mut with_key = pattern.clone();
    let target = with_key.node(target_label.clone());
    with_key.edge(node, key.clone(), target);
    env.burn_fuel()?;
    report.absorb(
        &NodeAddition::new(
            with_key.clone(),
            group_label.clone(),
            [(key_of.clone(), target)],
        )
        .apply(db)?,
    );

    // 2. EA: connect members to their group (same key target).
    let mut join = with_key;
    let group = join.node(group_label.clone());
    join.edge(group, key_of.clone(), target);
    env.burn_fuel()?;
    report.absorb(&EdgeAddition::multivalued(join, group, member_edge.clone(), node).apply(db)?);

    // 3. The keyless class: matched nodes with no key edge share one
    //    group, held in its own class `<group>-none` (a node addition
    //    with no bold edges creates at most one object of a class, and
    //    only if the crossed pattern has a matching).
    let none_label = Label::new(format!("{group_label}-none"));
    let mut keyless = pattern.clone();
    let missing = keyless.negated_node(target_label);
    keyless.negated_edge(node, key.clone(), missing);
    env.burn_fuel()?;
    report.absorb(&NodeAddition::new(keyless.clone(), none_label.clone(), []).apply(db)?);
    let mut join = keyless;
    let group = join.node(none_label);
    env.burn_fuel()?;
    report.absorb(&EdgeAddition::multivalued(join, group, member_edge, node).apply(db)?);
    Ok(report)
}

/// The labels produced by [`abstraction_over_two_properties`].
#[derive(Debug, Clone)]
pub struct TwoPropertyAbstraction {
    /// The group class.
    pub group_label: Label,
    /// The member edge from groups to grouped objects.
    pub member_edge: Label,
    /// The wrapper class standing for tagged property targets.
    pub wrap_label: Label,
    /// The fresh combined multivalued property.
    pub combined_edge: Label,
}

/// Group the images of `node` by *simultaneous* set-equality of two
/// multivalued properties `beta1` and `beta2`, by reduction to a single
/// abstraction:
///
/// 1. every `beta1` target `t` gets a shared wrapper object
///    `W -(v1)→ t`; every `beta2` target a wrapper `W -(v2)→ t`
///    (node additions — wrappers deduplicate per target and per
///    property because `v1`/`v2` are distinct functional labels);
/// 2. a fresh multivalued property `combined` connects each object to
///    the wrappers of its `beta1` and `beta2` targets (edge additions);
/// 3. one ordinary [`Abstraction`] over `combined`.
///
/// Two objects then share a group iff their `beta1` sets *and* their
/// `beta2` sets coincide — the paper's multi-property reduction.
#[allow(clippy::too_many_arguments)] // mirrors AB's seven formal parameters plus env
pub fn abstraction_over_two_properties(
    db: &mut Instance,
    env: &mut Env,
    pattern: &Pattern,
    node: NodeId,
    group_label: impl Into<Label>,
    member_edge: impl Into<Label>,
    beta1: impl Into<Label>,
    beta2: impl Into<Label>,
) -> Result<TwoPropertyAbstraction> {
    let group_label = group_label.into();
    let member_edge = member_edge.into();
    let beta1 = beta1.into();
    let beta2 = beta2.into();
    for beta in [&beta1, &beta2] {
        if db.scheme().edge_kind(beta) != Some(EdgeKind::Multivalued) {
            return Err(GoodError::EdgeKindMismatch {
                label: beta.clone(),
                registered: EdgeKind::Functional,
                used: EdgeKind::Multivalued,
            });
        }
    }
    let node_label = pattern
        .node_label(node)
        .ok_or_else(|| GoodError::NodeNotInPattern(format!("{node:?}")))?
        .clone();
    let target_of = |beta: &Label| -> Result<Label> {
        db.scheme()
            .triples()
            .find(|(src, edge, _)| src == &node_label && edge == beta)
            .map(|(_, _, dst)| dst.clone())
            .ok_or_else(|| GoodError::EdgeNotInScheme {
                src: node_label.clone(),
                edge: beta.clone(),
                dst: Label::new("?"),
            })
    };
    let target1 = target_of(&beta1)?;
    let target2 = target_of(&beta2)?;

    let wrap_label = Label::new(format!("{group_label}-wrap"));
    let combined_edge = Label::new(format!("{group_label}-combined"));
    let v1 = Label::new(format!("{group_label}-v1"));
    let v2 = Label::new(format!("{group_label}-v2"));

    // 1. Wrappers per (property, target).
    for (beta, val_edge, target_label) in [(&beta1, &v1, &target1), (&beta2, &v2, &target2)] {
        let mut p = pattern.clone();
        let target = p.node(target_label.clone());
        p.edge(node, beta.clone(), target);
        env.burn_fuel()?;
        NodeAddition::new(p, wrap_label.clone(), [(val_edge.clone(), target)]).apply(db)?;
    }

    // 2. The combined property.
    for (beta, val_edge, target_label) in [(&beta1, &v1, &target1), (&beta2, &v2, &target2)] {
        let mut p = pattern.clone();
        let target = p.node(target_label.clone());
        p.edge(node, beta.clone(), target);
        let wrap = p.node(wrap_label.clone());
        p.edge(wrap, val_edge.clone(), target);
        env.burn_fuel()?;
        EdgeAddition::multivalued(p, node, combined_edge.clone(), wrap).apply(db)?;
    }

    // 3. One ordinary abstraction over the combined property.
    env.burn_fuel()?;
    Abstraction::new(
        pattern.clone(),
        node,
        group_label.clone(),
        member_edge.clone(),
        combined_edge.clone(),
    )
    .apply(db)?;

    Ok(TwoPropertyAbstraction {
        group_label,
        member_edge,
        wrap_label,
        combined_edge,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{Scheme, SchemeBuilder};
    use crate::value::ValueType;
    use std::collections::BTreeSet;

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .object("Topic")
            .printable("Date", ValueType::Date)
            .functional("Info", "created", "Date")
            .multivalued("Info", "links-to", "Info")
            .multivalued("Info", "about", "Topic")
            .build()
    }

    #[test]
    fn functional_abstraction_groups_by_value() {
        use crate::value::Value;
        let mut db = Instance::new(scheme());
        let d1 = db.add_printable("Date", Value::date(1990, 1, 12)).unwrap();
        let d2 = db.add_printable("Date", Value::date(1990, 1, 14)).unwrap();
        let mut infos = Vec::new();
        for date in [d1, d1, d2] {
            let info = db.add_object("Info").unwrap();
            db.add_edge(info, "created", date).unwrap();
            infos.push(info);
        }
        let dateless = db.add_object("Info").unwrap();
        infos.push(dateless);

        let mut pattern = Pattern::new();
        let node = pattern.node("Info");
        abstraction_over_functional(
            &mut db,
            &mut Env::new(),
            &pattern,
            node,
            "ByDate",
            "has",
            "created",
        )
        .unwrap();

        // Two keyed groups (Jan 12 with two members, Jan 14 with one)
        // plus the keyless group in its companion class.
        assert_eq!(db.label_count(&"ByDate".into()), 2);
        assert_eq!(db.label_count(&"ByDate-none".into()), 1);
        let has = Label::new("has");
        let group_of = |member| -> Vec<NodeId> { db.sources(member, &has).collect() };
        assert_eq!(group_of(infos[0]), group_of(infos[1]));
        assert_ne!(group_of(infos[0]), group_of(infos[2]));
        assert_eq!(group_of(dateless).len(), 1);
        assert_ne!(group_of(dateless), group_of(infos[2]));
        db.validate().unwrap();
    }

    #[test]
    fn functional_abstraction_requires_a_functional_key() {
        let mut db = Instance::new(scheme());
        let mut pattern = Pattern::new();
        let node = pattern.node("Info");
        assert!(matches!(
            abstraction_over_functional(
                &mut db,
                &mut Env::new(),
                &pattern,
                node,
                "G",
                "has",
                "links-to"
            ),
            Err(GoodError::EdgeKindMismatch { .. })
        ));
    }

    /// Ground truth for the two-property grouping.
    fn expected_groups(db: &Instance, members: &[NodeId]) -> BTreeSet<Vec<NodeId>> {
        let links = Label::new("links-to");
        let about = Label::new("about");
        let mut classes: std::collections::BTreeMap<_, Vec<NodeId>> = Default::default();
        for &member in members {
            let key = (db.target_set(member, &links), db.target_set(member, &about));
            classes.entry(key).or_default().push(member);
        }
        classes.into_values().collect()
    }

    #[test]
    fn two_property_abstraction_matches_simultaneous_equality() {
        let mut db = Instance::new(scheme());
        let topic_a = db.add_object("Topic").unwrap();
        let topic_b = db.add_object("Topic").unwrap();
        let hub = db.add_object("Info").unwrap();
        // Members with various (links-to, about) combinations:
        // m0, m1: same links {hub}, same topics {a}     -> together
        // m2:     same links {hub}, different topics {b} -> alone
        // m3:     no links,        topics {a}           -> alone
        // m4, m5: no links, no topics                   -> together
        let mut members = Vec::new();
        for (link, topics) in [
            (true, vec![topic_a]),
            (true, vec![topic_a]),
            (true, vec![topic_b]),
            (false, vec![topic_a]),
            (false, vec![]),
            (false, vec![]),
        ] {
            let info = db.add_object("Info").unwrap();
            if link {
                db.add_edge(info, "links-to", hub).unwrap();
            }
            for topic in topics {
                db.add_edge(info, "about", topic).unwrap();
            }
            members.push(info);
        }

        let mut pattern = Pattern::new();
        let node = pattern.node("Info");
        let result = abstraction_over_two_properties(
            &mut db,
            &mut Env::new(),
            &pattern,
            node,
            "Both",
            "member",
            "links-to",
            "about",
        )
        .unwrap();

        // Derived groups, read back through the member edge — restricted
        // to our six members (the hub is also an Info and lands in the
        // no-links/no-topics class along with m4/m5: it genuinely has
        // equal sets, which is AB's iff semantics).
        let mut derived: BTreeSet<Vec<NodeId>> = BTreeSet::new();
        for group in db.nodes_with_label(&result.group_label) {
            let mut class: Vec<NodeId> = db
                .targets(group, &result.member_edge)
                .filter(|m| members.contains(m))
                .collect();
            class.sort();
            if !class.is_empty() {
                derived.insert(class);
            }
        }
        let mut expected = expected_groups(&db, &members);
        // Normalize ordering inside classes.
        expected = expected
            .into_iter()
            .map(|mut class| {
                class.sort();
                class
            })
            .collect();
        assert_eq!(derived, expected);
        db.validate().unwrap();
    }

    #[test]
    fn two_property_abstraction_requires_multivalued_betas() {
        let mut db = Instance::new(scheme());
        let mut pattern = Pattern::new();
        let node = pattern.node("Info");
        assert!(matches!(
            abstraction_over_two_properties(
                &mut db,
                &mut Env::new(),
                &pattern,
                node,
                "G",
                "m",
                "created",
                "about"
            ),
            Err(GoodError::EdgeKindMismatch { .. })
        ));
    }
}
