//! `good-tarski` — the Tarski Data Model backend for GOOD (Section 5).
//!
//! The paper's concluding remarks describe the Indiana University
//! implementation route: "a binary relational model, called the Tarski
//! Data Model, is used to store and compute with GOOD databases. The
//! model includes its own (binary) relational algebra, which is
//! inspired by Tarski's work" (paper reference 27).
//!
//! This crate rebuilds that route from scratch:
//!
//! * [`binrel`] — binary relations with the Tarski operations (union,
//!   intersection, difference, relative product/composition, converse,
//!   identity and coreflexive restriction, transitive closure);
//! * [`algebra`] — an expression language over named binary relations
//!   plus an evaluator, with the classical algebraic laws property-
//!   tested;
//! * [`store`] — a GOOD instance decomposed into binary relations: one
//!   relation per edge label, one coreflexive per class, one
//!   coreflexive per printable constant;
//! * [`backend`] — pattern matching over the store: every pattern edge
//!   compiles to a Tarski expression (class-coreflexive ; edge ;
//!   class-coreflexive), and the conjunctive query over those edge
//!   relations is solved by a variable join. Differentially tested
//!   against `good_core::matching` and raced in benchmark E7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod backend;
pub mod binrel;
pub mod store;

pub use algebra::TarskiExpr;
pub use backend::TarskiBackend;
pub use binrel::BinRel;
pub use store::TarskiStore;
