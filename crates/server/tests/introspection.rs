//! Observability integration tests over loopback TCP: per-request
//! commit timelines reconstructed from wire-propagated trace ids, the
//! remote stats protocol (including the slow-query ring with per-step
//! est-vs-actual plan rows), and typed refusal of newer-protocol
//! peers. The span-capture tests share one process-global recorder, so
//! everything that needs a `Collector` lives in a single test.

use good_core::gen::bench_scheme;
use good_core::ops::NodeAddition;
use good_core::pattern::Pattern;
use good_core::program::{Operation, Program};
use good_server::client::Client;
use good_server::net::{NetConfig, NetServer};
use good_server::proto::{encode, read_frame, ErrCode, Frame, ProtoError, VERSION};
use good_server::{Server, ServerConfig};
use good_store::vfs::{FaultPlan, FaultVfs, Vfs};
use good_store::Store;
use good_trace::{ArgValue, Collector, Span, SpanTree};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn start_net(server_config: ServerConfig) -> NetServer {
    let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(FaultPlan::reliable(23)));
    let store =
        Store::create_with_vfs(vfs, "/obs/db.journal", bench_scheme()).expect("create store");
    let server = Server::start(store, server_config);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    NetServer::start(server, listener, NetConfig::default()).expect("start net server")
}

fn labeled_program(label: &str) -> Program {
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        Pattern::new(),
        label,
        [],
    ))])
}

/// Find the span arg `trace` and compare to an id.
fn has_trace(span: &Span, id: u64) -> bool {
    span.args
        .iter()
        .any(|(key, value)| *key == "trace" && *value == ArgValue::UInt(id))
}

fn arg_u64(span: &Span, key: &str) -> Option<u64> {
    span.args.iter().find_map(|(k, v)| {
        (*k == key).then(|| match v {
            ArgValue::UInt(n) => *n,
            other => panic!("arg {key} is {other:?}, expected UInt"),
        })
    })
}

fn end_ns(span: &Span) -> u64 {
    span.start_ns + span.dur_ns
}

/// The tentpole acceptance test: three client threads churn traced
/// submits over the wire while a collector captures spans from the net
/// reader, ack pump, and writer threads. For every trace id the full
/// commit timeline — enqueue → batch (fsync inside) → publish →
/// commit → ack — must reconstruct from the capture, ordered by the
/// process-wide monotonic span clock. The same capture must also
/// canonicalize into a permutation-independent `SpanTree` (spans carry
/// `(thread, seq)` so build order is deterministic under churn).
#[test]
fn wire_trace_reconstructs_commit_timeline_under_churn() {
    let collector = Arc::new(Collector::new());
    let previous = good_trace::install(collector.clone());
    assert!(previous.is_none(), "test requires the global recorder");

    let net = start_net(ServerConfig {
        queue_capacity: 64,
        max_batch: 4,
        ..ServerConfig::default()
    });
    let addr = net.local_addr();
    const THREADS: u64 = 3;
    const PER_THREAD: u64 = 5;
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..PER_THREAD {
                    let trace = 1_000 * (t + 1) + i;
                    let request = client
                        .submit_traced(&labeled_program(&format!("T{t}x{i}")), Some(trace))
                        .expect("submit");
                    client.wait_ack(request).expect("ack");
                }
                client.goodbye().expect("goodbye");
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("worker");
    }
    net.shutdown().expect("shutdown");
    good_trace::uninstall();
    let spans = collector.take();

    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let trace = 1_000 * (t + 1) + i;
            let enqueue = spans
                .iter()
                .find(|s| s.name == "server/enqueue" && has_trace(s, trace))
                .unwrap_or_else(|| panic!("trace {trace}: no enqueue span"));
            let commit = spans
                .iter()
                .find(|s| s.name == "server/commit" && has_trace(s, trace))
                .unwrap_or_else(|| panic!("trace {trace}: no commit span"));
            let ack = spans
                .iter()
                .find(|s| s.name == "net/ack" && has_trace(s, trace))
                .unwrap_or_else(|| panic!("trace {trace}: no ack span"));

            // The commit span nests inside its batch span on the
            // writer thread; the batch interval covers it.
            let batch = spans
                .iter()
                .filter(|s| s.name == "server/batch" && s.thread == commit.thread)
                .find(|s| s.start_ns <= commit.start_ns && end_ns(s) >= end_ns(commit))
                .unwrap_or_else(|| panic!("trace {trace}: commit span has no covering batch"));
            // The batch durably fsynced (inside execute_group) and
            // published before any of its commit spans opened.
            let fsync = spans
                .iter()
                .filter(|s| s.name == "store/fsync" && s.thread == commit.thread)
                .find(|s| s.start_ns >= batch.start_ns && end_ns(s) <= commit.start_ns)
                .unwrap_or_else(|| panic!("trace {trace}: no fsync inside the batch window"));
            let publish = spans
                .iter()
                .filter(|s| s.name == "server/publish" && s.thread == commit.thread)
                .find(|s| s.start_ns >= end_ns(fsync) && end_ns(s) <= commit.start_ns)
                .unwrap_or_else(|| panic!("trace {trace}: no publish between fsync and commit"));

            // The reconstructed timeline, on the process-monotonic
            // span clock: enqueue precedes the batch drain; fsync,
            // publish, and the commit record follow in stage order;
            // the ack leaves last, from the ack-pump thread.
            assert!(
                enqueue.start_ns <= batch.start_ns,
                "trace {trace}: enqueue after batch"
            );
            assert!(
                publish.start_ns >= end_ns(fsync),
                "trace {trace}: publish before fsync"
            );
            assert!(
                commit.start_ns >= end_ns(publish),
                "trace {trace}: commit before publish"
            );
            assert!(
                ack.start_ns >= commit.start_ns,
                "trace {trace}: ack before commit"
            );
            assert!(
                ack.thread != commit.thread,
                "ack pump is not the writer thread"
            );
            assert!(
                enqueue.thread != commit.thread,
                "net reader is not the writer thread"
            );

            // The commit span carries the stage breakdown.
            assert_eq!(arg_u64(commit, "trace"), Some(trace));
            assert!(arg_u64(commit, "queue_wait_ns").is_some());
            assert!(arg_u64(commit, "total_ns").is_some());
            assert!(arg_u64(commit, "epoch").is_some());
            assert!(
                arg_u64(commit, "commit_seq").is_some(),
                "all submits commit"
            );
            assert!(arg_u64(ack, "request").is_some(), "ack names its request");
        }
    }

    // Satellite: SpanTree canonicalization is permutation-independent
    // even for this capture from four-plus concurrent threads. Build
    // the tree from the capture as-is and from a scrambled copy
    // (reversed, then rotated); after canonicalize() both render
    // byte-identically because (thread, seq) fixes the build order and
    // content-sorting erases thread interleaving.
    let mut scrambled: Vec<Span> = spans.clone();
    scrambled.reverse();
    let pivot = scrambled.len() / 3;
    scrambled.rotate_left(pivot);
    let mut tree_a = SpanTree::build(&spans);
    let mut tree_b = SpanTree::build(&scrambled);
    tree_a.canonicalize();
    tree_b.canonicalize();
    assert_eq!(
        tree_a.render(),
        tree_b.render(),
        "canonicalized SpanTree must not depend on capture order"
    );
    assert!(!tree_a.roots.is_empty());
}

/// The stats protocol end to end: a live loopback server answers
/// `Frame::Stats` with a parseable JSON snapshot whose slow-query ring
/// holds a captured query complete with per-step estimated-vs-actual
/// plan rows.
#[test]
fn stats_roundtrip_reports_slow_query_with_plan_rows() {
    let net = start_net(ServerConfig {
        // Every query is "slow" at a zero threshold, so the ring
        // deterministically captures the probe query below.
        slow_query_ns: 0,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(net.local_addr()).expect("connect");
    client
        .submit_wait(&labeled_program("Obj1"))
        .expect("commit");
    let (_, _, rows) = client.query("{ o: Obj1; }", None).expect("query");
    assert_eq!(rows.len(), 1);

    let stats = client.stats().expect("stats round-trip");
    let parsed: serde_json::Value = serde_json::from_str(&stats)
        .unwrap_or_else(|err| panic!("unparseable stats: {err}\n{stats}"));

    // Top-level sections.
    for section in ["net", "server", "mvcc", "metrics", "slow"] {
        assert!(parsed.get(section).is_some(), "missing section {section}");
    }
    assert_eq!(parsed["net"]["connections"].as_u64(), Some(1));
    assert!(parsed["server"]["epoch"].as_u64().unwrap() >= 1);
    assert!(parsed["server"]["queue_capacity"].as_u64().unwrap() > 0);
    assert!(!parsed["mvcc"]["retained"].as_seq().unwrap().is_empty());

    // Live metrics flow without any Recorder installed: the counters
    // for the frames this very test sent must be present and nonzero.
    let metrics = &parsed["metrics"];
    assert!(metrics["counters"]["net/frames/submit"].as_u64().unwrap() >= 1);
    assert!(metrics["counters"]["net/frames/query"].as_u64().unwrap() >= 1);
    assert!(metrics["counters"]["server/committed"].as_u64().unwrap() >= 1);
    let query_hist = &metrics["histograms"]["net/query_ns"];
    assert!(query_hist["count"].as_u64().unwrap() >= 1);
    assert!(!query_hist["buckets"].as_seq().unwrap().is_empty());

    // The slow ring captured the query, with its plan's per-step
    // estimated-vs-actual rows.
    let entries = parsed["slow"]["entries"].as_seq().expect("slow entries");
    let slow_query = entries
        .iter()
        .find(|e| e["kind"].as_str() == Some("query"))
        .expect("slow ring must hold the probe query");
    assert_eq!(slow_query["detail"].as_str(), Some("{ o: Obj1; }"));
    assert!(slow_query["stages"]["match_ns"].as_u64().is_some());
    let plan = &slow_query["plan"];
    assert!(plan["strategy"].as_str().is_some(), "plan: {plan:?}");
    let steps = plan["steps"].as_seq().expect("plan steps");
    assert!(!steps.is_empty());
    for step in steps {
        assert!(step["est_rows"].as_f64().is_some(), "step: {step:?}");
        assert!(
            step["actual_rows"].as_u64().is_some(),
            "profiled plan must carry actuals: {step:?}"
        );
    }

    client.goodbye().expect("goodbye");
    net.shutdown().expect("shutdown");
}

/// Slow commits land in the same ring, tagged with their wire trace id
/// and stage breakdown.
#[test]
fn slow_commits_are_captured_with_trace_and_stages() {
    let net = start_net(ServerConfig {
        slow_commit_ns: 0, // every commit is "slow"
        ..ServerConfig::default()
    });
    let mut client = Client::connect(net.local_addr()).expect("connect");
    let request = client
        .submit_traced(&labeled_program("Slow"), Some(777))
        .expect("submit");
    client.wait_ack(request).expect("ack");

    let stats = client.stats().expect("stats");
    let parsed: serde_json::Value = serde_json::from_str(&stats).expect("parseable");
    let entries = parsed["slow"]["entries"].as_seq().expect("entries");
    let commit = entries
        .iter()
        .find(|e| e["kind"].as_str() == Some("commit") && e["trace"].as_u64() == Some(777))
        .expect("slow commit with wire trace id");
    for stage in ["queue_wait_ns", "execute_ns", "publish_ns"] {
        assert!(
            commit["stages"][stage].as_u64().is_some(),
            "missing {stage}"
        );
    }
    assert!(commit["total_ns"].as_u64().unwrap() >= 1);
    assert!(commit["epoch"].as_u64().unwrap() >= 1);

    client.goodbye().expect("goodbye");
    net.shutdown().expect("shutdown");
}

/// A peer speaking a newer protocol version gets a clean, typed
/// `UnsupportedVersion` refusal naming both versions — then a Goodbye —
/// not a summary hangup.
#[test]
fn newer_version_hello_is_refused_with_typed_error_not_a_drop() {
    let net = start_net(ServerConfig::default());
    let stream = TcpStream::connect(net.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // A Hello from the future: valid framing, version byte bumped.
    let mut hello = encode(&Frame::Hello { session: 0 });
    hello[4] = VERSION + 1;
    writer.write_all(&hello).expect("write");

    match read_frame(&mut reader).expect("typed reply, not a hangup") {
        Some(Frame::Err {
            code: ErrCode::UnsupportedVersion,
            detail,
            ..
        }) => {
            assert!(
                detail.contains(&format!("{}", VERSION + 1))
                    && detail.contains(&format!("{VERSION}")),
                "detail must name both versions: {detail}"
            );
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    assert!(matches!(
        read_frame(&mut reader).expect("read"),
        Some(Frame::Goodbye { .. })
    ));

    // And the decoder itself reports the mismatch as a typed pair.
    match good_server::proto::decode(&hello) {
        Err(ProtoError::Version { got, want }) => {
            assert_eq!((got, want), (VERSION + 1, VERSION));
        }
        other => panic!("expected ProtoError::Version, got {other:?}"),
    }

    net.shutdown().expect("shutdown");
}
