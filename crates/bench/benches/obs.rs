//! E19 — the cost of always-on observability: pipelined wire
//! throughput (E17's shape) with the live-metrics path enabled vs
//! disabled via the `set_live_metrics` kill switch, and the stats
//! round-trip latency of `Frame::Stats` against a warm server
//! (EXPERIMENTS.md §3).
//!
//! Hand-rolled like E15–E18: raw numbers, criterion-style lines,
//! machine-readable results in `BENCH_obs.json` at the workspace root.
//! `--check BENCH_obs.json` re-measures and fails CI when the live
//! metrics cost more than the overhead budget of E17-pipelined
//! throughput, or when the stats round-trip p50 regresses past the
//! recorded baseline (plus generous shared-runner slack) or an
//! absolute ceiling.

use good_core::gen::bench_scheme;
use good_core::ops::NodeAddition;
use good_core::pattern::Pattern;
use good_core::program::{Operation, Program};
use good_server::client::Client;
use good_server::net::{NetConfig, NetServer};
use good_server::{Server, ServerConfig};
use good_store::vfs::{FaultPlan, FaultVfs, Vfs};
use good_store::Store;
use std::fmt::Write as _;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Matched with E17's pipelined measurement so the A/B is the same
/// workload the ≤2% budget is quoted against.
const PIPELINED_PROGRAMS: usize = 384;
const PIPELINED_MAX_BATCH: usize = 64;
/// Best-of-N per arm: on the 1-core container scheduler noise only
/// ever adds time, so the minimum estimates peak capacity.
const PIPELINED_RUNS: usize = 7;

/// Stats round trips timed against a warm server.
const STATS_OPS: usize = 512;

/// `--check` gates: the live-metrics overhead budget as a fraction of
/// disabled-path throughput (the tentpole's ≤2% requirement), the
/// stats p50 drift allowance over the recorded baseline, and an
/// absolute stats p50 ceiling for machines with no usable baseline.
const CHECK_MAX_OVERHEAD: f64 = 0.02;
const CHECK_STATS_TOLERANCE: f64 = 3.0;
const CHECK_STATS_SLACK_NANOS: u128 = 2_000_000;
const CHECK_STATS_CEILING_NANOS: u128 = 20_000_000;
/// Interleaved A/B attempts; the best (lowest-overhead) attempt is
/// judged, damping asymmetric scheduler spikes between the two arms.
const CHECK_ATTEMPTS: usize = 3;

fn format_nanos(nanos: u128) -> String {
    let nanos = nanos as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

fn labeled_program(label: &str) -> Program {
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        Pattern::new(),
        label,
        [],
    ))])
}

fn fresh_net() -> NetServer {
    let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(FaultPlan::reliable(42)));
    let store =
        Store::create_with_vfs(vfs, "/bench/db.journal", bench_scheme()).expect("create store");
    let server = Server::start(
        store,
        ServerConfig {
            queue_capacity: PIPELINED_PROGRAMS + 1,
            max_batch: PIPELINED_MAX_BATCH,
            ..ServerConfig::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    NetServer::start(
        server,
        listener,
        NetConfig {
            session_inflight: PIPELINED_PROGRAMS + 1,
            ..NetConfig::default()
        },
    )
    .expect("start net server")
}

struct Pipelined {
    live_metrics: &'static str,
    best_total_ns: u128,
    programs_per_sec: u64,
}

/// E17's pipelined wire throughput with the live-metrics path held in
/// the given state for the duration.
fn pipelined_with_live(enabled: bool) -> Pipelined {
    good_trace::set_live_metrics(enabled);
    let mut samples = Vec::with_capacity(PIPELINED_RUNS);
    for run in 0..PIPELINED_RUNS {
        let net = fresh_net();
        let mut client = Client::connect(net.local_addr()).expect("connect");
        let programs: Vec<Program> = (0..PIPELINED_PROGRAMS)
            .map(|i| labeled_program(&format!("P{run}x{i}")))
            .collect();
        let start = Instant::now();
        let requests: Vec<u64> = programs
            .iter()
            .map(|p| client.submit(p).expect("submit"))
            .collect();
        for request in requests {
            client.wait_ack(request).expect("ack");
        }
        samples.push(start.elapsed().as_nanos());
        client.goodbye().expect("goodbye");
        net.shutdown().expect("shutdown");
    }
    good_trace::set_live_metrics(true);
    let best_total_ns = samples.into_iter().min().expect("at least one run");
    Pipelined {
        live_metrics: if enabled { "on" } else { "off" },
        best_total_ns,
        programs_per_sec: (PIPELINED_PROGRAMS as u128 * 1_000_000_000 / best_total_ns.max(1))
            as u64,
    }
}

/// Fractional throughput lost to the live-metrics path (negative when
/// the enabled arm happened to run faster — noise, clamped at 0 for
/// the gate).
fn overhead_fraction(on: &Pipelined, off: &Pipelined) -> f64 {
    1.0 - on.programs_per_sec as f64 / off.programs_per_sec as f64
}

struct StatsRoundTrip {
    ops: usize,
    p50_ns: u128,
    p99_ns: u128,
}

/// Stats round trips against a server warmed with one pipelined
/// workload, so the snapshot carries live counters, histograms, the
/// MVCC ring, and nonempty slow-log bookkeeping — the realistic
/// serving cost, not an empty-registry best case.
fn stats_round_trip() -> StatsRoundTrip {
    let net = fresh_net();
    let mut client = Client::connect(net.local_addr()).expect("connect");
    for i in 0..64 {
        client
            .submit_wait(&labeled_program(&format!("W{i}")))
            .expect("warm");
    }
    let mut samples = Vec::with_capacity(STATS_OPS);
    for _ in 0..STATS_OPS {
        let begin = Instant::now();
        let json = client.stats().expect("stats round trip");
        samples.push(begin.elapsed().as_nanos());
        assert!(json.starts_with('{'), "stats reply must be JSON");
    }
    client.goodbye().expect("goodbye");
    net.shutdown().expect("shutdown");
    samples.sort_unstable();
    StatsRoundTrip {
        ops: samples.len(),
        p50_ns: samples[samples.len() / 2],
        p99_ns: samples[(samples.len() * 99 / 100).min(samples.len() - 1)],
    }
}

fn workspace_path(file: &str) -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop(); // crates/
    path.pop(); // workspace root
    path.push(file);
    path
}

fn json_num_field(line: &str, key: &str) -> Option<u128> {
    let start = line.find(key)? + key.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// CI smoke: fresh A/B overhead within budget, fresh stats p50 within
/// baseline drift and the absolute ceiling.
fn run_check(baseline_arg: &str) -> ! {
    let path = if std::path::Path::new(baseline_arg).is_absolute() {
        PathBuf::from(baseline_arg)
    } else {
        workspace_path(baseline_arg)
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read baseline {}: {err}", path.display());
            std::process::exit(1);
        }
    };
    let baseline_p50 = text
        .lines()
        .find(|line| line.contains("\"stats_round_trip\""))
        .and_then(|line| json_num_field(line, "\"p50_ns\": "));
    let Some(baseline_p50) = baseline_p50 else {
        eprintln!("no stats_round_trip p50 in baseline {}", path.display());
        std::process::exit(1);
    };

    println!(
        "E19 obs smoke — live-metrics overhead vs {}",
        path.display()
    );
    let mut failed = false;

    // Interleaved A/B, best (lowest) overhead of the attempts.
    let mut best: Option<(Pipelined, Pipelined, f64)> = None;
    for _ in 0..CHECK_ATTEMPTS {
        let off = pipelined_with_live(false);
        let on = pipelined_with_live(true);
        let overhead = overhead_fraction(&on, &off);
        if best.as_ref().is_none_or(|(_, _, prior)| overhead < *prior) {
            best = Some((on, off, overhead));
        }
    }
    let (on, off, overhead) = best.expect("at least one attempt");
    let verdict = if overhead.max(0.0) > CHECK_MAX_OVERHEAD {
        failed = true;
        "REGRESSED"
    } else {
        "ok"
    };
    println!(
        "pipelined live-on {} prog/s vs live-off {} prog/s  overhead {:.2}% \
         (budget {:.0}%)  {verdict}",
        on.programs_per_sec,
        off.programs_per_sec,
        overhead * 100.0,
        CHECK_MAX_OVERHEAD * 100.0,
    );

    // Stats round-trip p50: bounded by the baseline with drift + slack,
    // and by the absolute ceiling.
    let fresh = stats_round_trip();
    let allowed = ((baseline_p50 as f64 * CHECK_STATS_TOLERANCE) as u128 + CHECK_STATS_SLACK_NANOS)
        .min(CHECK_STATS_CEILING_NANOS);
    let verdict = if fresh.p50_ns > allowed {
        failed = true;
        "REGRESSED"
    } else {
        "ok"
    };
    println!(
        "stats round-trip p50 {:>12}  baseline {:>12}  allowed {:>12}  {verdict}",
        format_nanos(fresh.p50_ns),
        format_nanos(baseline_p50),
        format_nanos(allowed),
    );

    if failed {
        eprintln!("observability overhead regressed vs baseline");
        std::process::exit(1);
    }
    println!("observability overhead within budget");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(position) = args.iter().position(|a| a == "--check") {
        let Some(baseline) = args.get(position + 1) else {
            eprintln!("error: --check requires a baseline path");
            std::process::exit(1);
        };
        run_check(baseline);
    }

    println!("E19 obs — always-on metrics overhead and stats round-trip (1-core container)");

    let off = pipelined_with_live(false);
    let on = pipelined_with_live(true);
    for p in [&off, &on] {
        println!(
            "{:<60} time: [best {}] ({} programs/s)",
            format!("E19-obs/pipelined/live-{}", p.live_metrics),
            format_nanos(p.best_total_ns),
            p.programs_per_sec
        );
    }
    let overhead = overhead_fraction(&on, &off);
    println!(
        "always-on live metrics cost {:.2}% of pipelined wire throughput",
        overhead * 100.0
    );

    let stats = stats_round_trip();
    println!(
        "{:<60} time: [p50 {}] (p99 {}, {} ops)",
        "E19-obs/stats-round-trip",
        format_nanos(stats.p50_ns),
        format_nanos(stats.p99_ns),
        stats.ops
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"E19-obs\",");
    json.push_str("  \"pipelined\": [\n");
    for (index, p) in [&off, &on].into_iter().enumerate() {
        let comma = if index == 1 { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"live_metrics\": \"{}\", \"max_batch\": {}, \"programs\": {}, \
             \"best_total_ns\": {}, \"programs_per_sec\": {}}}{comma}",
            p.live_metrics,
            PIPELINED_MAX_BATCH,
            PIPELINED_PROGRAMS,
            p.best_total_ns,
            p.programs_per_sec
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"overhead_pct\": {:.2},", overhead * 100.0);
    let _ = writeln!(
        json,
        "  \"stats_round_trip\": {{\"ops\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
        stats.ops, stats.p50_ns, stats.p99_ns
    );
    json.push_str("}\n");

    let path = workspace_path("BENCH_obs.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
