//! Deterministic random workload generation for benches and property
//! tests.
//!
//! The paper has no evaluation section, so the benchmark harness
//! (EXPERIMENTS.md) characterizes the implementation on synthetic
//! hyper-media-shaped instances: `Info` objects with names, creation
//! dates and a random `links-to` topology — the same shape as the
//! paper's running example, scaled.

use crate::instance::Instance;
use crate::label::Label;
use crate::ops::{EdgeAddition, EdgeDeletion, NodeAddition, NodeDeletion};
use crate::pattern::Pattern;
use crate::program::{Operation, Program};
use crate::scheme::{Scheme, SchemeBuilder};
use crate::value::{Value, ValueType};
use good_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_instance`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of `Info` objects.
    pub infos: usize,
    /// Expected number of outgoing `links-to` edges per info.
    pub avg_links: f64,
    /// Number of distinct creation dates to draw from (small values
    /// create heavy sharing of printable nodes, as in the paper's
    /// figures).
    pub distinct_dates: usize,
    /// RNG seed — equal configs generate equal instances.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            infos: 100,
            avg_links: 2.0,
            distinct_dates: 10,
            seed: 42,
        }
    }
}

/// The benchmark scheme: a scaled-down hyper-media scheme.
pub fn bench_scheme() -> Scheme {
    SchemeBuilder::new()
        .object("Info")
        .printable("String", ValueType::Str)
        .printable("Date", ValueType::Date)
        .functional("Info", "name", "String")
        .functional("Info", "created", "Date")
        .functional("Info", "modified", "Date")
        .multivalued("Info", "links-to", "Info")
        .multivalued("Info", "rec-links-to", "Info")
        .build()
}

/// Generate a random instance over [`bench_scheme`]. Deterministic in
/// the config.
pub fn random_instance(config: &GenConfig) -> Instance {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Instance::new(bench_scheme());
    let mut infos: Vec<NodeId> = Vec::with_capacity(config.infos);
    let epoch = Value::date(1990, 1, 1);
    let epoch_days = match &epoch {
        Value::Date(d) => d.to_days(),
        _ => unreachable!(),
    };
    for index in 0..config.infos {
        let info = db.add_object("Info").expect("Info in scheme");
        let name = db
            .add_printable("String", format!("info-{index}"))
            .expect("String in scheme");
        db.add_edge(info, "name", name).expect("name edge");
        let offset = rng.gen_range(0..config.distinct_dates.max(1)) as i64;
        let date = crate::value::Date::from_days(epoch_days + offset);
        let date_node = db.add_printable("Date", date).expect("Date in scheme");
        db.add_edge(info, "created", date_node)
            .expect("created edge");
        infos.push(info);
    }
    if config.infos > 1 {
        let p = (config.avg_links / (config.infos as f64 - 1.0)).min(1.0);
        // Bernoulli per ordered pair keeps degree distribution binomial;
        // for large instances sample the expected count instead.
        let expected_edges = (config.infos as f64 * config.avg_links) as usize;
        if config.infos <= 512 {
            for &src in &infos {
                for &dst in &infos {
                    if src != dst && rng.gen_bool(p) {
                        db.add_edge(src, "links-to", dst).expect("links edge");
                    }
                }
            }
        } else {
            for _ in 0..expected_edges {
                let src = infos[rng.gen_range(0..infos.len())];
                let dst = infos[rng.gen_range(0..infos.len())];
                if src != dst {
                    db.add_edge(src, "links-to", dst).expect("links edge");
                }
            }
        }
    }
    db
}

/// A deterministic mixed mutation workload over [`bench_scheme`]:
/// `count` programs drawn from a seeded generator, exercising node
/// additions (plain and tagging), multivalued edge additions, node and
/// edge deletions, and multi-op atomic programs. The store torture
/// harness replays these against a durability oracle; equal seeds
/// generate equal programs.
pub fn random_workload(seed: u64, count: usize) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut introduced: Vec<usize> = Vec::new();
    (0..count)
        .map(|step| random_program(step, &mut rng, &mut introduced))
        .collect()
}

/// One workload program (see [`random_workload`]). The first two steps
/// always seed `Info` objects so later pattern-driven programs have
/// material to match against; `introduced` tracks which tag classes
/// exist so deletion patterns never name a label the scheme has not
/// yet learned.
fn random_program(step: usize, rng: &mut StdRng, introduced: &mut Vec<usize>) -> Program {
    fn seed_info() -> Operation {
        Operation::NodeAdd(NodeAddition::new(Pattern::new(), "Info", []))
    }
    fn tag_op(k: usize) -> Operation {
        let mut pattern = Pattern::new();
        let info = pattern.node("Info");
        Operation::NodeAdd(NodeAddition::new(
            pattern,
            format!("Tag{k}").as_str(),
            [(Label::new("of"), info)],
        ))
    }
    if step < 2 {
        return Program::from_ops([seed_info()]);
    }
    match rng.gen_range(0u32..10) {
        0..=1 => Program::from_ops([seed_info()]),
        2..=4 => {
            // Tag every Info (idempotent on repeat: NA dedups).
            let k = rng.gen_range(0usize..3);
            if !introduced.contains(&k) {
                introduced.push(k);
            }
            Program::from_ops([tag_op(k)])
        }
        5..=6 => {
            // Link every ordered Info pair.
            let mut pattern = Pattern::new();
            let a = pattern.node("Info");
            let b = pattern.node("Info");
            Program::from_ops([Operation::EdgeAdd(EdgeAddition::multivalued(
                pattern, a, "links-to", b,
            ))])
        }
        7 => {
            // Multi-op program: a fresh Info plus a tagging pass over
            // the grown instance — the journal must apply it atomically.
            let k = rng.gen_range(0usize..3);
            if !introduced.contains(&k) {
                introduced.push(k);
            }
            Program::from_ops([seed_info(), tag_op(k)])
        }
        8 if !introduced.is_empty() => {
            // Delete one introduced tag class wholesale (the label
            // stays in the scheme even after its population empties).
            let k = introduced[rng.gen_range(0..introduced.len())];
            let mut pattern = Pattern::new();
            let target = pattern.node(format!("Tag{k}").as_str());
            Program::from_ops([Operation::NodeDel(NodeDeletion::new(pattern, target))])
        }
        8 => Program::from_ops([seed_info()]),
        _ => {
            // Drop every links-to edge.
            let mut pattern = Pattern::new();
            let a = pattern.node("Info");
            let b = pattern.node("Info");
            pattern.edge(a, "links-to", b);
            Program::from_ops([Operation::EdgeDel(EdgeDeletion::single(
                pattern, a, "links-to", b,
            ))])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = GenConfig {
            infos: 50,
            ..GenConfig::default()
        };
        let a = random_instance(&config);
        let b = random_instance(&config);
        assert!(a.isomorphic_to(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_instance(&GenConfig {
            infos: 30,
            seed: 1,
            ..GenConfig::default()
        });
        let b = random_instance(&GenConfig {
            infos: 30,
            seed: 2,
            ..GenConfig::default()
        });
        // With 30 nodes and random links, collision is implausible.
        assert!(!a.isomorphic_to(&b));
    }

    #[test]
    fn generated_instances_validate() {
        for seed in 0..5 {
            let db = random_instance(&GenConfig {
                infos: 40,
                seed,
                ..GenConfig::default()
            });
            db.validate().unwrap();
            assert_eq!(db.label_count(&"Info".into()), 40);
        }
    }

    #[test]
    fn large_path_also_validates() {
        let db = random_instance(&GenConfig {
            infos: 600,
            avg_links: 1.5,
            distinct_dates: 5,
            seed: 7,
        });
        db.validate().unwrap();
        assert_eq!(db.label_count(&"Info".into()), 600);
    }

    #[test]
    fn dates_are_shared_printables() {
        let db = random_instance(&GenConfig {
            infos: 100,
            distinct_dates: 3,
            ..GenConfig::default()
        });
        assert!(db.label_count(&"Date".into()) <= 3);
    }

    #[test]
    fn workloads_are_deterministic_in_the_seed() {
        let a = random_workload(9, 20);
        let b = random_workload(9, 20);
        let as_json = |ps: &[crate::program::Program]| {
            ps.iter()
                .map(|p| serde_json::to_string(p).expect("serialize"))
                .collect::<Vec<_>>()
        };
        assert_eq!(as_json(&a), as_json(&b));
        assert!(as_json(&a) != as_json(&random_workload(10, 20)));
    }

    #[test]
    fn workload_programs_apply_cleanly_and_validate() {
        use crate::program::{Env, DEFAULT_FUEL};
        for seed in 0..4 {
            let mut db = Instance::new(bench_scheme());
            let mut env = Env::with_fuel(DEFAULT_FUEL);
            for program in random_workload(seed, 24) {
                env.refuel();
                program.apply(&mut db, &mut env).expect("workload applies");
            }
            db.validate().expect("workload leaves a valid instance");
        }
    }
}
