//! The relational algebra, evaluated natively.
//!
//! This is the ground truth for the Section 4.3 completeness theorem:
//! [`crate::compile`] translates the same expressions to GOOD programs,
//! and the test suites check both evaluation routes agree.
//!
//! The operator set is Codd's: selection (conjunctions of
//! attribute/attribute and attribute/constant equalities), projection,
//! renaming, cartesian product, union, difference — plus natural join
//! as a convenience (it is also compiled directly).

use crate::relation::{RelDatabase, RelSchema, Relation, Tuple};
use good_core::error::{GoodError, Result};
use good_core::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A comparison operator for [`Predicate::AttrCmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Apply the comparison.
    pub fn holds(self, left: &Value, right: &Value) -> bool {
        match self {
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
            CmpOp::Ne => left != right,
        }
    }
}

/// A selection predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `attr = constant`.
    AttrEqConst(String, Value),
    /// `attr <op> constant` — the range/comparison selections the paper
    /// sanctions as "additional predicates on printable objects"
    /// (Section 4.1); compiles to a pattern-node predicate.
    AttrCmp(String, CmpOp, Value),
    /// `attr1 = attr2`.
    AttrEqAttr(String, String),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Flatten into a list of atomic conjuncts.
    pub fn conjuncts(&self) -> Vec<&Predicate> {
        match self {
            Predicate::And(left, right) => {
                let mut out = left.conjuncts();
                out.extend(right.conjuncts());
                out
            }
            atom => vec![atom],
        }
    }

    fn eval(&self, schema: &RelSchema, tuple: &Tuple) -> Result<bool> {
        match self {
            Predicate::AttrEqConst(attr, value) => {
                let pos = schema.position(attr).ok_or_else(|| {
                    GoodError::InvariantViolation(format!("unknown attribute {attr}"))
                })?;
                Ok(&tuple[pos] == value)
            }
            Predicate::AttrCmp(attr, op, value) => {
                let pos = schema.position(attr).ok_or_else(|| {
                    GoodError::InvariantViolation(format!("unknown attribute {attr}"))
                })?;
                if tuple[pos].value_type() != value.value_type() {
                    return Err(GoodError::InvariantViolation(format!(
                        "comparison constant for {attr} has the wrong domain"
                    )));
                }
                Ok(op.holds(&tuple[pos], value))
            }
            Predicate::AttrEqAttr(a, b) => {
                let pa = schema.position(a).ok_or_else(|| {
                    GoodError::InvariantViolation(format!("unknown attribute {a}"))
                })?;
                let pb = schema.position(b).ok_or_else(|| {
                    GoodError::InvariantViolation(format!("unknown attribute {b}"))
                })?;
                Ok(tuple[pa] == tuple[pb])
            }
            Predicate::And(left, right) => {
                Ok(left.eval(schema, tuple)? && right.eval(schema, tuple)?)
            }
        }
    }
}

/// A relational algebra expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RelExpr {
    /// A base relation by name.
    Base(String),
    /// Selection `σ_pred`.
    Select(Predicate, Box<RelExpr>),
    /// Projection `π_attrs` (with set-semantics duplicate elimination).
    Project(Vec<String>, Box<RelExpr>),
    /// Renaming `ρ_{old→new}`.
    Rename(BTreeMap<String, String>, Box<RelExpr>),
    /// Cartesian product (attribute sets must be disjoint).
    Product(Box<RelExpr>, Box<RelExpr>),
    /// Natural join.
    Join(Box<RelExpr>, Box<RelExpr>),
    /// Union (schemas must agree).
    Union(Box<RelExpr>, Box<RelExpr>),
    /// Difference (schemas must agree).
    Difference(Box<RelExpr>, Box<RelExpr>),
}

impl RelExpr {
    /// Convenience constructors.
    pub fn base(name: impl Into<String>) -> Self {
        RelExpr::Base(name.into())
    }
    /// `σ_pred(self)`.
    pub fn select(self, pred: Predicate) -> Self {
        RelExpr::Select(pred, Box::new(self))
    }
    /// `π_attrs(self)`.
    pub fn project(self, attrs: impl IntoIterator<Item = impl Into<String>>) -> Self {
        RelExpr::Project(attrs.into_iter().map(Into::into).collect(), Box::new(self))
    }
    /// `ρ(self)`.
    pub fn rename(
        self,
        map: impl IntoIterator<Item = (impl Into<String>, impl Into<String>)>,
    ) -> Self {
        RelExpr::Rename(
            map.into_iter()
                .map(|(old, new)| (old.into(), new.into()))
                .collect(),
            Box::new(self),
        )
    }
    /// `self × other`.
    pub fn product(self, other: RelExpr) -> Self {
        RelExpr::Product(Box::new(self), Box::new(other))
    }
    /// `self ⋈ other`.
    pub fn join(self, other: RelExpr) -> Self {
        RelExpr::Join(Box::new(self), Box::new(other))
    }
    /// `self ∪ other`.
    pub fn union(self, other: RelExpr) -> Self {
        RelExpr::Union(Box::new(self), Box::new(other))
    }
    /// `self − other`.
    pub fn difference(self, other: RelExpr) -> Self {
        RelExpr::Difference(Box::new(self), Box::new(other))
    }
    /// `self ∩ other` — derived: `l ∩ r = l − (l − r)`, so it costs
    /// nothing extra in either evaluation route (native or compiled to
    /// GOOD).
    pub fn intersect(self, other: RelExpr) -> Self {
        self.clone().difference(self.difference(other))
    }
    /// Relational division `self ÷ other` (Codd's derived operator):
    /// the tuples over `self`'s non-`other` attributes that pair with
    /// *every* tuple of `other`. Desugars to the classic
    /// `π(l) − π((π(l) × r) − l)` form, so both evaluation routes get
    /// it for free. `other`'s attributes must be a strict subset of
    /// `self`'s (checked downstream by schema inference).
    pub fn divide(self, other: RelExpr, quotient_attrs: &[&str]) -> Self {
        let quotient = self.clone().project(quotient_attrs.iter().copied());
        let all_pairs = quotient.clone().product(other);
        let missing = all_pairs
            .difference(self)
            .project(quotient_attrs.iter().copied());
        quotient.difference(missing)
    }

    /// Evaluate against `db`.
    pub fn eval(&self, db: &RelDatabase) -> Result<Relation> {
        match self {
            RelExpr::Base(name) => Ok(db.get(name)?.clone()),
            RelExpr::Select(pred, input) => {
                let input = input.eval(db)?;
                let mut out = Relation::new(input.schema().clone());
                for tuple in input.tuples() {
                    if pred.eval(input.schema(), tuple)? {
                        out.insert(tuple.clone())?;
                    }
                }
                Ok(out)
            }
            RelExpr::Project(attrs, input) => {
                let input = input.eval(db)?;
                let positions: Vec<usize> = attrs
                    .iter()
                    .map(|attr| {
                        input.schema().position(attr).ok_or_else(|| {
                            GoodError::InvariantViolation(format!("unknown attribute {attr}"))
                        })
                    })
                    .collect::<Result<_>>()?;
                let schema = RelSchema::new(
                    positions
                        .iter()
                        .map(|&pos| input.schema().attrs()[pos].clone()),
                );
                let mut out = Relation::new(schema);
                for tuple in input.tuples() {
                    out.insert(positions.iter().map(|&pos| tuple[pos].clone()).collect())?;
                }
                Ok(out)
            }
            RelExpr::Rename(map, input) => {
                let input = input.eval(db)?;
                let schema = RelSchema::new(input.schema().attrs().iter().map(|(name, ty)| {
                    (map.get(name).cloned().unwrap_or_else(|| name.clone()), *ty)
                }));
                let mut out = Relation::new(schema);
                for tuple in input.tuples() {
                    out.insert(tuple.clone())?;
                }
                Ok(out)
            }
            RelExpr::Product(left, right) => {
                let (left, right) = (left.eval(db)?, right.eval(db)?);
                if !left.schema().common_attrs(right.schema()).is_empty() {
                    return Err(GoodError::InvariantViolation(
                        "cartesian product requires disjoint attribute names".into(),
                    ));
                }
                let schema = RelSchema::new(
                    left.schema()
                        .attrs()
                        .iter()
                        .chain(right.schema().attrs())
                        .cloned(),
                );
                let mut out = Relation::new(schema);
                for l in left.tuples() {
                    for r in right.tuples() {
                        out.insert(l.iter().chain(r.iter()).cloned().collect())?;
                    }
                }
                Ok(out)
            }
            RelExpr::Join(left, right) => {
                let (left, right) = (left.eval(db)?, right.eval(db)?);
                let common = left.schema().common_attrs(right.schema());
                for attr in &common {
                    if left.schema().domain(attr) != right.schema().domain(attr) {
                        return Err(GoodError::InvariantViolation(format!(
                            "join attribute {attr} has different domains"
                        )));
                    }
                }
                let right_extra: Vec<(String, good_core::value::ValueType)> = right
                    .schema()
                    .attrs()
                    .iter()
                    .filter(|(name, _)| !common.contains(name))
                    .cloned()
                    .collect();
                let schema = RelSchema::new(
                    left.schema()
                        .attrs()
                        .iter()
                        .cloned()
                        .chain(right_extra.iter().cloned()),
                );
                let mut out = Relation::new(schema);
                for l in left.tuples() {
                    'rights: for r in right.tuples() {
                        for attr in &common {
                            if left.value(l, attr) != right.value(r, attr) {
                                continue 'rights;
                            }
                        }
                        let mut row = l.clone();
                        for (name, _) in &right_extra {
                            row.push(right.value(r, name).expect("attr exists").clone());
                        }
                        out.insert(row)?;
                    }
                }
                Ok(out)
            }
            RelExpr::Union(left, right) => {
                let (left, right) = (left.eval(db)?, right.eval(db)?);
                if left.schema() != right.schema() {
                    return Err(GoodError::InvariantViolation(
                        "union requires identical schemas".into(),
                    ));
                }
                let mut out = left.clone();
                for tuple in right.tuples() {
                    out.insert(tuple.clone())?;
                }
                Ok(out)
            }
            RelExpr::Difference(left, right) => {
                let (left, right) = (left.eval(db)?, right.eval(db)?);
                if left.schema() != right.schema() {
                    return Err(GoodError::InvariantViolation(
                        "difference requires identical schemas".into(),
                    ));
                }
                let mut out = Relation::new(left.schema().clone());
                for tuple in left.tuples() {
                    if !right.contains(tuple) {
                        out.insert(tuple.clone())?;
                    }
                }
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use good_core::value::ValueType;

    fn db() -> RelDatabase {
        let mut emp = Relation::new(RelSchema::new([
            ("name", ValueType::Str),
            ("dept", ValueType::Str),
        ]));
        emp.extend([
            vec![Value::str("ann"), Value::str("db")],
            vec![Value::str("bob"), Value::str("os")],
            vec![Value::str("cal"), Value::str("db")],
        ])
        .unwrap();
        let mut dept = Relation::new(RelSchema::new([
            ("dept", ValueType::Str),
            ("floor", ValueType::Int),
        ]));
        dept.extend([
            vec![Value::str("db"), Value::int(3)],
            vec![Value::str("os"), Value::int(4)],
        ])
        .unwrap();
        let mut managers = Relation::new(RelSchema::new([
            ("name", ValueType::Str),
            ("dept", ValueType::Str),
        ]));
        managers
            .extend([vec![Value::str("ann"), Value::str("db")]])
            .unwrap();
        let mut out = RelDatabase::new();
        out.add("emp", emp);
        out.add("dept", dept);
        out.add("managers", managers);
        out
    }

    #[test]
    fn select_const() {
        let result = RelExpr::base("emp")
            .select(Predicate::AttrEqConst("dept".into(), Value::str("db")))
            .eval(&db())
            .unwrap();
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn select_attr_eq_attr() {
        let mut pairs = Relation::new(RelSchema::new([
            ("a", ValueType::Int),
            ("b", ValueType::Int),
        ]));
        pairs
            .extend([
                vec![Value::int(1), Value::int(1)],
                vec![Value::int(1), Value::int(2)],
            ])
            .unwrap();
        let mut base = RelDatabase::new();
        base.add("pairs", pairs);
        let result = RelExpr::base("pairs")
            .select(Predicate::AttrEqAttr("a".into(), "b".into()))
            .eval(&base)
            .unwrap();
        assert_eq!(result.len(), 1);
    }

    #[test]
    fn comparison_predicates() {
        let mut nums = Relation::new(RelSchema::new([("n", ValueType::Int)]));
        nums.extend((0..6).map(|n| vec![Value::int(n)])).unwrap();
        let mut base = RelDatabase::new();
        base.add("nums", nums);
        let range = Predicate::And(
            Box::new(Predicate::AttrCmp("n".into(), CmpOp::Ge, Value::int(2))),
            Box::new(Predicate::AttrCmp("n".into(), CmpOp::Lt, Value::int(5))),
        );
        let result = RelExpr::base("nums").select(range).eval(&base).unwrap();
        assert_eq!(result.len(), 3); // 2, 3, 4
        let ne = Predicate::AttrCmp("n".into(), CmpOp::Ne, Value::int(0));
        let result = RelExpr::base("nums").select(ne).eval(&base).unwrap();
        assert_eq!(result.len(), 5);
        // Wrong domain is an error, not silently false.
        let bad = Predicate::AttrCmp("n".into(), CmpOp::Lt, Value::str("x"));
        assert!(RelExpr::base("nums").select(bad).eval(&base).is_err());
    }

    #[test]
    fn conjunction() {
        let pred = Predicate::And(
            Box::new(Predicate::AttrEqConst("dept".into(), Value::str("db"))),
            Box::new(Predicate::AttrEqConst("name".into(), Value::str("ann"))),
        );
        let result = RelExpr::base("emp")
            .select(pred.clone())
            .eval(&db())
            .unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(pred.conjuncts().len(), 2);
    }

    #[test]
    fn project_deduplicates() {
        let result = RelExpr::base("emp").project(["dept"]).eval(&db()).unwrap();
        assert_eq!(result.len(), 2); // db, os
        assert_eq!(result.schema().arity(), 1);
    }

    #[test]
    fn rename_changes_schema_only() {
        let result = RelExpr::base("emp")
            .rename([("name", "employee")])
            .eval(&db())
            .unwrap();
        assert_eq!(result.schema().position("employee"), Some(0));
        assert_eq!(result.len(), 3);
    }

    #[test]
    fn product_requires_disjoint_attrs() {
        assert!(RelExpr::base("emp")
            .product(RelExpr::base("emp"))
            .eval(&db())
            .is_err());
        let renamed = RelExpr::base("emp").rename([("name", "n2"), ("dept", "d2")]);
        let result = RelExpr::base("emp").product(renamed).eval(&db()).unwrap();
        assert_eq!(result.len(), 9);
        assert_eq!(result.schema().arity(), 4);
    }

    #[test]
    fn natural_join() {
        let result = RelExpr::base("emp")
            .join(RelExpr::base("dept"))
            .eval(&db())
            .unwrap();
        assert_eq!(result.len(), 3);
        assert_eq!(result.schema().arity(), 3);
        let ann = result
            .tuples()
            .find(|t| result.value(t, "name") == Some(&Value::str("ann")))
            .unwrap();
        assert_eq!(result.value(ann, "floor"), Some(&Value::int(3)));
    }

    #[test]
    fn union_and_difference() {
        let union = RelExpr::base("emp")
            .union(RelExpr::base("managers"))
            .eval(&db())
            .unwrap();
        assert_eq!(union.len(), 3); // ann already present
        let diff = RelExpr::base("emp")
            .difference(RelExpr::base("managers"))
            .eval(&db())
            .unwrap();
        assert_eq!(diff.len(), 2);
        assert!(!diff
            .tuples()
            .any(|t| diff.value(t, "name") == Some(&Value::str("ann"))));
    }

    #[test]
    fn schema_mismatches_are_errors() {
        assert!(RelExpr::base("emp")
            .union(RelExpr::base("dept"))
            .eval(&db())
            .is_err());
        assert!(RelExpr::base("emp")
            .difference(RelExpr::base("dept"))
            .eval(&db())
            .is_err());
        assert!(RelExpr::base("emp").project(["nope"]).eval(&db()).is_err());
    }

    #[test]
    fn intersect_is_derived_correctly() {
        let result = RelExpr::base("emp")
            .intersect(RelExpr::base("managers"))
            .eval(&db())
            .unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuples().next().unwrap()[0], Value::str("ann"));
    }

    #[test]
    fn division_finds_universal_pairings() {
        // enrolled(student, course) ÷ required(course) = students
        // enrolled in ALL required courses.
        let mut enrolled = Relation::new(RelSchema::new([
            ("student", ValueType::Str),
            ("course", ValueType::Str),
        ]));
        enrolled
            .extend([
                vec![Value::str("ann"), Value::str("db")],
                vec![Value::str("ann"), Value::str("os")],
                vec![Value::str("bob"), Value::str("db")],
                vec![Value::str("cal"), Value::str("os")],
                vec![Value::str("cal"), Value::str("db")],
                vec![Value::str("cal"), Value::str("pl")],
            ])
            .unwrap();
        let mut required = Relation::new(RelSchema::new([("course", ValueType::Str)]));
        required
            .extend([vec![Value::str("db")], vec![Value::str("os")]])
            .unwrap();
        let mut base = RelDatabase::new();
        base.add("enrolled", enrolled);
        base.add("required", required);
        let quotient = RelExpr::base("enrolled")
            .divide(RelExpr::base("required"), &["student"])
            .eval(&base)
            .unwrap();
        let names: Vec<&Value> = quotient.tuples().map(|t| &t[0]).collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&&Value::str("ann")) && names.contains(&&Value::str("cal")));
    }

    #[test]
    fn composed_query() {
        // Names of db employees on floor 3 who are not managers.
        let expr = RelExpr::base("emp")
            .join(RelExpr::base("dept"))
            .select(Predicate::AttrEqConst("floor".into(), Value::int(3)))
            .project(["name", "dept"])
            .difference(RelExpr::base("managers"))
            .project(["name"]);
        let result = expr.eval(&db()).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuples().next().unwrap()[0], Value::str("cal"));
    }
}
