//! E4 — transitive closure three ways over chain length:
//! the recursive-method simulation (Figure 29), the starred-edge-
//! addition fixpoint (Figure 28), and the direct graph algorithm as the
//! substrate baseline. Reports the overhead factor of expressing
//! recursion through GOOD methods.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use good_bench::chain_instance;
use good_core::label::Label;
use good_core::macros::recursion::{transitive_closure_method, transitive_closure_star};
use good_core::method::execute_call;
use good_core::program::Env;
use std::time::Duration;

const LENGTHS: [usize; 3] = [8, 16, 32];

fn bench_recursive_method(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4/recursive-method");
    for length in LENGTHS {
        group.bench_with_input(
            BenchmarkId::from_parameter(length),
            &length,
            |b, &length| {
                b.iter_batched(
                    || chain_instance(length),
                    |mut db| {
                        let (method, call) =
                            transitive_closure_method("Info", "links-to", "rec-links-to");
                        let mut env = Env::with_fuel(10_000_000);
                        env.register(method);
                        execute_call(&call, &mut db, &mut env).expect("closure")
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_starred_fixpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4/starred-fixpoint");
    for length in LENGTHS {
        group.bench_with_input(
            BenchmarkId::from_parameter(length),
            &length,
            |b, &length| {
                b.iter_batched(
                    || chain_instance(length),
                    |mut db| {
                        let (seed, star) =
                            transitive_closure_star("Info", "links-to", "rec-links-to");
                        let mut env = Env::with_fuel(10_000_000);
                        seed.apply(&mut db).expect("seed");
                        star.apply(&mut db, &mut env).expect("fixpoint")
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_direct_graph_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4/direct-graph-closure");
    let links = Label::new("links-to");
    for length in LENGTHS {
        let db = chain_instance(length);
        group.bench_with_input(BenchmarkId::from_parameter(length), &length, |b, _| {
            b.iter(|| good_graph::algo::transitive_closure_by(db.graph(), |e| e.label == links));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_recursive_method, bench_starred_fixpoint, bench_direct_graph_closure
}
criterion_main!(benches);
