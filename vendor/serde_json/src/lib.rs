//! Offline stand-in for `serde_json`.
//!
//! Converts between JSON text and the `serde` stand-in's [`Content`]
//! data model, following upstream `serde_json` conventions: objects for
//! maps and structs, arrays for sequences and tuples, `null` for
//! `None`, externally tagged enums, integer map keys quoted as strings,
//! two-space indentation in pretty mode.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Dynamic JSON document — upstream `serde_json` calls this `Value`.
/// Parse with `from_str::<Value>(..)`, then walk with `doc["key"]`,
/// `.as_u64()`, `.as_seq()`, and friends.
pub use serde::Content as Value;

/// JSON serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Error::new(err.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0)?;
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0)?;
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------------------
// Writer.

fn write_content(
    out: &mut String,
    content: &Content,
    indent: Option<usize>,
    depth: usize,
) -> Result<()> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::Int(value) => {
            out.push_str(&value.to_string());
        }
        Content::Float(value) => {
            if !value.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            // `{:?}` prints the shortest representation that reparses
            // to the same f64, always with a decimal point or exponent.
            out.push_str(&format!("{value:?}"));
        }
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (index, item) in items.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (index, (key, value)) in entries.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                match key {
                    Content::Str(s) => write_string(out, s),
                    // serde_json quotes integer map keys.
                    Content::Int(n) => write_string(out, &n.to_string()),
                    other => {
                        return Err(Error::new(format!(
                            "JSON object key must be a string, found {}",
                            other.kind()
                        )))
                    }
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, value, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    entries.push((Content::Str(key), value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid UTF-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            match text.parse::<i128>() {
                Ok(value) => Ok(Content::Int(value)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Content::Float)
                    .map_err(|_| Error::new(format!("invalid number `{text}`"))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !(self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u'))
                                {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    /// Read four hex digits, advancing past them.
    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let value =
            u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn roundtrip_nested() {
        let mut map: BTreeMap<String, Vec<Option<i64>>> = BTreeMap::new();
        map.insert("xs".into(), vec![Some(1), None, Some(-3)]);
        let json = to_string(&map).unwrap();
        assert_eq!(json, r#"{"xs":[1,null,-3]}"#);
        let back: BTreeMap<String, Vec<Option<i64>>> = from_str(&json).unwrap();
        assert_eq!(map, back);
    }

    #[test]
    fn strings_escape() {
        let text = "a\"b\\c\nd\u{1}e\u{1F600}";
        let json = to_string(&text).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, text);
    }

    #[test]
    fn floats_keep_point() {
        let json = to_string(&2.0f64).unwrap();
        assert_eq!(json, "2.0");
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn torn_input_errors() {
        assert!(from_str::<Vec<u8>>("[1,2").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }

    #[test]
    fn pretty_matches_serde_json_layout() {
        let mut map: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        map.insert("a".into(), vec![1, 2]);
        assert_eq!(
            to_string_pretty(&map).unwrap(),
            "{\n  \"a\": [\n    1,\n    2\n  ]\n}"
        );
    }
}
