//! Opt-in stress tests (`cargo test -- --ignored`): the same semantics
//! at a scale the regular suite doesn't pay for. Each test states its
//! rough budget on a release build.

use good::model::gen::{random_instance, GenConfig};
use good::model::label::Label;
use good::model::macros::recursion::transitive_closure_star;
use good::model::matching::find_matchings;
use good::model::ops::Abstraction;
use good::model::pattern::Pattern;
use good::model::program::Env;

/// ~1 s: a 10k-object instance, built with full invariant enforcement,
/// validated, matched, and abstracted.
#[test]
#[ignore = "stress: run with --ignored"]
fn ten_thousand_object_instance() {
    let db = random_instance(&GenConfig {
        infos: 10_000,
        avg_links: 2.0,
        distinct_dates: 16,
        seed: 7,
    });
    db.validate().unwrap();

    let mut pattern = Pattern::new();
    let a = pattern.node("Info");
    let b = pattern.node("Info");
    let c = pattern.node("Info");
    pattern.edge(a, "links-to", b);
    pattern.edge(b, "links-to", c);
    let matchings = find_matchings(&pattern, &db).unwrap();
    assert!(!matchings.is_empty());

    let mut db = db;
    let mut group_pattern = Pattern::new();
    let info = group_pattern.node("Info");
    Abstraction::new(group_pattern, info, "Grp", "member", "links-to")
        .apply(&mut db)
        .unwrap();
    db.validate().unwrap();
}

/// ~2 s: transitive closure of a 200-node chain via the starred
/// fixpoint — 19,900 derived edges.
#[test]
#[ignore = "stress: run with --ignored"]
fn transitive_closure_of_a_long_chain() {
    let mut db = good::model::instance::Instance::new(good::model::gen::bench_scheme());
    let nodes: Vec<_> = (0..200).map(|_| db.add_object("Info").unwrap()).collect();
    for window in nodes.windows(2) {
        db.add_edge(window[0], "links-to", window[1]).unwrap();
    }
    let (seed, star) = transitive_closure_star("Info", "links-to", "rec-links-to");
    let mut env = Env::with_fuel(100_000_000);
    seed.apply(&mut db).unwrap();
    star.apply(&mut db, &mut env).unwrap();
    let rec = Label::new("rec-links-to");
    let closure = db
        .graph()
        .edges()
        .filter(|e| e.payload.label == rec)
        .count();
    assert_eq!(closure, 200 * 199 / 2);
}

/// ~5 s: a long Turing run inside GOOD — increment a 24-bit number
/// (hundreds of simulated steps, each a full pass over the rule
/// blocks).
#[test]
#[ignore = "stress: run with --ignored"]
fn long_turing_run_in_good() {
    use good::turing::machine::{binary_increment, Outcome};
    let machine = binary_increment();
    let input = "1".repeat(24);
    let expected = match machine.run(&input, 1_000_000) {
        Outcome::Halted { config, .. } => config,
        Outcome::OutOfSteps(_) => unreachable!(),
    };
    let actual = good::turing::run_in_good(&machine, &input, 50_000_000).unwrap();
    assert_eq!(actual, expected);
}

/// ~2 s: the datalog ancestor rules saturating over a 12-deep binary
/// tree (8k nodes).
#[test]
#[ignore = "stress: run with --ignored"]
fn rule_saturation_over_a_big_tree() {
    use good::model::ops::EdgeAddition;
    use good::model::program::Operation;
    use good::model::rules::{Rule, RuleSet};
    use good::model::scheme::SchemeBuilder;

    let scheme = SchemeBuilder::new()
        .object("Person")
        .multivalued("Person", "parent", "Person")
        .multivalued("Person", "ancestor", "Person")
        .build();
    let mut db = good::model::instance::Instance::new(scheme);
    // A complete binary tree of depth 9 (1023 nodes).
    let mut nodes = vec![db.add_object("Person").unwrap()];
    for index in 1..1023 {
        let node = db.add_object("Person").unwrap();
        db.add_edge(node, "parent", nodes[(index - 1) / 2]).unwrap();
        nodes.push(node);
    }

    let mut base = Pattern::new();
    let x = base.node("Person");
    let y = base.node("Person");
    base.edge(x, "parent", y);
    let base_rule = Rule::new(
        "base",
        Operation::EdgeAdd(EdgeAddition::multivalued(base, x, "ancestor", y)),
    );
    let mut step = Pattern::new();
    let x = step.node("Person");
    let y = step.node("Person");
    let z = step.node("Person");
    step.edge(x, "ancestor", y);
    step.edge(y, "parent", z);
    let step_rule = Rule::new(
        "step",
        Operation::EdgeAdd(EdgeAddition::multivalued(step, x, "ancestor", z)),
    );

    let mut env = Env::with_fuel(100_000_000);
    RuleSet::from_rules([base_rule, step_rule])
        .saturate(&mut db, &mut env)
        .unwrap();
    // Ancestor count for a complete binary tree: sum over nodes of
    // their depth.
    let ancestor = Label::new("ancestor");
    let derived = db
        .graph()
        .edges()
        .filter(|e| e.payload.label == ancestor)
        .count();
    let expected: usize = (0..1023usize)
        .map(|index| ((index + 1) as f64).log2().floor() as usize)
        .sum();
    assert_eq!(derived, expected);
}
