//! The `good-db` session: a command interpreter over one object base.
//!
//! Every command is a pure-ish function from (session state, arguments)
//! to a textual report, which makes the whole surface unit-testable
//! without driving a terminal. The binary in `main.rs` is a thin REPL /
//! script-runner around [`Session::execute`].
//!
//! ```text
//! class Info                          # declare an object class
//! printable String string             # declare a printable class
//! functional Info name String        # add a functional triple
//! multivalued Info links-to Info     # add a multivalued triple
//! init                               # freeze the scheme, open the base
//!
//! insert Info as rock                # create objects (with handles)
//! value String "Rock" as rockname    # create/share printables
//! edge rock name rockname            # add edges between handles
//!
//! match { i: Info; n: String; i -name-> n; }
//! tag { i: Info; } i Tag of          # node addition
//! connect { ... } a label b multivalued
//! delete { i: Info; n: String = "x"; i -name-> n; } i
//! unlink { a: Info; b: Info; a -links-to-> b; } a links-to b
//! abstract { i: Info; } i Group member links-to
//!
//! stats | validate | dot [path] | save <path> | load <path> | help
//! ```

use good_core::error::GoodError;
use good_core::instance::Instance;
use good_core::label::Label;
use good_core::matching::{
    default_threads, explain_plan_profiled, find_matchings, set_default_threads, MatchConfig,
};
use good_core::ops::{Abstraction, EdgeAddition, EdgeDeletion, NodeAddition, NodeDeletion};
use good_core::program::Env;
use good_core::scheme::Scheme;
use good_core::textual::parse_pattern;
use good_core::value::{Date, Value, ValueType};
use good_graph::NodeId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// CLI errors: user mistakes with readable messages.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for CliError {}

impl From<GoodError> for CliError {
    fn from(err: GoodError) -> Self {
        CliError(err.to_string())
    }
}

type Result<T> = std::result::Result<T, CliError>;

/// Session state: a scheme under construction, then an open instance.
pub struct Session {
    scheme: Scheme,
    db: Option<Instance>,
    env: Env,
    handles: BTreeMap<String, NodeId>,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A fresh session with an empty scheme and no open base.
    pub fn new() -> Self {
        Session {
            scheme: Scheme::new(),
            db: None,
            env: Env::new(),
            handles: BTreeMap::new(),
        }
    }

    /// The open instance, if `init`/`load` has happened.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn instance(&self) -> Option<&Instance> {
        self.db.as_ref()
    }

    fn db_mut(&mut self) -> Result<&mut Instance> {
        self.db
            .as_mut()
            .ok_or_else(|| CliError("no open object base — run `init` or `load <path>`".into()))
    }

    fn db_ref(&self) -> Result<&Instance> {
        self.db
            .as_ref()
            .ok_or_else(|| CliError("no open object base — run `init` or `load <path>`".into()))
    }

    fn handle(&self, name: &str) -> Result<NodeId> {
        self.handles.get(name).copied().ok_or_else(|| {
            CliError(format!(
                "unknown handle {name} — create it with `... as {name}`"
            ))
        })
    }

    fn describe_node(&self, db: &Instance, node: NodeId) -> String {
        let handle = self
            .handles
            .iter()
            .find(|(_, id)| **id == node)
            .map(|(name, _)| name.clone());
        let label = db
            .node_label(node)
            .map(|l| l.to_string())
            .unwrap_or_else(|| "?".into());
        match (handle, db.print_value(node)) {
            (Some(name), _) => format!("{label}({name})"),
            (None, Some(value)) => format!("{label}({value})"),
            (None, None) => format!("{label}({node:?})"),
        }
    }

    /// Execute one command line (pattern braces must already be
    /// balanced — the REPL accumulates lines until they are). Returns
    /// the textual report.
    pub fn execute(&mut self, line: &str) -> Result<String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let (command, rest) = match line.split_once(char::is_whitespace) {
            Some((head, tail)) => (head, tail.trim()),
            None => (line, ""),
        };
        match command {
            "help" => Ok(HELP.to_string()),
            "class" => self.cmd_class(rest),
            "printable" => self.cmd_printable(rest),
            "functional" => self.cmd_triple(rest, true),
            "multivalued" => self.cmd_triple(rest, false),
            "subclass" => self.cmd_subclass(rest),
            "init" => self.cmd_init(),
            "insert" => self.cmd_insert(rest),
            "value" => self.cmd_value(rest),
            "edge" => self.cmd_edge(rest),
            "match" => self.cmd_match(rest),
            "query" => self.cmd_query(rest),
            "explain" => self.cmd_explain(rest),
            "tag" => self.cmd_tag(rest),
            "connect" => self.cmd_connect(rest),
            "delete" => self.cmd_delete(rest),
            "unlink" => self.cmd_unlink(rest),
            "abstract" => self.cmd_abstract(rest),
            "scheme" => self.cmd_scheme(),
            "stats" => self.cmd_stats(),
            "threads" => self.cmd_threads(rest),
            "validate" => self.cmd_validate(),
            "dot" => self.cmd_dot(rest),
            "save" => self.cmd_save(rest),
            "load" => self.cmd_load(rest),
            other => Err(CliError(format!("unknown command {other:?} — try `help`"))),
        }
    }

    // ---- scheme construction ------------------------------------------

    fn cmd_class(&mut self, rest: &str) -> Result<String> {
        let name = one_word(rest, "class <Name>")?;
        self.scheme.add_object_label(name)?;
        Ok(format!("object class {name} declared"))
    }

    fn cmd_printable(&mut self, rest: &str) -> Result<String> {
        let words: Vec<&str> = rest.split_whitespace().collect();
        let [name, domain] = words.as_slice() else {
            return Err(CliError(
                "usage: printable <Name> <string|int|real|bool|date|bytes>".into(),
            ));
        };
        let value_type = match *domain {
            "string" => ValueType::Str,
            "int" => ValueType::Int,
            "real" => ValueType::Real,
            "bool" => ValueType::Bool,
            "date" => ValueType::Date,
            "bytes" => ValueType::Bytes,
            other => return Err(CliError(format!("unknown domain {other}"))),
        };
        self.scheme.add_printable_label(*name, value_type)?;
        Ok(format!("printable class {name} over {value_type} declared"))
    }

    fn cmd_triple(&mut self, rest: &str, functional: bool) -> Result<String> {
        let words: Vec<&str> = rest.split_whitespace().collect();
        let [src, edge, dst] = words.as_slice() else {
            return Err(CliError(
                "usage: functional|multivalued <Src> <edge> <Dst>".into(),
            ));
        };
        if functional {
            self.scheme.add_functional(*src, *edge, *dst)?;
        } else {
            self.scheme.add_multivalued(*src, *edge, *dst)?;
        }
        let arrow = if functional { "->" } else { "->>" };
        Ok(format!("{src} -{edge}{arrow} {dst} added to P"))
    }

    fn cmd_subclass(&mut self, rest: &str) -> Result<String> {
        let words: Vec<&str> = rest.split_whitespace().collect();
        let [sub, edge, sup] = words.as_slice() else {
            return Err(CliError("usage: subclass <Sub> <isa-edge> <Super>".into()));
        };
        self.scheme.add_functional(*sub, *edge, *sup)?;
        self.scheme.mark_subclass(*sub, *edge, *sup)?;
        Ok(format!("{sub} isa {sup} (via {edge})"))
    }

    fn cmd_init(&mut self) -> Result<String> {
        self.scheme.validate()?;
        let triples = self.scheme.triples().count();
        self.db = Some(Instance::new(self.scheme.clone()));
        self.handles.clear();
        Ok(format!("object base opened ({triples} scheme triples)"))
    }

    // ---- data entry ----------------------------------------------------------

    fn cmd_insert(&mut self, rest: &str) -> Result<String> {
        let (class, handle) = with_optional_handle(rest, "insert <Class> [as <name>]")?;
        let class_label = Label::new(class);
        let db = self.db_mut()?;
        let node = db.add_object(class_label)?;
        let mut out = format!("created {class} object {node:?}");
        if let Some(handle) = handle {
            self.handles.insert(handle.to_string(), node);
            write!(out, " as {handle}").expect("write");
        }
        Ok(out)
    }

    fn cmd_value(&mut self, rest: &str) -> Result<String> {
        // value <Class> <literal> [as <name>]
        let (head, handle) = split_off_handle(rest);
        let (class, literal) = head
            .split_once(char::is_whitespace)
            .ok_or_else(|| CliError("usage: value <Class> <literal> [as <name>]".into()))?;
        let class = class.trim();
        let value = parse_literal(literal.trim())?;
        let db = self.db_mut()?;
        let node = db.add_printable(class, value.clone())?;
        let mut out = format!("printable {class} = {value} is {node:?}");
        if let Some(handle) = handle {
            self.handles.insert(handle.to_string(), node);
            write!(out, " as {handle}").expect("write");
        }
        Ok(out)
    }

    fn cmd_edge(&mut self, rest: &str) -> Result<String> {
        let words: Vec<&str> = rest.split_whitespace().collect();
        let [src, label, dst] = words.as_slice() else {
            return Err(CliError(
                "usage: edge <src-handle> <label> <dst-handle>".into(),
            ));
        };
        let src = self.handle(src)?;
        let dst = self.handle(dst)?;
        let label = Label::new(*label);
        self.db_mut()?.add_edge(src, label.clone(), dst)?;
        Ok(format!("edge {label} added"))
    }

    // ---- queries and operations ------------------------------------------------

    fn cmd_match(&mut self, rest: &str) -> Result<String> {
        let (pattern, names) = parse_pattern(rest)?;
        let db = self.db_ref()?;
        let matchings = find_matchings(&pattern, db)?;
        let mut out = format!("{} matching(s)\n", matchings.len());
        for (index, matching) in matchings.iter().enumerate() {
            write!(out, "  #{}:", index + 1).expect("write");
            for (name, node) in &names {
                if let Some(image) = matching.get(*node) {
                    write!(out, " {name}={}", self.describe_node(db, image)).expect("write");
                }
            }
            out.push('\n');
        }
        Ok(out)
    }

    /// `query [core|relational|tarski|diff] <GOODQL>` — parse a
    /// MATCH/WHERE/RETURN query, compile it to GOOD operations, run it,
    /// and print the answer rows. `diff` runs all three backends and
    /// checks they agree.
    fn cmd_query(&mut self, rest: &str) -> Result<String> {
        let (lane, text) = split_query_lane(rest);
        let text = unquote_query(text);
        if text.is_empty() {
            return Err(CliError(
                "usage: query [core|relational|tarski|diff] <MATCH ... RETURN ...>".into(),
            ));
        }
        let db = self.db_ref()?;
        let (output, note) = match lane {
            QueryLane::Backend(backend) => (
                good_query::run(db, text, backend).map_err(|err| CliError(err.render(text)))?,
                format!("backend: {}", backend.name()),
            ),
            QueryLane::Diff => (
                good_query::run_differential(db, text).map_err(|err| CliError(err.render(text)))?,
                "backends: core = relational = tarski".to_string(),
            ),
        };
        Ok(render_query_output(&output, &note))
    }

    /// `explain { pattern }` — print the access plan the matcher would
    /// run, executed once to annotate each step with actual row counts.
    /// `explain query <GOODQL>` — print the compiled GOOD program and
    /// the matcher's plan for the final pattern.
    fn cmd_explain(&mut self, rest: &str) -> Result<String> {
        if let Some(tail) = rest.strip_prefix("query") {
            if tail.is_empty() || tail.starts_with(char::is_whitespace) {
                let text = unquote_query(tail.trim());
                if text.is_empty() {
                    return Err(CliError(
                        "usage: explain query <MATCH ... RETURN ...>".into(),
                    ));
                }
                let db = self.db_ref()?;
                return good_query::explain(db, text).map_err(|err| CliError(err.render(text)));
            }
        }
        let (pattern, names) = parse_pattern(rest)?;
        let db = self.db_ref()?;
        let plan = explain_plan_profiled(&pattern, db, MatchConfig::default())?;
        let by_node: BTreeMap<NodeId, &String> =
            names.iter().map(|(name, node)| (*node, name)).collect();
        Ok(plan.render_with(|node| by_node.get(&node).map(|name| name.to_string())))
    }

    /// `tag { pattern } <node> <Class> <edge>` — node addition.
    fn cmd_tag(&mut self, rest: &str) -> Result<String> {
        let (pattern_text, tail) = split_pattern(rest)?;
        let (pattern, names) = parse_pattern(pattern_text)?;
        let words: Vec<&str> = tail.split_whitespace().collect();
        let [node, class, edge] = words.as_slice() else {
            return Err(CliError(
                "usage: tag { pattern } <node> <Class> <edge>".into(),
            ));
        };
        let target = *names
            .get(*node)
            .ok_or_else(|| CliError(format!("pattern does not declare {node}")))?;
        let na = NodeAddition::new(pattern, *class, [(Label::new(*edge), target)]);
        let report = na.apply(self.db_mut()?)?;
        Ok(format!(
            "{} matching(s), {} {class} object(s) created",
            report.matchings,
            report.created_nodes.len()
        ))
    }

    /// `connect { pattern } <src> <label> <dst> [functional|multivalued]`.
    fn cmd_connect(&mut self, rest: &str) -> Result<String> {
        let (pattern_text, tail) = split_pattern(rest)?;
        let (pattern, names) = parse_pattern(pattern_text)?;
        let words: Vec<&str> = tail.split_whitespace().collect();
        let (src, label, dst, kind) = match words.as_slice() {
            [src, label, dst] => (src, label, dst, "multivalued"),
            [src, label, dst, kind] => (src, label, dst, *kind),
            _ => {
                return Err(CliError(
                    "usage: connect { pattern } <src> <label> <dst> [functional|multivalued]"
                        .into(),
                ))
            }
        };
        let src = *names
            .get(*src)
            .ok_or_else(|| CliError(format!("pattern does not declare {src}")))?;
        let dst = *names
            .get(*dst)
            .ok_or_else(|| CliError(format!("pattern does not declare {dst}")))?;
        let ea = match kind {
            "functional" => EdgeAddition::functional(pattern, src, *label, dst),
            "multivalued" => EdgeAddition::multivalued(pattern, src, *label, dst),
            other => return Err(CliError(format!("unknown edge kind {other}"))),
        };
        let report = ea.apply(self.db_mut()?)?;
        Ok(format!(
            "{} matching(s), {} edge(s) added",
            report.matchings, report.edges_added
        ))
    }

    /// `delete { pattern } <node>` — node deletion.
    fn cmd_delete(&mut self, rest: &str) -> Result<String> {
        let (pattern_text, tail) = split_pattern(rest)?;
        let (pattern, names) = parse_pattern(pattern_text)?;
        let node = one_word(tail, "delete { pattern } <node>")?;
        let target = *names
            .get(node)
            .ok_or_else(|| CliError(format!("pattern does not declare {node}")))?;
        let report = NodeDeletion::new(pattern, target).apply(self.db_mut()?)?;
        Ok(format!(
            "{} matching(s), {} node(s) deleted",
            report.matchings, report.nodes_deleted
        ))
    }

    /// `unlink { pattern } <src> <label> <dst>` — edge deletion.
    fn cmd_unlink(&mut self, rest: &str) -> Result<String> {
        let (pattern_text, tail) = split_pattern(rest)?;
        let (pattern, names) = parse_pattern(pattern_text)?;
        let words: Vec<&str> = tail.split_whitespace().collect();
        let [src, label, dst] = words.as_slice() else {
            return Err(CliError(
                "usage: unlink { pattern } <src> <label> <dst>".into(),
            ));
        };
        let src = *names
            .get(*src)
            .ok_or_else(|| CliError(format!("pattern does not declare {src}")))?;
        let dst = *names
            .get(*dst)
            .ok_or_else(|| CliError(format!("pattern does not declare {dst}")))?;
        let report = EdgeDeletion::single(pattern, src, *label, dst).apply(self.db_mut()?)?;
        Ok(format!(
            "{} matching(s), {} edge(s) deleted",
            report.matchings, report.edges_deleted
        ))
    }

    /// `abstract { pattern } <node> <Class> <member-edge> <key-edge>`.
    fn cmd_abstract(&mut self, rest: &str) -> Result<String> {
        let (pattern_text, tail) = split_pattern(rest)?;
        let (pattern, names) = parse_pattern(pattern_text)?;
        let words: Vec<&str> = tail.split_whitespace().collect();
        let [node, class, member, key] = words.as_slice() else {
            return Err(CliError(
                "usage: abstract { pattern } <node> <Class> <member-edge> <key-edge>".into(),
            ));
        };
        let target = *names
            .get(*node)
            .ok_or_else(|| CliError(format!("pattern does not declare {node}")))?;
        let ab = Abstraction::new(pattern, target, *class, *member, *key);
        let report = ab.apply(self.db_mut()?)?;
        Ok(format!(
            "{} matching(s), {} group(s) created",
            report.matchings,
            report.created_nodes.len()
        ))
    }

    // ---- inspection and persistence --------------------------------------------

    fn cmd_scheme(&mut self) -> Result<String> {
        let scheme = match &self.db {
            Some(db) => db.scheme(),
            None => &self.scheme,
        };
        let mut out = String::new();
        for label in scheme.object_labels() {
            writeln!(out, "class {label}").expect("write");
        }
        for (label, value_type) in scheme.printable_labels() {
            writeln!(out, "printable {label} {value_type}").expect("write");
        }
        for (src, edge, dst) in scheme.triples() {
            let arrow = match scheme.edge_kind(edge) {
                Some(good_core::label::EdgeKind::Functional) => "->",
                _ => "->>",
            };
            let subclass = if scheme
                .subclass_triples()
                .any(|t| t == &(src.clone(), edge.clone(), dst.clone()))
            {
                "   (subclass)"
            } else {
                ""
            };
            writeln!(out, "{src} -{edge}{arrow} {dst}{subclass}").expect("write");
        }
        Ok(out)
    }

    fn cmd_stats(&mut self) -> Result<String> {
        let db = self.db_ref()?;
        let mut out = format!("{} nodes, {} edges\n", db.node_count(), db.edge_count());
        let mut classes: Vec<(&Label, usize)> = db
            .scheme()
            .object_labels()
            .chain(db.scheme().printable_labels().map(|(l, _)| l))
            .map(|label| (label, db.label_count(label)))
            .filter(|(_, count)| *count > 0)
            .collect();
        classes.sort_by_key(|(label, _)| label.as_str().to_string());
        for (label, count) in classes {
            writeln!(out, "  {label}: {count}").expect("write");
        }
        let triples = db.stats().triples_sorted();
        if !triples.is_empty() {
            writeln!(out, "planner statistics ({} edge triples):", triples.len()).expect("write");
            for (src, edge, dst, stats) in triples {
                writeln!(
                    out,
                    "  {src} -{edge}-> {dst}: {} edges, {} sources (max out <= {}), {} targets (max in <= {})",
                    stats.edges,
                    stats.distinct_sources(),
                    stats.out_degrees.max_degree_bound(),
                    stats.distinct_targets(),
                    stats.in_degrees.max_degree_bound(),
                )
                .expect("write");
            }
        }
        // With a recorder installed (e.g. under --profile), append the
        // runtime metrics accumulated so far.
        if good_trace::enabled() {
            writeln!(out, "metrics: {}", good_trace::metrics_snapshot_json()).expect("write");
        }
        Ok(out)
    }

    fn cmd_threads(&mut self, rest: &str) -> Result<String> {
        let rest = rest.trim();
        if !rest.is_empty() {
            let n: usize = rest
                .parse()
                .map_err(|_| CliError(format!("bad thread count {rest:?}")))?;
            set_default_threads(n);
        }
        Ok(format!("matching threads: {}", default_threads()))
    }

    fn cmd_validate(&mut self) -> Result<String> {
        self.db_ref()?.validate()?;
        Ok("all invariants hold".into())
    }

    fn cmd_dot(&mut self, rest: &str) -> Result<String> {
        let dot = self.db_ref()?.to_dot("good-db");
        if rest.is_empty() {
            Ok(dot)
        } else {
            std::fs::write(rest, &dot).map_err(|err| CliError(err.to_string()))?;
            Ok(format!("DOT written to {rest}"))
        }
    }

    fn cmd_save(&mut self, rest: &str) -> Result<String> {
        let path = one_word(rest, "save <path>")?;
        let json = serde_json::to_string_pretty(self.db_ref()?)
            .map_err(|err| CliError(err.to_string()))?;
        std::fs::write(path, json).map_err(|err| CliError(err.to_string()))?;
        Ok(format!("saved to {path}"))
    }

    fn cmd_load(&mut self, rest: &str) -> Result<String> {
        let path = one_word(rest, "load <path>")?;
        let json = std::fs::read_to_string(path).map_err(|err| CliError(err.to_string()))?;
        let db: Instance = serde_json::from_str(&json).map_err(|err| CliError(err.to_string()))?;
        self.scheme = db.scheme().clone();
        self.db = Some(db);
        self.handles.clear();
        let _ = &self.env;
        Ok(format!("loaded {path}"))
    }
}

// ---- small parsing helpers --------------------------------------------------

fn one_word<'a>(rest: &'a str, usage: &str) -> Result<&'a str> {
    let mut words = rest.split_whitespace();
    match (words.next(), words.next()) {
        (Some(word), None) => Ok(word),
        _ => Err(CliError(format!("usage: {usage}"))),
    }
}

/// Split `{ pattern } tail` into the pattern text (with braces) and the
/// tail after the matching close brace.
fn split_pattern(rest: &str) -> Result<(&str, &str)> {
    let start = rest
        .find('{')
        .ok_or_else(|| CliError("expected a `{ pattern }` block".into()))?;
    let mut depth = 0usize;
    for (offset, ch) in rest[start..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    let end = start + offset + 1;
                    return Ok((&rest[..end], rest[end..].trim()));
                }
            }
            _ => {}
        }
    }
    Err(CliError("unbalanced braces in pattern".into()))
}

fn with_optional_handle<'a>(rest: &'a str, usage: &str) -> Result<(&'a str, Option<&'a str>)> {
    let (head, handle) = split_off_handle(rest);
    let word = one_word(head.trim(), usage)?;
    Ok((word, handle))
}

/// Split a trailing ` as <name>` suffix off, if present.
fn split_off_handle(rest: &str) -> (&str, Option<&str>) {
    if let Some(position) = rest.rfind(" as ") {
        let candidate = rest[position + 4..].trim();
        if !candidate.is_empty() && !candidate.contains(char::is_whitespace) {
            return (&rest[..position], Some(candidate));
        }
    }
    (rest, None)
}

/// Parse a value literal: quoted string, integer, real, bool, or
/// `date(YYYY-MM-DD)`.
fn parse_literal(text: &str) -> Result<Value> {
    if let Some(stripped) = text.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| CliError("unterminated string literal".into()))?;
        return Ok(Value::str(inner));
    }
    if text == "true" || text == "false" {
        return Ok(Value::Bool(text == "true"));
    }
    if let Some(inner) = text.strip_prefix("date(").and_then(|t| t.strip_suffix(')')) {
        let parts: Vec<&str> = inner.split('-').collect();
        let [year, month, day] = parts.as_slice() else {
            return Err(CliError(format!("bad date literal {text}")));
        };
        let (year, month, day) = (
            year.parse().map_err(|_| CliError("bad year".into()))?,
            month.parse().map_err(|_| CliError("bad month".into()))?,
            day.parse().map_err(|_| CliError("bad day".into()))?,
        );
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return Err(CliError(format!("date out of range: {text}")));
        }
        return Ok(Value::Date(Date::new(year, month, day)));
    }
    if text.contains('.') {
        if let Ok(real) = text.parse::<f64>() {
            return Ok(Value::real(real));
        }
    }
    text.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| CliError(format!("cannot parse literal {text:?}")))
}

/// Which execution lane `query` should use.
enum QueryLane {
    Backend(good_query::Backend),
    Diff,
}

/// Peel an optional leading lane keyword off a `query` command line.
/// `query tarski MATCH ...` selects a backend, `query diff MATCH ...`
/// runs the three-way differential check; the default is the core
/// pattern matcher.
fn split_query_lane(rest: &str) -> (QueryLane, &str) {
    if let Some((head, tail)) = rest.split_once(char::is_whitespace) {
        if head == "diff" {
            return (QueryLane::Diff, tail.trim_start());
        }
        if let Some(backend) = good_query::Backend::from_name(head) {
            return (QueryLane::Backend(backend), tail.trim_start());
        }
    }
    (QueryLane::Backend(good_query::Backend::Core), rest)
}

/// Queries may be wrapped in one layer of double quotes (the scripted
/// form in the issue examples); GOODQL string literals never appear at
/// both ends of a valid query, so stripping the pair is unambiguous.
fn unquote_query(text: &str) -> &str {
    let text = text.trim();
    match text.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
        Some(inner) if !inner.is_empty() => inner,
        _ => text,
    }
}

/// Render answer rows as an aligned table with a trailing row count.
fn render_query_output(output: &good_query::QueryOutput, note: &str) -> String {
    let mut widths: Vec<usize> = output.columns.iter().map(|c| c.chars().count()).collect();
    for row in &output.rows {
        for (cell, width) in row.iter().zip(widths.iter_mut()) {
            *width = (*width).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let render_row = |out: &mut String, cells: &[String]| {
        for (index, (cell, width)) in cells.iter().zip(&widths).enumerate() {
            if index > 0 {
                out.push_str("  ");
            }
            write!(out, "{cell:<width$}").expect("write");
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    render_row(&mut out, &output.columns);
    for row in &output.rows {
        render_row(&mut out, row);
    }
    write!(out, "{} row(s) — {note}", output.rows.len()).expect("write");
    out
}

const HELP: &str = "\
scheme:  class <Name> | printable <Name> <domain> | functional <S> <e> <D>
         multivalued <S> <e> <D> | subclass <Sub> <isa> <Super> | init
data:    insert <Class> [as h] | value <Class> <lit> [as h] | edge <h> <label> <h>
query:   match { pattern } | explain { pattern }
         query [core|relational|tarski|diff] <MATCH ... RETURN ...>
         explain query <MATCH ... RETURN ...>
ops:     tag { p } <node> <Class> <edge>
         connect { p } <src> <label> <dst> [functional|multivalued]
         delete { p } <node> | unlink { p } <src> <label> <dst>
         abstract { p } <node> <Class> <member-edge> <key-edge>
misc:    scheme | stats | threads [n] | validate | dot [path] | save <path> | load <path>
         help | quit
";

#[cfg(test)]
mod tests {
    use super::*;

    fn bootstrapped() -> Session {
        let mut session = Session::new();
        for command in [
            "class Info",
            "printable String string",
            "printable Date date",
            "functional Info name String",
            "functional Info created Date",
            "multivalued Info links-to Info",
            "init",
            "insert Info as rock",
            "insert Info as doors",
            "value String \"Rock\" as rockname",
            "edge rock name rockname",
            "value Date date(1990-01-14) as d14",
            "edge rock created d14",
            "edge rock links-to doors",
        ] {
            session
                .execute(command)
                .unwrap_or_else(|err| panic!("{command}: {err}"));
        }
        session
    }

    #[test]
    fn scheme_and_data_commands_build_an_instance() {
        let session = bootstrapped();
        let db = session.instance().unwrap();
        assert_eq!(db.node_count(), 4);
        assert_eq!(db.edge_count(), 3);
        db.validate().unwrap();
    }

    #[test]
    fn match_reports_bindings_with_handles() {
        let mut session = bootstrapped();
        let out = session
            .execute("match { i: Info; n: String = \"Rock\"; i -name-> n; }")
            .unwrap();
        assert!(out.starts_with("1 matching(s)"));
        assert!(out.contains("i=Info(rock)"));
    }

    #[test]
    fn explain_prints_a_plan_with_pattern_names() {
        let mut session = bootstrapped();
        let out = session
            .execute("explain { i: Info; n: String = \"Rock\"; i -name-> n; }")
            .unwrap();
        assert!(out.starts_with("match plan (2 steps"), "{out}");
        assert!(out.contains("bind n [String]"), "{out}");
        assert!(out.contains("bind i [Info]"), "{out}");
        assert!(out.contains("root candidates:"), "{out}");
        assert!(out.contains("sequential"), "{out}");
        // The session explain executes the plan, so every step carries
        // an actual row count next to its estimate.
        assert!(out.contains("actual 1 rows"), "{out}");
        assert!(out.contains("strategy: expand"), "{out}");
        // Without an open base it errors like the other query commands.
        let mut fresh = Session::new();
        fresh.execute("class Info").unwrap();
        assert!(fresh.execute("explain { i: Info; }").is_err());
    }

    #[test]
    fn query_runs_goodql_text_end_to_end() {
        let mut session = bootstrapped();
        let out = session
            .execute("query MATCH (i:Info)-[:name]->(n:String) RETURN n")
            .unwrap();
        assert!(out.contains("Rock"), "{out}");
        assert!(out.contains("1 row(s)"), "{out}");
        assert!(out.contains("backend: core"), "{out}");
        // Quoted form, explicit backend, and the differential lane.
        let quoted = session
            .execute("query tarski \"MATCH (i:Info) RETURN i\"")
            .unwrap();
        assert!(quoted.contains("2 row(s)"), "{quoted}");
        assert!(quoted.contains("backend: tarski"), "{quoted}");
        let diff = session
            .execute("query diff MATCH (i:Info)-[:links-to*]->(j:Info) RETURN i, j")
            .unwrap();
        assert!(diff.contains("core = relational = tarski"), "{diff}");
        assert!(diff.contains("1 row(s)"), "{diff}");
    }

    #[test]
    fn query_errors_render_a_caret_and_need_an_open_base() {
        let mut session = bootstrapped();
        let err = session
            .execute("query MATCH (i:Info RETURN i")
            .unwrap_err()
            .to_string();
        assert!(err.contains("parse error"), "{err}");
        assert!(err.contains('^'), "{err}");
        let unknown = session
            .execute("query MATCH (i:Nope) RETURN i")
            .unwrap_err()
            .to_string();
        assert!(unknown.contains("Nope"), "{unknown}");
        let mut fresh = Session::new();
        assert!(fresh.execute("query MATCH (i:Info) RETURN i").is_err());
    }

    #[test]
    fn explain_query_prints_the_compiled_program_and_plan() {
        let mut session = bootstrapped();
        let out = session
            .execute("explain query MATCH (i:Info)-[:links-to*]->(j:Info) RETURN j")
            .unwrap();
        assert!(out.contains("step 1:"), "{out}");
        assert!(out.contains("match plan"), "{out}");
        assert!(out.contains("i="), "{out}");
        assert!(session.execute("explain query").is_err());
    }

    #[test]
    fn stats_appends_metrics_only_when_tracing() {
        let mut session = bootstrapped();
        let out = session.execute("stats").unwrap();
        assert!(!out.contains("metrics:"));
        assert!(
            out.contains("planner statistics (3 edge triples):"),
            "{out}"
        );
        assert!(
            out.contains(
                "Info -links-to-> Info: 1 edges, 1 sources (max out <= 1), 1 targets (max in <= 1)"
            ),
            "{out}"
        );
    }

    #[test]
    fn tag_runs_a_node_addition() {
        let mut session = bootstrapped();
        let out = session
            .execute("tag { i: Info; o: Info; i -links-to-> o; } o Tag of")
            .unwrap();
        assert!(out.contains("1 Tag object(s) created"), "{out}");
        let db = session.instance().unwrap();
        assert_eq!(db.label_count(&"Tag".into()), 1);
    }

    #[test]
    fn connect_and_unlink_round_trip() {
        let mut session = bootstrapped();
        session
            .execute("connect { a: Info; b: Info; a -links-to-> b; } b rev-links a multivalued")
            .unwrap();
        let db = session.instance().unwrap();
        assert_eq!(db.edge_count(), 4);
        session
            .execute("unlink { a: Info; b: Info; a -rev-links-> b; } a rev-links b")
            .unwrap();
        assert_eq!(session.instance().unwrap().edge_count(), 3);
    }

    #[test]
    fn delete_removes_matched_nodes() {
        let mut session = bootstrapped();
        session
            .execute("delete { i: Info; n: String = \"Rock\"; i -name-> n; } i")
            .unwrap();
        let db = session.instance().unwrap();
        assert_eq!(db.label_count(&"Info".into()), 1);
    }

    #[test]
    fn abstract_groups_objects() {
        let mut session = bootstrapped();
        let out = session
            .execute("abstract { i: Info; } i Group member links-to")
            .unwrap();
        assert!(out.contains("group(s) created"), "{out}");
        assert_eq!(session.instance().unwrap().label_count(&"Group".into()), 2);
    }

    #[test]
    fn scheme_command_lists_the_scheme() {
        let mut session = bootstrapped();
        let out = session.execute("scheme").unwrap();
        assert!(out.contains("class Info"));
        assert!(out.contains("printable String string"));
        assert!(out.contains("Info -links-to->> Info"));
        assert!(out.contains("Info -name-> String"));
        // Works before init too.
        let mut fresh = Session::new();
        fresh.execute("class A").unwrap();
        assert!(fresh.execute("scheme").unwrap().contains("class A"));
    }

    #[test]
    fn subclass_command_marks_isa() {
        let mut session = Session::new();
        for command in ["class A", "class B", "subclass A isa B", "init"] {
            session.execute(command).unwrap();
        }
        let out = session.execute("scheme").unwrap();
        assert!(out.contains("(subclass)"), "{out}");
    }

    #[test]
    fn stats_validate_and_dot() {
        let mut session = bootstrapped();
        let stats = session.execute("stats").unwrap();
        assert!(stats.contains("4 nodes, 3 edges"));
        assert!(stats.contains("Info: 2"));
        assert_eq!(session.execute("validate").unwrap(), "all invariants hold");
        assert!(session.execute("dot").unwrap().contains("digraph"));
    }

    #[test]
    fn save_and_load_round_trip() {
        let mut path = std::env::temp_dir();
        path.push(format!("good-cli-test-{}.json", std::process::id()));
        let path_text = path.to_str().unwrap().to_string();

        let mut session = bootstrapped();
        session.execute(&format!("save {path_text}")).unwrap();

        let mut fresh = Session::new();
        fresh.execute(&format!("load {path_text}")).unwrap();
        let out = fresh
            .execute("match { i: Info; n: String = \"Rock\"; i -name-> n; }")
            .unwrap();
        assert!(out.starts_with("1 matching(s)"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn helpful_errors() {
        let mut session = Session::new();
        let err = session.execute("stats").unwrap_err();
        assert!(err.0.contains("no open object base"));
        let err = session.execute("bogus command").unwrap_err();
        assert!(err.0.contains("unknown command"));
        session.execute("class Info").unwrap();
        session.execute("init").unwrap();
        let err = session.execute("edge a name b").unwrap_err();
        assert!(err.0.contains("unknown handle"));
        let err = session
            .execute("tag { i: Info; } missing Tag of")
            .unwrap_err();
        assert!(err.0.contains("does not declare"));
    }

    #[test]
    fn threads_command_reports_and_sets() {
        let mut session = Session::new();
        let out = session.execute("threads 2").unwrap();
        assert_eq!(out, "matching threads: 2");
        assert!(session.execute("threads nope").is_err());
        // Restore auto-detection for other tests in this process.
        let restored = session.execute("threads 0").unwrap();
        assert!(restored.starts_with("matching threads: "));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let mut session = Session::new();
        assert_eq!(session.execute("").unwrap(), "");
        assert_eq!(session.execute("# a comment").unwrap(), "");
    }

    #[test]
    fn literals_parse() {
        assert_eq!(parse_literal("\"x y\"").unwrap(), Value::str("x y"));
        assert_eq!(parse_literal("42").unwrap(), Value::int(42));
        assert_eq!(parse_literal("2.5").unwrap(), Value::real(2.5));
        assert_eq!(parse_literal("true").unwrap(), Value::Bool(true));
        assert_eq!(
            parse_literal("date(1990-01-14)").unwrap(),
            Value::date(1990, 1, 14)
        );
        assert!(parse_literal("wat").is_err());
        assert!(parse_literal("date(1990-13-01)").is_err());
    }

    #[test]
    fn split_pattern_handles_nesting_and_errors() {
        let (pattern, tail) = split_pattern("{ a: A; } x y").unwrap();
        assert_eq!(pattern, "{ a: A; }");
        assert_eq!(tail, "x y");
        assert!(split_pattern("no braces").is_err());
        assert!(split_pattern("{ unbalanced").is_err());
    }
}
