//! Cost-based pattern planning over incremental cardinality statistics.
//!
//! The matcher used to pick its binding order with fixed heuristics
//! (exact anchor → smallest postings → scan fallback). This module
//! replaces that with a costed search: per-triple statistics from
//! [`crate::stats::InstanceStats`] — edge counts, distinct endpoint
//! counts, degree histograms, all maintained incrementally so planning
//! never scans the graph — are folded into per-pattern-edge scalars
//! (expected fan in both directions, pair selectivity), and a greedy
//! planner grows a binding order from *every* possible root,
//! propagating a cardinality estimate through the pattern and keeping
//! the cheapest-total-cost order.
//!
//! The planner also decides the *evaluation strategy*. Binary
//! (edge-at-a-time) expansion is optimal for trees and chains, but
//! "Complexity of Evaluating GQL Queries" maps the cyclic pattern
//! classes where any binary join order materializes asymptotically more
//! intermediate rows than the final result contains. When the pattern
//! is cyclic *and* the propagated estimate predicts such a blow-up
//! (peak intermediate rows > [`WCOJ_BLOWUP_FACTOR`] × final rows), the
//! plan selects the generic-join path ([`crate::wcoj`]), which binds
//! one variable at a time against the sorted intersection of *all* its
//! bound-neighbour candidate sets — the worst-case-optimal discipline.
//!
//! Everything here is pure arithmetic over a handful of f64s per
//! pattern edge: a 3-node anchored point query plans in well under a
//! microsecond, protecting the matcher's hot path.

use crate::error::{GoodError, Result};
use crate::instance::Instance;
use crate::matching::{extends_to_full, node_compatible, Matching};
use crate::pattern::{Pattern, PatternNodeKind};
use good_graph::NodeId;
use std::collections::BTreeMap;

/// Peak-to-final estimate ratio beyond which a cyclic pattern is routed
/// to the generic-join path.
pub const WCOJ_BLOWUP_FACTOR: f64 = 8.0;

/// Assumed selectivity of a value predicate (`<`, range, prefix, …) on
/// a printable node — the classic "magic third" in absence of value
/// histograms.
const PREDICATE_SELECTIVITY: f64 = 1.0 / 3.0;

/// How the chosen order is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Edge-at-a-time expansion (backtracking search); optimal for
    /// acyclic patterns.
    Expand,
    /// Generic join: per-variable sorted intersection over all
    /// bound-neighbour candidate sets; worst-case optimal for cyclic
    /// patterns whose binary plans blow up.
    GenericJoin,
}

impl JoinStrategy {
    /// Short lowercase name for rendering and span args.
    pub fn name(&self) -> &'static str {
        match self {
            JoinStrategy::Expand => "expand",
            JoinStrategy::GenericJoin => "generic-join",
        }
    }
}

/// Per-step estimates of the chosen order.
#[derive(Debug, Clone)]
pub struct StepEstimate {
    /// The pattern node bound at this step.
    pub node: NodeId,
    /// Estimated candidates enumerated per partial row at this step
    /// (the scan width the cost model charges).
    pub est_scanned: f64,
    /// Estimated partial matchings alive *after* this step.
    pub est_rows: f64,
}

/// The planner's output: a costed binding order plus the strategy
/// decision, consumed by `find_matchings_with` and `explain_plan`.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// Binding order (all positive pattern nodes).
    pub order: Vec<NodeId>,
    /// Per-step cardinality estimates, parallel to `order`.
    pub steps: Vec<StepEstimate>,
    /// Estimated final matching count.
    pub est_rows: f64,
    /// Largest estimated intermediate row count along the order.
    pub est_peak: f64,
    /// Total estimated cost: Σ rows-before × scan width per step.
    pub est_cost: f64,
    /// Whether the positive pattern contains a (non-self-loop) cycle.
    pub cyclic: bool,
    /// The selected evaluation strategy.
    pub strategy: JoinStrategy,
}

/// Precomputed scalars for one positive pattern edge, derived from the
/// instance statistics once per `plan` call so the greedy search is
/// pure arithmetic.
struct EdgeScalars {
    src: NodeId,
    dst: NodeId,
    /// Expected `λ`-successors of an *arbitrary* source-labeled node
    /// (edges / |source extent|) — the fan charged when expanding
    /// source → target.
    fan_out: f64,
    /// The symmetric fan for target → source expansion.
    fan_in: f64,
    /// Probability a random (source, target) pair carries the edge
    /// (edges / (|source extent| × |target extent|), capped at 1) —
    /// the filter applied by a cycle-closing edge.
    sel: f64,
}

/// Greedy growth state for one candidate root.
struct GreedyRun {
    order: Vec<NodeId>,
    steps: Vec<StepEstimate>,
    est_rows: f64,
    est_peak: f64,
    est_cost: f64,
}

/// The planning context: node-local estimates and edge scalars indexed
/// by pattern-node arena slot.
struct Planner<'a> {
    pattern: &'a Pattern,
    nodes: Vec<NodeId>,
    /// Cold candidate estimate per node slot (label extent bounded by
    /// edge-endpoint distinct counts, times local selectivity).
    root_est: Vec<f64>,
    edges: Vec<EdgeScalars>,
    /// Edge indexes incident to each node slot (self-loops excluded —
    /// they are runtime filters the estimates ignore).
    incident: Vec<Vec<usize>>,
}

impl<'a> Planner<'a> {
    fn new(pattern: &'a Pattern, instance: &Instance) -> Self {
        let graph = pattern.graph();
        let bound = graph.node_index_bound();
        let nodes: Vec<NodeId> = graph.node_ids().collect();
        let stats = instance.stats();

        let mut edges = Vec::new();
        let mut incident: Vec<Vec<usize>> = vec![Vec::new(); bound];
        for edge in graph.edges() {
            if edge.payload.negated {
                continue;
            }
            let src_label = match &graph.node(edge.src).expect("live").kind {
                PatternNodeKind::Class(label) => label,
                PatternNodeKind::MethodHead(_) => continue,
            };
            let dst_label = match &graph.node(edge.dst).expect("live").kind {
                PatternNodeKind::Class(label) => label,
                PatternNodeKind::MethodHead(_) => continue,
            };
            let src_extent = instance.label_count(src_label) as f64;
            let dst_extent = instance.label_count(dst_label) as f64;
            let (fan_out, fan_in, sel) =
                match stats.triple(src_label, &edge.payload.label, dst_label) {
                    Some(triple) if src_extent > 0.0 && dst_extent > 0.0 => {
                        let edge_count = triple.edges as f64;
                        (
                            edge_count / src_extent,
                            edge_count / dst_extent,
                            (edge_count / (src_extent * dst_extent)).min(1.0),
                        )
                    }
                    // No such edge in the instance: the pattern cannot
                    // match through it.
                    _ => (0.0, 0.0, 0.0),
                };
            let index = edges.len();
            edges.push(EdgeScalars {
                src: edge.src,
                dst: edge.dst,
                fan_out,
                fan_in,
                sel,
            });
            if edge.src != edge.dst {
                incident[edge.src.index()].push(index);
                incident[edge.dst.index()].push(index);
            }
        }

        let mut root_est = vec![0.0f64; bound];
        for &node in &nodes {
            let data = graph.node(node).expect("live");
            let PatternNodeKind::Class(label) = &data.kind else {
                continue;
            };
            if data.print.is_some() {
                // Exact printable value: one index probe.
                root_est[node.index()] = 1.0;
                continue;
            }
            // Label extent, tightened by the distinct endpoint counts of
            // every incident edge (a node with an outgoing λ must be one
            // of the triple's distinct sources), times predicate
            // selectivity.
            let mut est = instance.label_count(label) as f64;
            for edge in graph.out_edges(node) {
                if edge.payload.negated {
                    continue;
                }
                if let PatternNodeKind::Class(dst_label) = &graph.node(edge.dst).expect("live").kind
                {
                    let distinct = stats
                        .triple(label, &edge.payload.label, dst_label)
                        .map_or(0.0, |t| t.distinct_sources() as f64);
                    est = est.min(distinct);
                }
            }
            for edge in graph.in_edges(node) {
                if edge.payload.negated || edge.src == node {
                    continue;
                }
                if let PatternNodeKind::Class(src_label) = &graph.node(edge.src).expect("live").kind
                {
                    let distinct = stats
                        .triple(src_label, &edge.payload.label, label)
                        .map_or(0.0, |t| t.distinct_targets() as f64);
                    est = est.min(distinct);
                }
            }
            if data.predicate.is_some() {
                est *= PREDICATE_SELECTIVITY;
            }
            root_est[node.index()] = est;
        }

        Planner {
            pattern,
            nodes,
            root_est,
            edges,
            incident,
        }
    }

    /// Estimated (scan width, row multiplier) of binding `node` when
    /// every node in `bound` is already bound.
    fn step_estimate(&self, node: NodeId, bound: &[bool]) -> (f64, f64) {
        let data = self.pattern.graph().node(node).expect("live");
        let connecting: Vec<&EdgeScalars> = self.incident[node.index()]
            .iter()
            .map(|&index| &self.edges[index])
            .filter(|edge| {
                let other = if edge.src == node { edge.dst } else { edge.src };
                bound[other.index()]
            })
            .collect();
        if connecting.is_empty() {
            // Start node (root, or a disconnected component): a fresh
            // enumeration crossed with the rows so far.
            let width = self.root_est[node.index()];
            return (width, width);
        }
        if data.print.is_some() {
            // One probe, then every connecting edge filters the row.
            let factor: f64 = connecting.iter().map(|edge| edge.sel).product();
            return (1.0, factor);
        }
        // Enumerate along the lowest-fan connecting edge; every other
        // connecting edge closes onto an already-bound node and filters
        // with its pair selectivity.
        let fan = |edge: &EdgeScalars| {
            if edge.dst == node {
                edge.fan_out
            } else {
                edge.fan_in
            }
        };
        let (anchor_index, _) = connecting
            .iter()
            .enumerate()
            .map(|(index, edge)| (index, fan(edge)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty connecting set");
        let width = fan(connecting[anchor_index]);
        let mut factor = width;
        for (index, edge) in connecting.iter().enumerate() {
            if index != anchor_index {
                factor *= edge.sel;
            }
        }
        if data.predicate.is_some() {
            factor *= PREDICATE_SELECTIVITY;
        }
        (width, factor)
    }

    /// Grow a full binding order greedily from `root`, propagating the
    /// cardinality estimate: at every step the unbound node with the
    /// smallest estimated row count after binding wins (connected nodes
    /// before disconnected ones, pattern-node id breaking ties).
    fn greedy(&self, root: NodeId) -> GreedyRun {
        let capacity = self.pattern.graph().node_index_bound();
        let mut bound = vec![false; capacity];
        let mut run = GreedyRun {
            order: Vec::with_capacity(self.nodes.len()),
            steps: Vec::with_capacity(self.nodes.len()),
            est_rows: 1.0,
            est_peak: 0.0,
            est_cost: 0.0,
        };
        let mut next = Some(root);
        while let Some(node) = next {
            let (width, factor) = self.step_estimate(node, &bound);
            run.est_cost += run.est_rows * width;
            run.est_rows *= factor;
            run.est_peak = run.est_peak.max(run.est_rows);
            run.order.push(node);
            run.steps.push(StepEstimate {
                node,
                est_scanned: width,
                est_rows: run.est_rows,
            });
            bound[node.index()] = true;
            // Pick the cheapest next node: any connected candidate beats
            // any disconnected one (a cross product multiplies rows by a
            // whole extent).
            next = self
                .nodes
                .iter()
                .filter(|n| !bound[n.index()])
                .map(|&n| {
                    let connected = self.incident[n.index()].iter().any(|&index| {
                        let edge = &self.edges[index];
                        let other = if edge.src == n { edge.dst } else { edge.src };
                        bound[other.index()]
                    });
                    let (_, factor) = self.step_estimate(n, &bound);
                    (!connected, run.est_rows * factor, n)
                })
                .min_by(|a, b| {
                    // Lexicographic: connectedness first, then estimated
                    // rows, then node id for determinism.
                    a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2))
                })
                .map(|(_, _, n)| n);
        }
        run
    }

    /// Is any connected component of the positive pattern cyclic
    /// (edges ≥ nodes, self-loops excluded)? Union-find over the node
    /// arena.
    fn cyclic(&self) -> bool {
        let capacity = self.pattern.graph().node_index_bound();
        let mut parent: Vec<usize> = (0..capacity).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for edge in &self.edges {
            if edge.src == edge.dst {
                continue;
            }
            let a = find(&mut parent, edge.src.index());
            let b = find(&mut parent, edge.dst.index());
            parent[a] = b;
        }
        let mut node_counts: BTreeMap<usize, usize> = BTreeMap::new();
        for node in &self.nodes {
            let root = find(&mut parent, node.index());
            *node_counts.entry(root).or_insert(0) += 1;
        }
        let mut edge_counts: BTreeMap<usize, usize> = BTreeMap::new();
        for edge in &self.edges {
            if edge.src == edge.dst {
                continue;
            }
            let root = find(&mut parent, edge.src.index());
            *edge_counts.entry(root).or_insert(0) += 1;
        }
        edge_counts
            .iter()
            .any(|(root, edges)| *edges >= node_counts.get(root).copied().unwrap_or(usize::MAX))
    }
}

/// Cost-rank every candidate binding order of `pattern`'s positive part
/// against `instance` and return the cheapest, together with the
/// expand-vs-generic-join strategy decision.
///
/// Negated nodes and edges are ignored (they are a post-filter, not a
/// join); callers usually pass `pattern.positive_part()` but the full
/// pattern is accepted. All estimates come from the incrementally
/// maintained [`crate::stats::InstanceStats`] — no graph scan.
pub fn plan(pattern: &Pattern, instance: &Instance) -> PlanChoice {
    let planner = Planner::new(pattern, instance);
    if planner.nodes.is_empty() {
        return PlanChoice {
            order: Vec::new(),
            steps: Vec::new(),
            est_rows: 1.0,
            est_peak: 1.0,
            est_cost: 0.0,
            cyclic: false,
            strategy: JoinStrategy::Expand,
        };
    }
    let best = planner
        .nodes
        .iter()
        .map(|&root| planner.greedy(root))
        .min_by(|a, b| a.est_cost.total_cmp(&b.est_cost))
        .expect("non-empty pattern");
    let cyclic = planner.cyclic();
    let strategy = if cyclic
        && best.order.len() >= 3
        && best.est_peak > WCOJ_BLOWUP_FACTOR * best.est_rows.max(1.0)
    {
        JoinStrategy::GenericJoin
    } else {
        JoinStrategy::Expand
    };
    PlanChoice {
        order: best.order,
        steps: best.steps,
        est_rows: best.est_rows,
        est_peak: best.est_peak,
        est_cost: best.est_cost,
        cyclic,
        strategy,
    }
}

// ---- binary (edge-at-a-time) join baseline --------------------------------

/// Find all matchings by *materializing* edge-at-a-time binary joins:
/// pattern edges are folded left to right into a flat row table, each
/// join either expanding rows along an edge's postings or filtering
/// rows when both endpoints are already bound.
///
/// This is the evaluation discipline the planner's generic-join path
/// exists to beat: on cyclic patterns the intermediate row table holds
/// every open wedge before the closing edge filters it — Θ(Σ degree²)
/// rows for a triangle — where the worst-case-optimal path stays near
/// the final output size. Kept as a public engine for differential
/// tests and benchmark E18; results are canonical (sorted, deduped,
/// negation post-filtered) and bit-identical to every other engine.
pub fn find_matchings_binary(pattern: &Pattern, instance: &Instance) -> Result<Vec<Matching>> {
    if pattern.has_method_head() {
        return Err(GoodError::InvalidPattern(
            "patterns with method-head nodes must be rewritten before matching".into(),
        ));
    }
    pattern.validate(instance.scheme())?;
    let positive = pattern.positive_part();
    let graph = positive.graph();
    let capacity = graph.node_index_bound();

    // Column layout: pattern-node arena slot → row column, assigned as
    // nodes first appear in the join sequence.
    let mut column: Vec<Option<usize>> = vec![None; capacity];
    let mut columns = 0usize;
    // Flattened row storage: `columns` node ids per row.
    let mut rows: Vec<NodeId> = Vec::new();
    let mut started = false;

    let compatible = |node: NodeId, candidate: NodeId| -> bool {
        node_compatible(instance, graph.node(node).expect("live"), candidate)
    };
    let candidates_of = |node: NodeId| -> Vec<NodeId> {
        let data = graph.node(node).expect("live");
        let PatternNodeKind::Class(label) = &data.kind else {
            return Vec::new();
        };
        if let Some(value) = &data.print {
            return match instance.find_printable(label, value) {
                Some(found) => vec![found],
                None => Vec::new(),
            };
        }
        instance
            .nodes_with_label(label)
            .filter(|c| compatible(node, *c))
            .collect()
    };

    for edge in graph.edges() {
        if edge.payload.negated {
            continue;
        }
        let label = &edge.payload.label;
        let src_col = column[edge.src.index()];
        let dst_col = column[edge.dst.index()];
        if !started {
            started = true;
            if edge.src == edge.dst {
                column[edge.src.index()] = Some(0);
                columns = 1;
                rows = candidates_of(edge.src)
                    .into_iter()
                    .filter(|&c| instance.has_edge(c, label, c))
                    .collect();
            } else {
                column[edge.src.index()] = Some(0);
                column[edge.dst.index()] = Some(1);
                columns = 2;
                for src in candidates_of(edge.src) {
                    for dst in instance.targets(src, label) {
                        if compatible(edge.dst, dst) {
                            rows.push(src);
                            rows.push(dst);
                        }
                    }
                }
            }
            continue;
        }
        match (src_col, dst_col) {
            (Some(s), Some(d)) => {
                // Both endpoints bound: pure filter.
                let mut filtered: Vec<NodeId> = Vec::new();
                for row in rows.chunks(columns) {
                    if instance.has_edge(row[s], label, row[d]) {
                        filtered.extend_from_slice(row);
                    }
                }
                rows = filtered;
            }
            (Some(s), None) => {
                // Expand src → dst: every row spawns one row per
                // successor. This is where cyclic patterns blow up.
                let mut expanded: Vec<NodeId> = Vec::new();
                for row in rows.chunks(columns) {
                    for dst in instance.targets(row[s], label) {
                        if compatible(edge.dst, dst) {
                            expanded.extend_from_slice(row);
                            expanded.push(dst);
                        }
                    }
                }
                column[edge.dst.index()] = Some(columns);
                columns += 1;
                rows = expanded;
            }
            (None, Some(d)) => {
                let mut expanded: Vec<NodeId> = Vec::new();
                for row in rows.chunks(columns) {
                    for src in instance.sources(row[d], label) {
                        if compatible(edge.src, src) {
                            expanded.extend_from_slice(row);
                            expanded.push(src);
                        }
                    }
                }
                column[edge.src.index()] = Some(columns);
                columns += 1;
                rows = expanded;
            }
            (None, None) => {
                // Disconnected edge: cross product with its full pair
                // set (and self-loop filter when the endpoints
                // coincide).
                let pairs: Vec<(NodeId, NodeId)> = if edge.src == edge.dst {
                    candidates_of(edge.src)
                        .into_iter()
                        .filter(|&c| instance.has_edge(c, label, c))
                        .map(|c| (c, c))
                        .collect()
                } else {
                    let mut pairs = Vec::new();
                    for src in candidates_of(edge.src) {
                        for dst in instance.targets(src, label) {
                            if compatible(edge.dst, dst) {
                                pairs.push((src, dst));
                            }
                        }
                    }
                    pairs
                };
                let mut expanded: Vec<NodeId> = Vec::new();
                for row in rows.chunks(columns) {
                    for (src, dst) in &pairs {
                        expanded.extend_from_slice(row);
                        expanded.push(*src);
                        if edge.src != edge.dst {
                            expanded.push(*dst);
                        }
                    }
                }
                column[edge.src.index()] = Some(columns);
                columns += 1;
                if edge.src != edge.dst {
                    column[edge.dst.index()] = Some(columns);
                    columns += 1;
                }
                rows = expanded;
            }
        }
        if rows.is_empty() {
            break;
        }
    }

    // Isolated positive nodes (no non-negated incident edge): cross
    // product with their candidate lists.
    let all_nodes: Vec<NodeId> = graph.node_ids().collect();
    for &node in &all_nodes {
        if column[node.index()].is_some() {
            continue;
        }
        let cands = candidates_of(node);
        if !started {
            started = true;
            column[node.index()] = Some(0);
            columns = 1;
            rows = cands;
            continue;
        }
        let mut expanded: Vec<NodeId> = Vec::new();
        for row in rows.chunks(columns) {
            for &cand in &cands {
                expanded.extend_from_slice(row);
                expanded.push(cand);
            }
        }
        column[node.index()] = Some(columns);
        columns += 1;
        rows = expanded;
    }

    let mut results: Vec<Matching> = if !started {
        // The empty pattern has exactly one (empty) matching.
        vec![Matching::from_pairs([])]
    } else {
        rows.chunks(columns)
            .map(|row| {
                Matching::from_pairs(all_nodes.iter().map(|&node| {
                    (
                        node,
                        row[column[node.index()].expect("every positive node joined")],
                    )
                }))
            })
            .collect()
    };
    results.sort();
    results.dedup();
    if pattern.has_negation() {
        results.retain(|m| !extends_to_full(pattern, instance, m));
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::find_matchings;
    use crate::scheme::{Scheme, SchemeBuilder};
    use crate::value::ValueType;

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .functional("Info", "name", "String")
            .multivalued("Info", "links-to", "Info")
            .build()
    }

    fn triangle_instance() -> Instance {
        let mut db = Instance::new(scheme());
        let nodes: Vec<_> = (0..6).map(|_| db.add_object("Info").unwrap()).collect();
        // Two triangles plus some tree edges.
        for tri in [[0, 1, 2], [3, 4, 5]] {
            for k in 0..3 {
                db.add_edge(nodes[tri[k]], "links-to", nodes[tri[(k + 1) % 3]])
                    .unwrap();
            }
        }
        db.add_edge(nodes[0], "links-to", nodes[3]).unwrap();
        db
    }

    fn triangle_pattern() -> Pattern {
        let mut p = Pattern::new();
        let a = p.node("Info");
        let b = p.node("Info");
        let c = p.node("Info");
        p.edge(a, "links-to", b);
        p.edge(b, "links-to", c);
        p.edge(c, "links-to", a);
        p
    }

    #[test]
    fn chain_pattern_is_acyclic_and_expands() {
        let db = triangle_instance();
        let mut p = Pattern::new();
        let a = p.node("Info");
        let b = p.node("Info");
        p.edge(a, "links-to", b);
        let choice = plan(&p, &db);
        assert!(!choice.cyclic);
        assert_eq!(choice.strategy, JoinStrategy::Expand);
        assert_eq!(choice.order.len(), 2);
        assert!(choice.est_rows > 0.0);
    }

    #[test]
    fn triangle_pattern_is_cyclic() {
        let db = triangle_instance();
        let choice = plan(&triangle_pattern(), &db);
        assert!(choice.cyclic);
        assert_eq!(choice.order.len(), 3);
        // On this tiny instance the blow-up trigger may or may not
        // fire, but the cycle must be detected either way.
    }

    #[test]
    fn printable_anchor_wins_the_root() {
        let mut db = Instance::new(scheme());
        for index in 0..50 {
            let info = db.add_object("Info").unwrap();
            let name = db.add_printable("String", format!("n{index}")).unwrap();
            db.add_edge(info, "name", name).unwrap();
        }
        let mut p = Pattern::new();
        let info = p.node("Info");
        let name = p.printable("String", "n7");
        p.edge(info, "name", name);
        let choice = plan(&p, &db);
        // The exact-value probe is the cheapest anchor: est 1 row.
        assert_eq!(choice.order[0], name);
        assert!(choice.est_rows <= 1.5, "est_rows = {}", choice.est_rows);
    }

    #[test]
    fn empty_pattern_plans_trivially() {
        let db = triangle_instance();
        let choice = plan(&Pattern::new(), &db);
        assert!(choice.order.is_empty());
        assert_eq!(choice.strategy, JoinStrategy::Expand);
    }

    #[test]
    fn binary_engine_agrees_on_triangles() {
        let db = triangle_instance();
        let p = triangle_pattern();
        let planned = find_matchings(&p, &db).unwrap();
        let binary = find_matchings_binary(&p, &db).unwrap();
        assert_eq!(planned, binary);
        // Two triangles × 3 rotations each.
        assert_eq!(planned.len(), 6);
    }

    #[test]
    fn binary_engine_handles_edge_shapes() {
        let (db, _) = {
            let mut db = Instance::new(scheme());
            let a = db.add_object("Info").unwrap();
            let b = db.add_object("Info").unwrap();
            db.add_edge(a, "links-to", a).unwrap();
            db.add_edge(a, "links-to", b).unwrap();
            (db, (a, b))
        };
        // Self-loop pattern.
        let mut p = Pattern::new();
        let x = p.node("Info");
        p.edge(x, "links-to", x);
        assert_eq!(
            find_matchings_binary(&p, &db).unwrap(),
            find_matchings(&p, &db).unwrap()
        );
        // Disconnected pattern (isolated node cross product).
        let mut p2 = Pattern::new();
        p2.node("Info");
        p2.node("Info");
        assert_eq!(
            find_matchings_binary(&p2, &db).unwrap(),
            find_matchings(&p2, &db).unwrap()
        );
        // Negation.
        let mut p3 = Pattern::new();
        let u = p3.node("Info");
        let v = p3.negated_node("Info");
        p3.edge(u, "links-to", v);
        assert_eq!(
            find_matchings_binary(&p3, &db).unwrap(),
            find_matchings(&p3, &db).unwrap()
        );
        // Empty pattern.
        assert_eq!(
            find_matchings_binary(&Pattern::new(), &db).unwrap(),
            find_matchings(&Pattern::new(), &db).unwrap()
        );
    }
}
