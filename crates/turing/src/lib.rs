//! `good-turing` — Turing machines and their GOOD simulation
//! (Section 4.3, theorem T3).
//!
//! "The full language with methods is sufficiently strong to simulate
//! arbitrary Turing Machines; this can be shown using well-known
//! techniques." This crate carries out that construction:
//!
//! * [`machine`] — a deterministic single-tape Turing machine
//!   interpreter (the ground truth), plus sample machines (binary
//!   increment, unary addition, palindrome recognition, a deliberate
//!   diverger);
//! * [`encode`] — configurations as GOOD graphs: a doubly-linked chain
//!   of `Cell` objects with `symbol` edges into a printable alphabet, a
//!   `TM` object holding `state` and `head` edges, and an immutable
//!   `origin` anchor for decoding absolute positions;
//! * [`compile`] — each transition rule becomes a block of basic
//!   operations (guarded by a rule-specific `Apply` tag, with on-demand
//!   tape extension through crossed patterns), and the whole step
//!   relation becomes a *recursive GOOD method* whose stopping
//!   condition is the absence of an applicable rule — exactly the
//!   paper's method-based recursion (Figures 22/29 style).
//!
//! The equivalence tests run every sample machine through both the
//! interpreter and the GOOD simulation and compare final
//! configurations; the diverger checks that the fuel bound catches
//! non-termination.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod encode;
pub mod machine;

pub use compile::{run_in_good, step_method};
pub use encode::{decode_config, encode_config, TmHandles};
pub use machine::{Config, Machine, Move, Outcome, Rule};
