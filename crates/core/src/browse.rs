//! Pattern-directed browsing (Section 5).
//!
//! The paper's footnote 1 stresses that the full instance graph is
//! never shown to the user; instead "the GOOD transformation language
//! provides tractable primitives for manipulating and visualizing
//! relevant parts of the instance graph", and the Antwerp interface
//! offered "tools for pattern-directed browsing" (paper reference 13).
//!
//! This module is that browsing layer:
//!
//! * [`neighborhood`] — the sub-instance within `radius` edges of a
//!   node (direction-agnostic), the "expand this object" gesture;
//! * [`matched_subinstance`] — the sub-instance induced by all images
//!   of a pattern's matchings, the "show me what this query touches"
//!   gesture;
//! * both return real [`Instance`]s (validating, renderable to DOT,
//!   queryable further) whose node identities are preserved, so a
//!   browsing session can walk from view to view.

use crate::error::Result;
use crate::instance::Instance;
use crate::matching::find_matchings;
use crate::pattern::Pattern;
use good_graph::NodeId;
use std::collections::{BTreeSet, VecDeque};

/// Restrict `db` to `keep`: the induced sub-instance on those nodes
/// (all edges whose endpoints both survive). Node ids are preserved.
fn induced(db: &Instance, keep: &BTreeSet<NodeId>) -> Instance {
    let mut view = db.clone();
    let doomed: Vec<NodeId> = view
        .graph()
        .node_ids()
        .filter(|node| !keep.contains(node))
        .collect();
    for node in doomed {
        view.delete_node(node);
    }
    view
}

/// The sub-instance within `radius` edges of `start`, ignoring edge
/// direction (a browsing user wants to see incoming references too).
pub fn neighborhood(db: &Instance, start: NodeId, radius: usize) -> Instance {
    let mut keep = BTreeSet::new();
    if !db.contains_node(start) {
        return induced(db, &keep);
    }
    let mut queue = VecDeque::from([(start, 0usize)]);
    keep.insert(start);
    while let Some((node, depth)) = queue.pop_front() {
        if depth == radius {
            continue;
        }
        let neighbours = db
            .graph()
            .successors(node)
            .chain(db.graph().predecessors(node))
            .collect::<Vec<_>>();
        for next in neighbours {
            if keep.insert(next) {
                queue.push_back((next, depth + 1));
            }
        }
    }
    induced(db, &keep)
}

/// The sub-instance induced by the images of all matchings of
/// `pattern` — every node some matching maps onto, with all edges
/// among them.
pub fn matched_subinstance(db: &Instance, pattern: &Pattern) -> Result<Instance> {
    let matchings = find_matchings(pattern, db)?;
    let mut keep = BTreeSet::new();
    for matching in &matchings {
        for (_, image) in matching.iter() {
            keep.insert(image);
        }
    }
    Ok(induced(db, &keep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SchemeBuilder;
    use crate::value::ValueType;

    fn setup() -> (Instance, Vec<NodeId>) {
        let scheme = SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .functional("Info", "name", "String")
            .multivalued("Info", "links-to", "Info")
            .build();
        let mut db = Instance::new(scheme);
        // A chain a -> b -> c -> d with names.
        let nodes: Vec<NodeId> = (0..4)
            .map(|index| {
                let info = db.add_object("Info").unwrap();
                let name = db.add_printable("String", format!("doc-{index}")).unwrap();
                db.add_edge(info, "name", name).unwrap();
                info
            })
            .collect();
        for window in nodes.windows(2) {
            db.add_edge(window[0], "links-to", window[1]).unwrap();
        }
        (db, nodes)
    }

    #[test]
    fn radius_zero_is_just_the_node() {
        let (db, nodes) = setup();
        let view = neighborhood(&db, nodes[1], 0);
        assert_eq!(view.node_count(), 1);
        assert_eq!(view.edge_count(), 0);
        view.validate().unwrap();
    }

    #[test]
    fn radius_one_includes_names_and_both_link_directions() {
        let (db, nodes) = setup();
        let view = neighborhood(&db, nodes[1], 1);
        // b + its name + a (incoming) + c (outgoing).
        assert_eq!(view.node_count(), 4);
        assert!(view.contains_node(nodes[0]));
        assert!(view.contains_node(nodes[2]));
        assert!(!view.contains_node(nodes[3]));
        // Induced edges: a->b, b->c, b->name(b). The names of a and c
        // are outside the radius.
        assert_eq!(view.edge_count(), 3);
        view.validate().unwrap();
    }

    #[test]
    fn radius_grows_monotonically() {
        let (db, nodes) = setup();
        let mut previous = 0;
        for radius in 0..5 {
            let count = neighborhood(&db, nodes[0], radius).node_count();
            assert!(count >= previous);
            previous = count;
        }
        // Radius 5 covers everything (chain of 4 + names).
        assert_eq!(previous, db.node_count());
    }

    #[test]
    fn dead_start_node_yields_empty_view() {
        let (mut db, nodes) = setup();
        db.delete_node(nodes[0]);
        let view = neighborhood(&db, nodes[0], 2);
        assert_eq!(view.node_count(), 0);
    }

    #[test]
    fn matched_subinstance_shows_query_territory() {
        let (db, nodes) = setup();
        let mut pattern = Pattern::new();
        let a = pattern.node("Info");
        let b = pattern.node("Info");
        pattern.edge(a, "links-to", b);
        let view = matched_subinstance(&db, &pattern).unwrap();
        // All four infos participate in some matching; names do not.
        assert_eq!(view.node_count(), 4);
        assert_eq!(view.edge_count(), 3); // the chain's links survive
        for node in nodes {
            assert!(view.contains_node(node));
        }
        view.validate().unwrap();
    }

    #[test]
    fn matched_subinstance_of_unmatched_pattern_is_empty() {
        let (db, _) = setup();
        let mut pattern = Pattern::new();
        let info = pattern.node("Info");
        let name = pattern.printable("String", "nope");
        pattern.edge(info, "name", name);
        let view = matched_subinstance(&db, &pattern).unwrap();
        assert_eq!(view.node_count(), 0);
    }

    #[test]
    fn views_are_further_queryable() {
        let (db, nodes) = setup();
        let view = neighborhood(&db, nodes[1], 1);
        let mut pattern = Pattern::new();
        let a = pattern.node("Info");
        let b = pattern.node("Info");
        pattern.edge(a, "links-to", b);
        let matchings = find_matchings(&pattern, &view).unwrap();
        assert_eq!(matchings.len(), 2); // a->b and b->c inside the view
    }
}
