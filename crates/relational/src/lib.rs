//! `good-relational` — the relational substrate of the GOOD
//! reproduction, and the Section 4.3 completeness results.
//!
//! The paper claims (Section 4.3):
//!
//! 1. restricted to node/edge additions and deletions, GOOD is
//!    *relationally complete* in Codd's sense — "every relation
//!    computable in the relational algebra is also computable in the
//!    restricted GOOD language";
//! 2. adding abstraction, GOOD simulates the *nested relational
//!    algebra*, with abstraction providing faithful (duplicate-free)
//!    relation-valued attributes.
//!
//! The paper leaves "the details of the simulation to the reader"; this
//! crate is that reader's homework, machine-checked:
//!
//! * [`relation`] — relations, schemas, typed tuples;
//! * [`algebra`] — a from-scratch relational algebra evaluator
//!   (selection, projection, renaming, product, natural join, union,
//!   difference);
//! * [`encode`] — the paper's representation: "a relation R with
//!   attributes A1, A2, A3 ... as a class R with functional edges
//!   labeled A1, A2, A3 to printable classes";
//! * [`compile`] — a compiler from algebra expressions to GOOD programs
//!   (difference uses the Figure 27 negation technique, so the emitted
//!   program uses nothing but NA/ND/EA/ED);
//! * [`nested`] — nest/unnest with abstraction-backed duplicate
//!   elimination of relation-valued attributes;
//! * [`backend`] — the Section 5 implementation strategy: a GOOD
//!   instance stored as relations (one table per class, binary tables
//!   for multivalued edges) with pattern matching evaluated as a join
//!   plan, differentially testable against the native matcher.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod backend;
pub mod compile;
pub mod encode;
pub mod nested;
pub mod relation;

pub use algebra::{Predicate, RelExpr};
pub use relation::{RelDatabase, RelSchema, Relation, Tuple};
