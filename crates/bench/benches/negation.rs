//! E5 — the cost of negation: the matcher's built-in crossed-pattern
//! semantics vs the Figure 27 three-operation macro expansion.
//! Validates that the macro costs roughly two extra full passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use good_bench::{instance_of, SIZES};
use good_core::macros::negation::expand_negation;
use good_core::matching::find_matchings;
use good_core::pattern::Pattern;
use good_core::program::Env;
use std::time::Duration;

/// "Infos that do not link to anything" — the paper's No-Sound idiom.
fn sink_pattern() -> Pattern {
    let mut p = Pattern::new();
    let info = p.node("Info");
    let other = p.negated_node("Info");
    p.negated_edge(info, "links-to", other);
    p
}

fn bench_direct_negation(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5/direct-negation");
    for size in SIZES {
        let db = instance_of(size);
        let pattern = sink_pattern();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| find_matchings(&pattern, &db).expect("matches"));
        });
    }
    group.finish();
}

fn bench_macro_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5/macro-expansion");
    for size in SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter_batched(
                || instance_of(size),
                |mut db| {
                    let expansion =
                        expand_negation(&sink_pattern(), "Intermediate").expect("crossed");
                    expansion
                        .evaluate(&mut db, &mut Env::new())
                        .expect("evaluates")
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_positive_baseline(c: &mut Criterion) {
    // The positive part alone, for reference.
    let mut group = c.benchmark_group("E5/positive-baseline");
    for size in SIZES {
        let db = instance_of(size);
        let mut pattern = Pattern::new();
        pattern.node("Info");
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| find_matchings(&pattern, &db).expect("matches"));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_direct_negation, bench_macro_expansion, bench_positive_baseline
}
criterion_main!(benches);
