//! The five basic operations of the GOOD transformation language
//! (Section 3 of the paper):
//!
//! * [`NodeAddition`] (`NA`, Section 3.1) — add a `K`-labeled node per
//!   distinct restriction of the matchings, with functional edges to the
//!   matched nodes;
//! * [`EdgeAddition`] (`EA`, Section 3.2) — add edges between matched
//!   nodes; partial (the paper's "result is not defined" cases are
//!   errors);
//! * [`NodeDeletion`] (`ND`, Section 3.3) — delete the images of one
//!   pattern node, with all incident edges;
//! * [`EdgeDeletion`] (`ED`, Section 3.4) — delete the images of pattern
//!   edges;
//! * [`Abstraction`] (`AB`, Section 3.5) — group objects by the equality
//!   of one multivalued property's target set, creating one set object
//!   per equivalence class.
//!
//! All operations are **set-oriented**: they first enumerate *all*
//! matchings of their source pattern, then apply their effect "in
//! parallel" for every matching, exactly as the paper contrasts GOOD
//! with the one-rewrite-at-a-time semantics of graph grammars
//! (Section 5). They are deterministic up to the choice of new node
//! identities; matchings are processed in canonical order so repeated
//! runs give isomorphic (in fact identical) results.
//!
//! Every operation extends the instance's scheme minimally, as in the
//! paper's "`S′` is the minimal scheme of which `S` is a subscheme".

mod abstraction;
mod edge_add;
mod edge_del;
mod node_add;
mod node_del;

pub use abstraction::Abstraction;
pub use edge_add::{EdgeAddition, EdgeToAdd};
pub use edge_del::EdgeDeletion;
pub use node_add::NodeAddition;
pub use node_del::NodeDeletion;

use good_graph::NodeId;

/// What an operation did, for reporting and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpReport {
    /// Number of matchings of the source pattern.
    pub matchings: usize,
    /// Nodes created by this application.
    pub created_nodes: Vec<NodeId>,
    /// Number of edges added.
    pub edges_added: usize,
    /// Number of nodes deleted.
    pub nodes_deleted: usize,
    /// Number of edges deleted (excluding edges cascaded by node
    /// deletion).
    pub edges_deleted: usize,
}

impl OpReport {
    /// Merge another report into this one (used by programs/methods).
    pub fn absorb(&mut self, other: &OpReport) {
        self.matchings += other.matchings;
        self.created_nodes.extend_from_slice(&other.created_nodes);
        self.edges_added += other.edges_added;
        self.nodes_deleted += other.nodes_deleted;
        self.edges_deleted += other.edges_deleted;
    }
}
