//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! subset of Rust item shapes this workspace actually uses, directly on
//! `proc_macro` token streams (the environment has no registry access,
//! so `syn`/`quote` are unavailable). Supported:
//!
//! - named, tuple, newtype and unit structs (with type generics),
//! - enums with unit, newtype, tuple and struct variants,
//! - container attributes `#[serde(transparent)]`,
//!   `#[serde(try_from = "Type")]` and `#[serde(into = "Type")]`.
//!
//! The generated code targets the data model of the sibling `serde`
//! stand-in crate (`Content` trees) and mirrors upstream serde's
//! externally-tagged JSON layout, so `serde_json` output is compatible
//! with what the real crates would produce for these types.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

// ---------------------------------------------------------------------------
// Parsed shape of the input item.

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    try_from: Option<String>,
    into: Option<String>,
}

enum Fields {
    Unit,
    /// Tuple fields; the count is all we need.
    Tuple(usize),
    /// Named field identifiers in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    attrs: ContainerAttrs,
    name: String,
    /// Type-parameter identifiers (lifetimes/consts are not supported).
    generics: Vec<String>,
    body: Body,
}

// ---------------------------------------------------------------------------
// Token-level parsing.

struct Parser {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn new(stream: TokenStream) -> Self {
        Parser {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let tok = self.tokens.get(self.pos).cloned();
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == name {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected identifier, found {other:?}"),
        }
    }

    /// Consume `#[...]` attributes, collecting serde container options.
    fn attrs(&mut self, out: &mut ContainerAttrs) {
        loop {
            let is_attr = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
            if !is_attr {
                return;
            }
            self.pos += 1;
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde derive: malformed attribute, found {other:?}"),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            let is_serde =
                matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
            if !is_serde {
                continue;
            }
            let args = match inner.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
                _ => continue,
            };
            let mut arg_parser = Parser::new(args);
            while let Some(tok) = arg_parser.next() {
                let TokenTree::Ident(key) = tok else { continue };
                let key = key.to_string();
                match key.as_str() {
                    "transparent" => out.transparent = true,
                    "try_from" | "into" => {
                        if !arg_parser.eat_punct('=') {
                            panic!("serde derive: expected `= \"Type\"` after `{key}`");
                        }
                        let value = match arg_parser.next() {
                            Some(TokenTree::Literal(lit)) => unquote(&lit.to_string()),
                            other => {
                                panic!("serde derive: expected string after {key}, found {other:?}")
                            }
                        };
                        if key == "try_from" {
                            out.try_from = Some(value);
                        } else {
                            out.into = Some(value);
                        }
                    }
                    other => panic!("serde derive: unsupported serde attribute `{other}`"),
                }
            }
        }
    }

    /// Skip `pub` / `pub(crate)` style visibility.
    fn visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Parse `<A, B, ...>` returning the type-parameter names.
    fn generics(&mut self) -> Vec<String> {
        let mut params = Vec::new();
        if !self.eat_punct('<') {
            return params;
        }
        let mut depth = 1usize;
        let mut at_param_start = true;
        while depth > 0 {
            match self.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => {
                        depth += 1;
                        at_param_start = false;
                    }
                    '>' => {
                        depth -= 1;
                        at_param_start = false;
                    }
                    ',' => at_param_start = depth == 1,
                    _ => at_param_start = false,
                },
                Some(TokenTree::Ident(id)) => {
                    if depth == 1 && at_param_start {
                        params.push(id.to_string());
                    }
                    at_param_start = false;
                }
                Some(_) => at_param_start = false,
                None => panic!("serde derive: unterminated generics"),
            }
        }
        params
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Split a field-list token stream on top-level commas (angle-bracket
/// depth aware: `BTreeMap<K, V>` is one segment).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = vec![Vec::new()];
    let mut depth = 0usize;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    segments.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        segments.last_mut().expect("nonempty").push(tok);
    }
    segments.retain(|seg| !seg.is_empty());
    segments
}

/// Parse the fields of a braces group: `name: Type, ...` (attributes and
/// visibility allowed per field).
fn named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|segment| {
            let mut parser = Parser {
                tokens: segment,
                pos: 0,
            };
            parser.attrs(&mut ContainerAttrs::default());
            parser.visibility();
            let name = parser.expect_ident();
            if !parser.eat_punct(':') {
                panic!("serde derive: expected `:` after field `{name}`");
            }
            name
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let mut parser = Parser::new(input);
    let mut attrs = ContainerAttrs::default();
    parser.attrs(&mut attrs);
    parser.visibility();
    let kind = parser.expect_ident();
    let name = parser.expect_ident();
    let generics = parser.generics();
    match kind.as_str() {
        "struct" => {
            let fields = match parser.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde derive: unsupported struct body {other:?}"),
            };
            Item {
                attrs,
                name,
                generics,
                body: Body::Struct(fields),
            }
        }
        "enum" => {
            let group = match parser.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde derive: expected enum body, found {other:?}"),
            };
            let mut body = Parser::new(group.stream());
            let mut variants = Vec::new();
            loop {
                body.attrs(&mut ContainerAttrs::default());
                if body.peek().is_none() {
                    break;
                }
                let vname = body.expect_ident();
                let fields = match body.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let stream = g.stream();
                        body.pos += 1;
                        Fields::Named(named_fields(stream))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let stream = g.stream();
                        body.pos += 1;
                        Fields::Tuple(split_top_level(stream).len())
                    }
                    _ => Fields::Unit,
                };
                variants.push(Variant {
                    name: vname,
                    fields,
                });
                if !body.eat_punct(',') {
                    break;
                }
            }
            Item {
                attrs,
                name,
                generics,
                body: Body::Enum(variants),
            }
        }
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Code generation (string-built, parsed back into a TokenStream).

fn expand(input: TokenStream, direction: Direction) -> TokenStream {
    let item = parse_item(input);
    let code = match direction {
        Direction::Serialize => gen_serialize(&item),
        Direction::Deserialize => gen_deserialize(&item),
    };
    code.parse()
        .unwrap_or_else(|err| panic!("serde derive: generated invalid code: {err:?}\n{code}"))
}

/// `impl<T: ::serde::Serialize> ::serde::Serialize for Foo<T>` header.
fn impl_header(item: &Item, trait_name: &str) -> String {
    let bounded: Vec<String> = item
        .generics
        .iter()
        .map(|p| format!("{p}: ::serde::{trait_name}"))
        .collect();
    let params = item.generics.join(", ");
    let mut header = String::new();
    if bounded.is_empty() {
        let _ = write!(header, "impl ::serde::{trait_name} for {}", item.name);
    } else {
        let _ = write!(
            header,
            "impl<{}> ::serde::{trait_name} for {}<{}>",
            bounded.join(", "),
            item.name,
            params
        );
    }
    header
}

fn gen_serialize(item: &Item) -> String {
    let header = impl_header(item, "Serialize");
    let body = if let Some(proxy) = &item.attrs.into {
        format!(
            "let __proxy: {proxy} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_content(&__proxy)"
        )
    } else {
        match &item.body {
            Body::Struct(fields) => serialize_fields(fields, "self.", None),
            Body::Enum(variants) => {
                let mut arms = String::new();
                for variant in variants {
                    let vname = &variant.name;
                    match &variant.fields {
                        Fields::Unit => {
                            let _ = write!(
                                arms,
                                "Self::{vname} => ::serde::Content::Str(::std::string::String::from(\"{vname}\")),\n"
                            );
                        }
                        Fields::Tuple(count) => {
                            let binders: Vec<String> =
                                (0..*count).map(|i| format!("__f{i}")).collect();
                            let payload = if *count == 1 {
                                "::serde::Serialize::to_content(__f0)".to_string()
                            } else {
                                let elems: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                                    .collect();
                                format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
                            };
                            let _ = write!(
                                arms,
                                "Self::{vname}({}) => ::serde::Content::Map(vec![(\
                                 ::serde::Content::Str(::std::string::String::from(\"{vname}\")), {payload})]),\n",
                                binders.join(", ")
                            );
                        }
                        Fields::Named(names) => {
                            let entries: Vec<String> = names
                                .iter()
                                .map(|n| {
                                    format!(
                                        "(::serde::Content::Str(::std::string::String::from(\"{n}\")), \
                                         ::serde::Serialize::to_content({n}))"
                                    )
                                })
                                .collect();
                            let _ = write!(
                                arms,
                                "Self::{vname} {{ {} }} => ::serde::Content::Map(vec![(\
                                 ::serde::Content::Str(::std::string::String::from(\"{vname}\")), \
                                 ::serde::Content::Map(vec![{}]))]),\n",
                                names.join(", "),
                                entries.join(", ")
                            );
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };
    format!(
        "#[automatically_derived]\n{header} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

/// Serialize struct-style fields reached through `prefix` (e.g. `self.`).
fn serialize_fields(fields: &Fields, prefix: &str, _variant: Option<&str>) -> String {
    match fields {
        Fields::Unit => "::serde::Content::Null".to_string(),
        Fields::Tuple(1) => format!("::serde::Serialize::to_content(&{prefix}0)"),
        Fields::Tuple(count) => {
            let elems: Vec<String> = (0..*count)
                .map(|i| format!("::serde::Serialize::to_content(&{prefix}{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
        }
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|n| {
                    format!(
                        "(::serde::Content::Str(::std::string::String::from(\"{n}\")), \
                         ::serde::Serialize::to_content(&{prefix}{n}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let header = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = if let Some(proxy) = &item.attrs.try_from {
        format!(
            "let __proxy: {proxy} = ::serde::Deserialize::from_content(content)?;\n\
             ::std::convert::TryFrom::try_from(__proxy).map_err(::serde::Error::custom)"
        )
    } else {
        match &item.body {
            Body::Struct(fields) => {
                deserialize_fields(fields, &format!("{name} "), "content", name)
            }
            Body::Enum(variants) => {
                let mut arms = String::new();
                for variant in variants {
                    let vname = &variant.name;
                    match &variant.fields {
                        Fields::Unit => {
                            let _ = write!(
                                arms,
                                "\"{vname}\" => ::std::result::Result::Ok(Self::{vname}),\n"
                            );
                        }
                        fields => {
                            let build = deserialize_fields(
                                fields,
                                &format!("Self::{vname}"),
                                "__payload",
                                &format!("{name}::{vname}"),
                            );
                            let _ = write!(
                                arms,
                                "\"{vname}\" => {{\n\
                                 let __payload = ::serde::__private::variant_payload(__payload, \"{vname}\")?;\n\
                                 {build}\n}}\n"
                            );
                        }
                    }
                }
                format!(
                    "let (__tag, __payload) = ::serde::__private::variant(content, \"{name}\")?;\n\
                     match __tag {{\n{arms}\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n{header} {{\n\
         fn from_content(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

/// Deserialize struct-style fields, constructing via `ctor` (either
/// `Name ` for structs or `Self::Variant` for enum variants).
fn deserialize_fields(fields: &Fields, ctor: &str, source: &str, context: &str) -> String {
    match fields {
        Fields::Unit => format!("::std::result::Result::Ok({ctor})"),
        Fields::Tuple(1) => format!(
            "::std::result::Result::Ok({ctor}(::serde::Deserialize::from_content({source})?))"
        ),
        Fields::Tuple(count) => {
            let elems: Vec<String> = (0..*count)
                .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = ::serde::__private::expect_seq({source}, {count}, \"{context}\")?;\n\
                 ::std::result::Result::Ok({ctor}({}))",
                elems.join(", ")
            )
        }
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|n| {
                    format!(
                        "{n}: ::serde::Deserialize::from_content(\
                         ::serde::__private::map_field(__entries, \"{n}\", \"{context}\")?)?"
                    )
                })
                .collect();
            format!(
                "let __entries = ::serde::__private::expect_map({source}, \"{context}\")?;\n\
                 ::std::result::Result::Ok({ctor} {{ {} }})",
                inits.join(", ")
            )
        }
    }
}
