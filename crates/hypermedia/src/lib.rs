//! `good-hypermedia` — the GOOD paper's running example.
//!
//! The paper develops a hyper-media object base throughout: Figure 1 is
//! its scheme, Figures 2–3 an instance, and Figures 4–31 operations,
//! methods and macros over it. This crate builds all of them as data and
//! functions so the repository's `repro` binary and figure tests can
//! regenerate and check every one.
//!
//! * [`scheme`] — the Figure 1 scheme;
//! * [`instance`] — the Figures 2–3 instance (with named handles to the
//!   marked nodes);
//! * [`versions`] — the Figure 17 version-chain sub-instance used by the
//!   abstraction example;
//! * [`figures`] — one constructor per operation figure (4, 6, 8, 10,
//!   12–14, 16, 18, 20–31).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod instance;
pub mod scheme;
pub mod versions;

pub use instance::{build_instance, InstanceHandles};
pub use scheme::build_scheme;
pub use versions::build_versions_instance;
