//! Encoding relations as GOOD object bases (Section 4.3).
//!
//! "Suppose we represent a relation R with attributes A1, A2, A3 with
//! domains D1, D2, D3 as a class R with functional edges labeled A1,
//! A2, A3 to printable classes D1, D2, D3. Tuples of R are represented
//! by objects of this class."
//!
//! The printable domain classes are one per [`ValueType`]; printable
//! dedup in the instance layer makes the encoding value-based, which is
//! exactly what lets node addition's existence check implement set
//! semantics.

use crate::relation::{RelDatabase, RelSchema, Relation};
use good_core::error::{GoodError, Result};
use good_core::instance::Instance;
use good_core::label::Label;
use good_core::scheme::Scheme;
use good_core::value::ValueType;
use good_graph::NodeId;

/// The object-class label for a relation name.
///
/// Classes are namespaced `rel:<name>` so that a relation may share its
/// name with an attribute (the GOOD label universes are pairwise
/// disjoint, so `dept` cannot be both an object label and a functional
/// edge label).
pub fn class_label(name: &str) -> Label {
    Label::new(format!("rel:{name}"))
}

/// The printable class name for a value domain.
pub fn domain_label(value_type: ValueType) -> Label {
    Label::new(match value_type {
        ValueType::Str => "D-str",
        ValueType::Int => "D-int",
        ValueType::Real => "D-real",
        ValueType::Bool => "D-bool",
        ValueType::Date => "D-date",
        ValueType::Bytes => "D-bytes",
    })
}

/// Build the GOOD scheme for a relational database.
pub fn encode_scheme(db: &RelDatabase) -> Result<Scheme> {
    let mut scheme = Scheme::new();
    for value_type in [
        ValueType::Str,
        ValueType::Int,
        ValueType::Real,
        ValueType::Bool,
        ValueType::Date,
        ValueType::Bytes,
    ] {
        scheme.add_printable_label(domain_label(value_type), value_type)?;
    }
    for (name, relation) in db.iter() {
        let class = class_label(name);
        scheme.add_object_label(class.clone())?;
        for (attr, value_type) in relation.schema().attrs() {
            scheme.add_functional(class.clone(), attr.as_str(), domain_label(*value_type))?;
        }
    }
    Ok(scheme)
}

/// Encode a relational database as a GOOD instance.
pub fn encode(db: &RelDatabase) -> Result<Instance> {
    let mut instance = Instance::new(encode_scheme(db)?);
    for (name, relation) in db.iter() {
        for tuple in relation.tuples() {
            let object = instance.add_object(class_label(name))?;
            for (value, (attr, value_type)) in tuple.iter().zip(relation.schema().attrs()) {
                let printable = instance.add_printable(domain_label(*value_type), value.clone())?;
                instance.add_edge(object, attr.as_str(), printable)?;
            }
        }
    }
    Ok(instance)
}

/// Read a relation back out of an instance: the objects of `class`,
/// interpreted under `schema`. Objects lacking some attribute are an
/// error (tuple objects are always complete).
pub fn decode(instance: &Instance, class: &Label, schema: &RelSchema) -> Result<Relation> {
    let mut out = Relation::new(schema.clone());
    for object in instance.nodes_with_label(class) {
        let mut tuple = Vec::with_capacity(schema.arity());
        for (attr, _) in schema.attrs() {
            let target = instance
                .functional_target(object, &Label::new(attr.as_str()))
                .ok_or_else(|| {
                    GoodError::InvariantViolation(format!(
                        "tuple object {object:?} of class {class} lacks attribute {attr}"
                    ))
                })?;
            let value = instance.print_value(target).ok_or_else(|| {
                GoodError::InvariantViolation(format!(
                    "attribute {attr} of {object:?} does not point at a printable"
                ))
            })?;
            tuple.push(value.clone());
        }
        out.insert(tuple)?;
    }
    Ok(out)
}

/// The tuple object in `instance` whose attribute values equal `tuple`
/// (used by tests).
pub fn find_tuple_object(
    instance: &Instance,
    class: &Label,
    schema: &RelSchema,
    tuple: &[good_core::value::Value],
) -> Option<NodeId> {
    instance.nodes_with_label(class).find(|object| {
        schema
            .attrs()
            .iter()
            .zip(tuple)
            .all(|((attr, value_type), value)| {
                instance
                    .functional_target(*object, &Label::new(attr.as_str()))
                    .is_some_and(|target| {
                        instance.print_value(target) == Some(value)
                            && value.value_type() == *value_type
                    })
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use good_core::value::Value;

    fn db() -> RelDatabase {
        let mut emp = Relation::new(RelSchema::new([
            ("name", ValueType::Str),
            ("salary", ValueType::Int),
        ]));
        emp.extend([
            vec![Value::str("ann"), Value::int(90)],
            vec![Value::str("bob"), Value::int(90)],
        ])
        .unwrap();
        let mut out = RelDatabase::new();
        out.add("emp", emp);
        out
    }

    #[test]
    fn encode_decode_roundtrip() {
        let source = db();
        let instance = encode(&source).unwrap();
        instance.validate().unwrap();
        let back = decode(
            &instance,
            &class_label("emp"),
            source.get("emp").unwrap().schema(),
        )
        .unwrap();
        assert_eq!(&back, source.get("emp").unwrap());
    }

    #[test]
    fn shared_values_share_printables() {
        let instance = encode(&db()).unwrap();
        // Both tuples have salary 90 → one D-int node.
        assert_eq!(instance.label_count(&domain_label(ValueType::Int)), 1);
        assert_eq!(instance.label_count(&class_label("emp")), 2);
    }

    #[test]
    fn find_tuple_object_locates_rows() {
        let source = db();
        let instance = encode(&source).unwrap();
        let schema = source.get("emp").unwrap().schema();
        assert!(find_tuple_object(
            &instance,
            &class_label("emp"),
            schema,
            &[Value::str("ann"), Value::int(90)]
        )
        .is_some());
        assert!(find_tuple_object(
            &instance,
            &class_label("emp"),
            schema,
            &[Value::str("ann"), Value::int(91)]
        )
        .is_none());
    }

    #[test]
    fn decode_rejects_incomplete_objects() {
        let source = db();
        let mut instance = encode(&source).unwrap();
        instance.add_object(class_label("emp")).unwrap(); // attribute-less object
        assert!(decode(
            &instance,
            &class_label("emp"),
            source.get("emp").unwrap().schema()
        )
        .is_err());
    }

    #[test]
    fn empty_database_encodes() {
        let instance = encode(&RelDatabase::new()).unwrap();
        assert_eq!(instance.node_count(), 0);
    }
}
