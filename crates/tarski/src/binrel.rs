//! Binary relations with the Tarski operations.
//!
//! Generic over the atom type so the algebra can be unit-tested on
//! integers while the GOOD store uses `good_graph::NodeId` atoms.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

/// A finite binary relation over atoms `A`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinRel<A: Ord + Clone> {
    pairs: BTreeSet<(A, A)>,
}

impl<A: Ord + Clone> Default for BinRel<A> {
    fn default() -> Self {
        BinRel::new()
    }
}

impl<A: Ord + Clone> BinRel<A> {
    /// The empty relation.
    pub fn new() -> Self {
        BinRel {
            pairs: BTreeSet::new(),
        }
    }

    /// Build from pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (A, A)>) -> Self {
        BinRel {
            pairs: pairs.into_iter().collect(),
        }
    }

    /// The identity relation over `atoms` (a *coreflexive* when `atoms`
    /// is a subset of the universe — Tarski's device for representing
    /// unary predicates such as GOOD's class membership).
    pub fn identity(atoms: impl IntoIterator<Item = A>) -> Self {
        BinRel {
            pairs: atoms.into_iter().map(|a| (a.clone(), a)).collect(),
        }
    }

    /// Insert a pair; returns false if already present.
    pub fn insert(&mut self, src: A, dst: A) -> bool {
        self.pairs.insert((src, dst))
    }

    /// Membership test.
    pub fn contains(&self, src: &A, dst: &A) -> bool {
        self.pairs.contains(&(src.clone(), dst.clone()))
    }

    /// Iterate over the pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(A, A)> {
        self.pairs.iter()
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// `R ∪ S`.
    pub fn union(&self, other: &Self) -> Self {
        BinRel {
            pairs: self.pairs.union(&other.pairs).cloned().collect(),
        }
    }

    /// `R ∩ S`.
    pub fn intersect(&self, other: &Self) -> Self {
        BinRel {
            pairs: self.pairs.intersection(&other.pairs).cloned().collect(),
        }
    }

    /// `R − S`.
    pub fn difference(&self, other: &Self) -> Self {
        BinRel {
            pairs: self.pairs.difference(&other.pairs).cloned().collect(),
        }
    }

    /// The converse `R⁻¹`.
    pub fn converse(&self) -> Self {
        BinRel {
            pairs: self
                .pairs
                .iter()
                .map(|(a, b)| (b.clone(), a.clone()))
                .collect(),
        }
    }

    /// Relative product (composition) `R ; S` — the workhorse of path
    /// expressions: `(a, c) ∈ R;S` iff `∃b. (a,b) ∈ R ∧ (b,c) ∈ S`.
    /// Hash-join on the middle atom.
    pub fn compose(&self, other: &Self) -> Self {
        let mut by_src: BTreeMap<&A, Vec<&A>> = BTreeMap::new();
        for (b, c) in &other.pairs {
            by_src.entry(b).or_default().push(c);
        }
        let mut out = BTreeSet::new();
        for (a, b) in &self.pairs {
            if let Some(cs) = by_src.get(b) {
                for c in cs {
                    out.insert((a.clone(), (*c).clone()));
                }
            }
        }
        BinRel { pairs: out }
    }

    /// The domain (set of first components) as a coreflexive.
    pub fn domain(&self) -> Self {
        BinRel {
            pairs: self
                .pairs
                .iter()
                .map(|(a, _)| (a.clone(), a.clone()))
                .collect(),
        }
    }

    /// The range (set of second components) as a coreflexive.
    pub fn range(&self) -> Self {
        BinRel {
            pairs: self
                .pairs
                .iter()
                .map(|(_, b)| (b.clone(), b.clone()))
                .collect(),
        }
    }

    /// Transitive closure `R⁺` (semi-naive iteration).
    pub fn transitive_closure(&self) -> Self {
        let mut closure = self.clone();
        let mut delta = self.clone();
        while !delta.is_empty() {
            let next = delta.compose(self);
            let fresh: BTreeSet<(A, A)> = next.pairs.difference(&closure.pairs).cloned().collect();
            if fresh.is_empty() {
                break;
            }
            closure.pairs.extend(fresh.iter().cloned());
            delta = BinRel { pairs: fresh };
        }
        closure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(pairs: &[(u32, u32)]) -> BinRel<u32> {
        BinRel::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn set_operations() {
        let r = rel(&[(1, 2), (2, 3)]);
        let s = rel(&[(2, 3), (3, 4)]);
        assert_eq!(r.union(&s).len(), 3);
        assert_eq!(r.intersect(&s), rel(&[(2, 3)]));
        assert_eq!(r.difference(&s), rel(&[(1, 2)]));
    }

    #[test]
    fn converse_is_involutive() {
        let r = rel(&[(1, 2), (3, 4)]);
        assert_eq!(r.converse().converse(), r);
        assert!(r.converse().contains(&2, &1));
    }

    #[test]
    fn composition() {
        let r = rel(&[(1, 2), (2, 3)]);
        let s = rel(&[(2, 10), (3, 11)]);
        assert_eq!(r.compose(&s), rel(&[(1, 10), (2, 11)]));
    }

    #[test]
    fn composition_is_associative() {
        let r = rel(&[(1, 2), (2, 3), (1, 3)]);
        let s = rel(&[(2, 4), (3, 5)]);
        let t = rel(&[(4, 6), (5, 7)]);
        assert_eq!(r.compose(&s).compose(&t), r.compose(&s.compose(&t)));
    }

    #[test]
    fn identity_is_neutral_for_composition() {
        let r = rel(&[(1, 2), (2, 3)]);
        let id = BinRel::identity(1..=3);
        assert_eq!(id.compose(&r), r);
        assert_eq!(r.compose(&id), r);
    }

    #[test]
    fn converse_antidistributes_over_composition() {
        // (R;S)⁻¹ = S⁻¹;R⁻¹ — one of Tarski's axioms.
        let r = rel(&[(1, 2), (2, 3), (1, 3)]);
        let s = rel(&[(2, 4), (3, 4), (3, 5)]);
        assert_eq!(
            r.compose(&s).converse(),
            s.converse().compose(&r.converse())
        );
    }

    #[test]
    fn coreflexive_restriction() {
        // Restricting a relation's domain via a coreflexive.
        let r = rel(&[(1, 2), (2, 3), (3, 4)]);
        let only_odd = BinRel::identity([1, 3]);
        assert_eq!(only_odd.compose(&r), rel(&[(1, 2), (3, 4)]));
    }

    #[test]
    fn domain_and_range() {
        let r = rel(&[(1, 2), (1, 3)]);
        assert_eq!(r.domain(), BinRel::identity([1]));
        assert_eq!(r.range(), BinRel::identity([2, 3]));
    }

    #[test]
    fn transitive_closure_of_chain_and_cycle() {
        let chain = rel(&[(1, 2), (2, 3), (3, 4)]);
        let tc = chain.transitive_closure();
        assert_eq!(tc.len(), 6);
        assert!(tc.contains(&1, &4));
        assert!(!tc.contains(&1, &1));

        let cycle = rel(&[(1, 2), (2, 1)]);
        let tc = cycle.transitive_closure();
        assert!(tc.contains(&1, &1) && tc.contains(&2, &2));
        assert_eq!(tc.len(), 4);
    }

    #[test]
    fn empty_edge_cases() {
        let empty: BinRel<u32> = BinRel::new();
        let r = rel(&[(1, 2)]);
        assert!(empty.compose(&r).is_empty());
        assert!(r.compose(&empty).is_empty());
        assert!(empty.transitive_closure().is_empty());
        assert_eq!(r.union(&empty), r);
    }
}
