//! Compiling a Turing machine into GOOD operations (theorem T3).
//!
//! Every transition rule `(q, s) → (w, D, q′)` becomes a block of basic
//! operations guarded by a rule-specific `Apply:q:s` tag object:
//!
//! 1. **fire** — a node addition creates the tag when a `Tick` marker
//!    is present and the machine is in state `q` reading `s`;
//! 2. **write** — edge deletion + edge addition rewrite the `symbol`
//!    edge to `w`;
//! 3. **extend** — for a move into unvisited tape, a node addition with
//!    a *crossed* pattern ("no neighbour cell exists") materializes a
//!    fresh `Cell`, edge additions link it into the chain and give it
//!    the blank symbol (again via a crossed "has no symbol" pattern);
//! 4. **move** — edge deletion + addition re-target the `head` edge;
//! 5. **switch** — edge deletion + addition re-target the `state` edge;
//! 6. **commit** — node deletions remove the `Tick` marker (so no later
//!    rule block fires in the same step) and the tag.
//!
//! Because every block is guarded by the `Tick`-and-configuration
//! pattern and at most one `(q, s)` pair applies, exactly one block per
//! step has any effect — the rest are vacuous pattern mismatches, which
//! is how a *fixed sequence* of set-oriented operations implements a
//! *conditional* step relation.
//!
//! The whole step relation then becomes a **recursive method**
//! ([`step_method`]): its body performs one step and calls itself while
//! a step happened (detected by the paper's crossed-pattern idiom: the
//! `Tick` survives exactly when no rule fired). The method interface is
//! the tape scheme itself, so the `Tick`/`Apply`/`mate` scaffolding is
//! filtered out of the final instance — the same mechanism that hides
//! the `Elapsed` temporaries in the paper's Figures 23–25.

use crate::encode::{encode_config, sym_value, tm_scheme};
use crate::machine::{Config, Machine, Move, Rule};
use good_core::error::Result;
use good_core::label::{receiver_label, Label};
use good_core::method::{execute_call, Method, MethodCall, MethodSpec};
use good_core::ops::{EdgeAddition, EdgeDeletion, NodeAddition, NodeDeletion};
use good_core::pattern::Pattern;
use good_core::program::{Env, Operation};
use good_graph::NodeId;

/// The tag class guarding one rule's block.
fn apply_label(rule: &Rule) -> Label {
    Label::new(format!("Apply:{}:{}", rule.state, rule.read))
}

/// A pattern seeded with the method head bound to the TM object.
/// Returns `(pattern, tm node)`.
fn tm_pattern(method: &str) -> (Pattern, NodeId) {
    let mut p = Pattern::new();
    let head = p.method_head(method);
    let tm = p.node("TM");
    p.edge(head, receiver_label(), tm);
    (p, tm)
}

/// The operations of one rule block (see module docs).
fn rule_block(machine: &Machine, rule: &Rule, method: &str) -> Vec<Operation> {
    let apply = apply_label(rule);
    let mut ops = Vec::new();

    // 1. fire: NA Apply:q:s — Tick present, state q, reading s.
    {
        let (mut p, tm) = tm_pattern(method);
        let tick = p.node("Tick");
        p.edge(tick, "on", tm);
        let state = p.printable("CtlState", rule.state.as_str());
        p.edge(tm, "state", state);
        let cell = p.node("Cell");
        p.edge(tm, "head", cell);
        let sym = p.printable("Sym", sym_value(rule.read));
        p.edge(cell, "symbol", sym);
        ops.push(Operation::NodeAdd(NodeAddition::new(
            p,
            apply.clone(),
            [(Label::new("at"), cell)],
        )));
    }

    // 2a. write: delete the old symbol edge.
    {
        let mut p = Pattern::new();
        let tag = p.node(apply.clone());
        let cell = p.node("Cell");
        p.edge(tag, "at", cell);
        let sym = p.printable("Sym", sym_value(rule.read));
        p.edge(cell, "symbol", sym);
        ops.push(Operation::EdgeDel(EdgeDeletion::single(
            p, cell, "symbol", sym,
        )));
    }
    // 2b. write: add the new symbol edge.
    {
        let mut p = Pattern::new();
        let tag = p.node(apply.clone());
        let cell = p.node("Cell");
        p.edge(tag, "at", cell);
        let sym = p.printable("Sym", sym_value(rule.write));
        ops.push(Operation::EdgeAdd(EdgeAddition::functional(
            p, cell, "symbol", sym,
        )));
    }

    // 3–4. movement.
    if rule.movement != Move::Stay {
        let (ahead, back, mate): (&str, &str, Label) = match rule.movement {
            Move::Right => ("right", "left", Label::new("mate-right")),
            Move::Left => ("left", "right", Label::new("mate-left")),
            Move::Stay => unreachable!(),
        };
        // 3a. extend: a fresh Cell when no neighbour exists.
        {
            let mut p = Pattern::new();
            let tag = p.node(apply.clone());
            let cell = p.node("Cell");
            p.edge(tag, "at", cell);
            let missing = p.negated_node("Cell");
            p.negated_edge(cell, ahead, missing);
            ops.push(Operation::NodeAdd(NodeAddition::new(
                p,
                "Cell",
                [(mate.clone(), cell)],
            )));
        }
        // 3b. link the fresh cell into the chain (both directions).
        {
            let mut p = Pattern::new();
            let tag = p.node(apply.clone());
            let cell = p.node("Cell");
            p.edge(tag, "at", cell);
            let fresh = p.node("Cell");
            p.edge(fresh, mate.clone(), cell);
            ops.push(Operation::EdgeAdd(EdgeAddition::new(
                p,
                [
                    good_core::ops::EdgeToAdd {
                        src: cell,
                        label: Label::new(ahead),
                        kind: good_core::label::EdgeKind::Functional,
                        dst: fresh,
                    },
                    good_core::ops::EdgeToAdd {
                        src: fresh,
                        label: Label::new(back),
                        kind: good_core::label::EdgeKind::Functional,
                        dst: cell,
                    },
                ],
            )));
        }
        // 3c. blank-fill a neighbour that has no symbol yet.
        {
            let mut p = Pattern::new();
            let tag = p.node(apply.clone());
            let cell = p.node("Cell");
            p.edge(tag, "at", cell);
            let next = p.node("Cell");
            p.edge(cell, ahead, next);
            let any_sym = p.negated_node("Sym");
            p.negated_edge(next, "symbol", any_sym);
            let blank = p.printable("Sym", sym_value(machine.blank));
            ops.push(Operation::EdgeAdd(EdgeAddition::functional(
                p, next, "symbol", blank,
            )));
        }
        // 4a. move: drop the head edge.
        {
            let (mut p, tm) = tm_pattern(method);
            let tag = p.node(apply.clone());
            let cell = p.node("Cell");
            p.edge(tag, "at", cell);
            p.edge(tm, "head", cell);
            ops.push(Operation::EdgeDel(EdgeDeletion::single(
                p, tm, "head", cell,
            )));
        }
        // 4b. move: head to the neighbour.
        {
            let (mut p, tm) = tm_pattern(method);
            let tag = p.node(apply.clone());
            let cell = p.node("Cell");
            p.edge(tag, "at", cell);
            let next = p.node("Cell");
            p.edge(cell, ahead, next);
            ops.push(Operation::EdgeAdd(EdgeAddition::functional(
                p, tm, "head", next,
            )));
        }
    }

    // 5a. switch: drop the state edge.
    {
        let (mut p, tm) = tm_pattern(method);
        let tag = p.node(apply.clone());
        let cell = p.node("Cell");
        p.edge(tag, "at", cell);
        let state = p.printable("CtlState", rule.state.as_str());
        p.edge(tm, "state", state);
        ops.push(Operation::EdgeDel(EdgeDeletion::single(
            p, tm, "state", state,
        )));
    }
    // 5b. switch: enter the next state.
    {
        let (mut p, tm) = tm_pattern(method);
        let tag = p.node(apply.clone());
        let cell = p.node("Cell");
        p.edge(tag, "at", cell);
        let next = p.printable("CtlState", rule.next.as_str());
        ops.push(Operation::EdgeAdd(EdgeAddition::functional(
            p, tm, "state", next,
        )));
    }

    // 6a. commit: consume the Tick so no later block fires this step.
    {
        let mut p = Pattern::new();
        let tag = p.node(apply.clone());
        let tick = p.node("Tick");
        ops.push(Operation::NodeDel(NodeDeletion::new(p, tick)));
        let _ = tag;
    }
    // 6b. commit: drop the tag.
    {
        let mut p = Pattern::new();
        let tag = p.node(apply);
        ops.push(Operation::NodeDel(NodeDeletion::new(p, tag)));
    }

    ops
}

/// The name of the step method for `machine`.
pub const STEP_METHOD: &str = "TM-Step";

/// Build the recursive step method for `machine`.
pub fn step_method(machine: &Machine) -> Method {
    let spec = MethodSpec::new(STEP_METHOD, "TM", []);
    let mut body = Vec::new();

    // Raise the Tick marker on the receiver.
    {
        let (p, tm) = tm_pattern(STEP_METHOD);
        body.push(Operation::NodeAdd(NodeAddition::new(
            p,
            "Tick",
            [(Label::new("on"), tm)],
        )));
    }
    // One block per rule, in deterministic order.
    for rule in machine.rules() {
        body.extend(rule_block(machine, rule, STEP_METHOD));
    }
    // Recurse while a step happened — i.e. the Tick is gone.
    {
        let (mut p, tm) = tm_pattern(STEP_METHOD);
        let tick = p.negated_node("Tick");
        p.negated_edge(tick, "on", tm);
        body.push(Operation::Call(MethodCall::new(STEP_METHOD, p, tm, [])));
    }
    // Halt cleanup: remove the surviving Tick.
    {
        let (mut p, tm) = tm_pattern(STEP_METHOD);
        let tick = p.node("Tick");
        p.edge(tick, "on", tm);
        body.push(Operation::NodeDel(NodeDeletion::new(p, tick)));
    }

    // The interface is the tape scheme itself: everything else (Tick,
    // Apply tags, mate edges) is scaffolding and gets filtered out.
    Method::new(spec, body, tm_scheme())
}

/// Run `machine` on `input` entirely inside GOOD: encode, register the
/// recursive step method, call it once on the TM object, decode.
///
/// `fuel` bounds the total number of operation applications — a
/// diverging machine surfaces as [`good_core::error::GoodError::OutOfFuel`].
pub fn run_in_good(machine: &Machine, input: &str, fuel: u64) -> Result<Config> {
    let (mut db, _) = encode_config(machine, input)?;
    let mut env = Env::with_fuel(fuel);
    env.register(step_method(machine));
    let mut p = Pattern::new();
    let tm = p.node("TM");
    let call = MethodCall::new(STEP_METHOD, p, tm, []);
    execute_call(&call, &mut db, &mut env)?;
    db.validate()?;
    crate::encode::decode_config(&db, machine.blank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{binary_increment, diverger, palindrome, unary_addition, Outcome};
    use good_core::error::GoodError;

    /// Interpreter ground truth.
    fn reference(machine: &Machine, input: &str) -> Config {
        match machine.run(input, 100_000) {
            Outcome::Halted { config, .. } => config,
            Outcome::OutOfSteps(config) => panic!("did not halt: {config}"),
        }
    }

    #[test]
    fn binary_increment_agrees() {
        let machine = binary_increment();
        for input in ["0", "1", "101", "111", "1011"] {
            let expected = reference(&machine, input);
            let actual = run_in_good(&machine, input, 200_000).unwrap();
            assert_eq!(actual, expected, "increment({input})");
        }
    }

    #[test]
    fn unary_addition_agrees() {
        let machine = unary_addition();
        for input in ["1+1", "11+1", "1+111"] {
            let expected = reference(&machine, input);
            let actual = run_in_good(&machine, input, 400_000).unwrap();
            assert_eq!(actual, expected, "sum({input})");
        }
    }

    #[test]
    fn palindrome_agrees() {
        let machine = palindrome();
        for input in ["", "a", "ab", "aba", "abba", "aab"] {
            let expected = reference(&machine, input);
            let actual = run_in_good(&machine, input, 2_000_000).unwrap();
            assert_eq!(actual, expected, "palindrome({input:?})");
            assert_eq!(actual.state == "yes", expected.state == "yes");
        }
    }

    #[test]
    fn busy_beaver3_agrees() {
        let machine = crate::machine::busy_beaver3();
        let expected = reference(&machine, "");
        let actual = run_in_good(&machine, "", 200_000).unwrap();
        assert_eq!(actual, expected);
        assert_eq!(actual.tape.len(), 6);
    }

    #[test]
    fn diverger_exhausts_fuel() {
        let err = run_in_good(&diverger(), "", 2_000).unwrap_err();
        assert!(matches!(err, GoodError::OutOfFuel { .. }));
    }

    #[test]
    fn scaffolding_is_filtered_from_the_result() {
        let machine = binary_increment();
        let (mut db, _) = encode_config(&machine, "11").unwrap();
        let mut env = Env::with_fuel(200_000);
        env.register(step_method(&machine));
        let mut p = Pattern::new();
        let tm = p.node("TM");
        execute_call(&MethodCall::new(STEP_METHOD, p, tm, []), &mut db, &mut env).unwrap();
        assert_eq!(db.scheme(), &tm_scheme());
        assert_eq!(db.label_count(&Label::new("Tick")), 0);
        assert!(db
            .graph()
            .edges()
            .all(|edge| !edge.payload.label.as_str().starts_with("mate-")));
        db.validate().unwrap();
    }

    #[test]
    fn head_can_walk_into_fresh_tape_on_both_sides() {
        // A machine that writes an `x` two cells left of the input.
        let rule = |state: &str, read, write, movement, next: &str| Rule {
            state: state.into(),
            read,
            write,
            movement,
            next: next.into(),
        };
        let machine = Machine::new(
            '_',
            "l1",
            [
                rule("l1", 'a', 'a', Move::Left, "l2"),
                rule("l2", '_', '_', Move::Left, "w"),
                rule("w", '_', 'x', Move::Stay, "done"),
            ],
        );
        let expected = reference(&machine, "a");
        let actual = run_in_good(&machine, "a", 50_000).unwrap();
        assert_eq!(actual, expected);
        assert_eq!(actual.tape.get(&-2), Some(&'x'));
    }

    #[test]
    fn single_step_method_body_shape() {
        let machine = binary_increment();
        let method = step_method(&machine);
        // 1 Tick NA + 12 ops per moving rule (6 rules, all move) + MC + ND.
        assert_eq!(method.body.len(), 1 + 6 * 12 + 2);
        assert_eq!(method.spec.receiver, Label::new("TM"));
    }
}
