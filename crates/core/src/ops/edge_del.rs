//! Edge deletion (`ED`, Section 3.4).
//!
//! `ED[J, S, I, {(m1, λ1, m1'), ...}]` removes, for every matching `i`,
//! the edges `(i(mℓ), λℓ, i(mℓ'))`. The paper requires the deleted
//! edges to be *labeled edges in F* — i.e. present in the source
//! pattern — which we validate. The scheme is unchanged.

use crate::error::{GoodError, Result};
use crate::instance::Instance;
use crate::label::Label;
use crate::matching::find_matchings;
use crate::ops::OpReport;
use crate::pattern::Pattern;
use good_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An edge deletion operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeDeletion {
    /// The source pattern `J`.
    pub pattern: Pattern,
    /// The (doubly outlined) pattern edges whose images are removed,
    /// given as `(src, λ, dst)` over pattern nodes.
    pub edges: Vec<(NodeId, Label, NodeId)>,
}

impl EdgeDeletion {
    /// Construct an edge deletion.
    pub fn new(pattern: Pattern, edges: impl IntoIterator<Item = (NodeId, Label, NodeId)>) -> Self {
        EdgeDeletion {
            pattern,
            edges: edges.into_iter().collect(),
        }
    }

    /// Convenience: delete a single edge kind.
    pub fn single(pattern: Pattern, src: NodeId, label: impl Into<Label>, dst: NodeId) -> Self {
        EdgeDeletion::new(pattern, [(src, label.into(), dst)])
    }

    /// Apply to `db`.
    pub fn apply(&self, db: &mut Instance) -> Result<OpReport> {
        // Each doomed edge must be an edge of the source pattern.
        for (src, label, dst) in &self.edges {
            let in_pattern = self.pattern.graph().out_edges(*src).any(|edge| {
                !edge.payload.negated && edge.dst == *dst && &edge.payload.label == label
            });
            if !in_pattern {
                return Err(GoodError::EdgeNotInPattern {
                    edge: label.clone(),
                });
            }
        }
        let matchings = find_matchings(&self.pattern, db)?;
        let mut doomed: BTreeSet<(NodeId, Label, NodeId)> = BTreeSet::new();
        for matching in &matchings {
            for (src, label, dst) in &self.edges {
                doomed.insert((matching.image(*src), label.clone(), matching.image(*dst)));
            }
        }
        let mut report = OpReport {
            matchings: matchings.len(),
            ..OpReport::default()
        };
        // Batched application: the deduplicated triple set goes through
        // one grouped deletion pass (one out-edge scan per source).
        report.edges_deleted = db.delete_edges_between(doomed);
        db.debug_assert_indexes();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::EdgeAddition;
    use crate::scheme::{Scheme, SchemeBuilder};
    use crate::value::{Value, ValueType};

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .printable("Date", ValueType::Date)
            .functional("Info", "name", "String")
            .functional("Info", "modified", "Date")
            .multivalued("Info", "links-to", "Info")
            .build()
    }

    fn music_history() -> (Instance, NodeId) {
        let mut db = Instance::new(scheme());
        let info = db.add_object("Info").unwrap();
        let name = db.add_printable("String", "Music History").unwrap();
        let date = db.add_printable("Date", Value::date(1990, 1, 14)).unwrap();
        db.add_edge(info, "name", name).unwrap();
        db.add_edge(info, "modified", date).unwrap();
        (db, info)
    }

    /// Figure 16: update the last-modified date — ED of the old edge
    /// followed by EA of the new one.
    #[test]
    fn figure16_update_via_ed_then_ea() {
        let (mut db, info) = music_history();

        // Step 1: delete the modified edge.
        let mut p = Pattern::new();
        let pinfo = p.node("Info");
        let pname = p.printable("String", "Music History");
        let pdate = p.node("Date");
        p.edge(pinfo, "name", pname);
        p.edge(pinfo, "modified", pdate);
        let report = EdgeDeletion::single(p, pinfo, "modified", pdate)
            .apply(&mut db)
            .unwrap();
        assert_eq!(report.edges_deleted, 1);
        assert!(db.functional_target(info, &"modified".into()).is_none());

        // Step 2: add the new modified edge.
        let mut p = Pattern::new();
        let pinfo = p.node("Info");
        let pname = p.printable("String", "Music History");
        let pdate = p.printable("Date", Value::date(1990, 1, 16));
        p.edge(pinfo, "name", pname);
        db.add_printable("Date", Value::date(1990, 1, 16)).unwrap();
        EdgeAddition::functional(p, pinfo, "modified", pdate)
            .apply(&mut db)
            .unwrap();
        let target = db.functional_target(info, &"modified".into()).unwrap();
        assert_eq!(db.print_value(target), Some(&Value::date(1990, 1, 16)));
        db.validate().unwrap();
    }

    #[test]
    fn deleting_multivalued_edges() {
        let mut db = Instance::new(scheme());
        let a = db.add_object("Info").unwrap();
        let b = db.add_object("Info").unwrap();
        let c = db.add_object("Info").unwrap();
        db.add_edge(a, "links-to", b).unwrap();
        db.add_edge(a, "links-to", c).unwrap();
        db.add_edge(b, "links-to", c).unwrap();
        // Delete every links-to edge.
        let mut p = Pattern::new();
        let src = p.node("Info");
        let dst = p.node("Info");
        p.edge(src, "links-to", dst);
        let report = EdgeDeletion::single(p, src, "links-to", dst)
            .apply(&mut db)
            .unwrap();
        assert_eq!(report.matchings, 3);
        assert_eq!(report.edges_deleted, 3);
        assert_eq!(db.edge_count(), 0);
        assert_eq!(db.node_count(), 3); // nodes survive
    }

    #[test]
    fn doomed_edge_must_be_in_pattern() {
        let (mut db, _) = music_history();
        let mut p = Pattern::new();
        let pinfo = p.node("Info");
        let pdate = p.node("Date");
        // NOTE: no modified edge in the pattern.
        let ed = EdgeDeletion::single(p, pinfo, "modified", pdate);
        assert!(matches!(
            ed.apply(&mut db),
            Err(GoodError::EdgeNotInPattern { .. })
        ));
    }

    #[test]
    fn no_matchings_deletes_nothing() {
        let (mut db, _) = music_history();
        let mut p = Pattern::new();
        let pinfo = p.node("Info");
        let pname = p.printable("String", "Nope");
        let pdate = p.node("Date");
        p.edge(pinfo, "name", pname);
        p.edge(pinfo, "modified", pdate);
        let report = EdgeDeletion::single(p, pinfo, "modified", pdate)
            .apply(&mut db)
            .unwrap();
        assert_eq!(report.matchings, 0);
        assert_eq!(db.edge_count(), 2);
    }

    #[test]
    fn multiple_edges_deleted_per_matching() {
        let (mut db, info) = music_history();
        let mut p = Pattern::new();
        let pinfo = p.node("Info");
        let pname = p.node("String");
        let pdate = p.node("Date");
        p.edge(pinfo, "name", pname);
        p.edge(pinfo, "modified", pdate);
        let ed = EdgeDeletion::new(
            p,
            [
                (pinfo, Label::new("name"), pname),
                (pinfo, Label::new("modified"), pdate),
            ],
        );
        let report = ed.apply(&mut db).unwrap();
        assert_eq!(report.edges_deleted, 2);
        assert_eq!(db.graph().out_degree(info), 0);
    }
}
