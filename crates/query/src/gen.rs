//! Deterministic random GOODQL generation for property tests.
//!
//! [`random_query`] draws a query over the [`bench_scheme`] vocabulary
//! (`Info` objects, `name`/`created`/`modified` attributes, `links-to`
//! and `rec-links-to` topology) that is always compile-valid: the
//! differential oracle can push every generated query through all
//! three backends without filtering, and the parser property tests can
//! use the same generator for the `parse ∘ print` identity.
//!
//! [`bench_scheme`]: good_core::gen::bench_scheme

use crate::ast::{Chain, CmpOp, Link, NodePattern, PathSpec, Predicate, Query};
use good_core::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The attribute edges of the bench scheme: `(edge, target class)`.
const ATTRIBUTES: [(&str, &str); 3] = [
    ("name", "String"),
    ("created", "Date"),
    ("modified", "Date"),
];

/// The object-to-object edges of the bench scheme.
const TOPOLOGY: [&str; 2] = ["links-to", "rec-links-to"];

/// Generate a random, always-compilable query over the bench scheme.
/// Deterministic in `seed`.
pub fn random_query(seed: u64) -> Query {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut info_vars: Vec<String> = Vec::new();
    // Attributes already hung off each info var (functional edges may
    // appear at most once per pattern node).
    let mut used_attrs: Vec<Vec<&'static str>> = Vec::new();
    let mut print_vars: Vec<(String, &'static str)> = Vec::new();

    let mut chains = Vec::new();
    let chain_count = rng.gen_range(1..=2);
    for _ in 0..chain_count {
        let head_index = pick_info(&mut rng, &mut info_vars, &mut used_attrs, 0.3);
        let head = info_node(&info_vars[head_index]);
        let mut links: Vec<(Link, NodePattern)> = Vec::new();
        let link_count = rng.gen_range(0..=3usize);
        let mut current = head_index;
        for step in 0..link_count {
            let last = step + 1 == link_count;
            let free_attrs: Vec<&'static str> = ATTRIBUTES
                .iter()
                .map(|(edge, _)| *edge)
                .filter(|edge| !used_attrs[current].contains(edge))
                .collect();
            if last && !free_attrs.is_empty() && rng.gen_bool(0.5) {
                // End the chain on an attribute hop (printables have no
                // outgoing triples, so this must be the final link).
                let edge = free_attrs[rng.gen_range(0..free_attrs.len())];
                used_attrs[current].push(edge);
                let class = ATTRIBUTES
                    .iter()
                    .find(|(e, _)| *e == edge)
                    .expect("attribute")
                    .1;
                let var = format!("p{}", print_vars.len());
                print_vars.push((var.clone(), class));
                let value = (class == "String" && rng.gen_bool(0.2))
                    .then(|| Value::str(format!("info-{}", rng.gen_range(0..10))));
                links.push((
                    Link {
                        edge: edge.to_string(),
                        path: None,
                        pos: 0,
                    },
                    NodePattern {
                        var,
                        label: Some(class.to_string()),
                        value,
                        pos: 0,
                    },
                ));
                break;
            }
            let edge = TOPOLOGY[rng.gen_range(0..TOPOLOGY.len())];
            let path = rng.gen_bool(0.35).then(|| random_path_spec(&mut rng));
            let target = pick_info(&mut rng, &mut info_vars, &mut used_attrs, 0.35);
            links.push((
                Link {
                    edge: edge.to_string(),
                    path,
                    pos: 0,
                },
                info_node(&info_vars[target]),
            ));
            current = target;
        }
        chains.push(Chain { head, links });
    }

    let mut predicates = Vec::new();
    for (var, class) in &print_vars {
        if rng.gen_bool(0.5) {
            predicates.push(random_predicate(&mut rng, var, class));
        }
    }
    if info_vars.len() >= 2 && rng.gen_bool(0.3) {
        let src = rng.gen_range(0..info_vars.len());
        let mut dst = rng.gen_range(0..info_vars.len() - 1);
        if dst >= src {
            dst += 1;
        }
        predicates.push(Predicate::NoEdge {
            src: info_vars[src].clone(),
            edge: "links-to".to_string(),
            dst: info_vars[dst].clone(),
            pos: 0,
        });
    }

    let all_vars: Vec<String> = info_vars
        .iter()
        .cloned()
        .chain(print_vars.iter().map(|(var, _)| var.clone()))
        .collect();
    let mut returns: Vec<String> = all_vars
        .iter()
        .filter(|_| rng.gen_bool(0.5))
        .cloned()
        .collect();
    if returns.is_empty() {
        returns.push(all_vars[rng.gen_range(0..all_vars.len())].clone());
    }

    Query {
        chains,
        predicates,
        distinct: rng.gen_bool(0.4),
        returns,
        limit: rng.gen_bool(0.3).then(|| rng.gen_range(0..=20u64)),
    }
}

/// Reuse an existing info variable with probability `reuse` (joins and
/// cycles), otherwise mint a fresh one. Returns its index.
fn pick_info(
    rng: &mut StdRng,
    info_vars: &mut Vec<String>,
    used_attrs: &mut Vec<Vec<&'static str>>,
    reuse: f64,
) -> usize {
    if !info_vars.is_empty() && rng.gen_bool(reuse) {
        rng.gen_range(0..info_vars.len())
    } else {
        info_vars.push(format!("v{}", info_vars.len()));
        used_attrs.push(Vec::new());
        info_vars.len() - 1
    }
}

fn info_node(var: &str) -> NodePattern {
    NodePattern {
        var: var.to_string(),
        label: Some("Info".to_string()),
        value: None,
        pos: 0,
    }
}

fn random_path_spec(rng: &mut StdRng) -> PathSpec {
    match rng.gen_range(0..5) {
        0 => PathSpec { min: 1, max: None },
        1 => PathSpec { min: 0, max: None },
        2 => PathSpec {
            min: rng.gen_range(2..=3),
            max: None,
        },
        3 => {
            let min: u32 = rng.gen_range(0..=2);
            PathSpec {
                min,
                max: Some(min + rng.gen_range(0..=3u32)),
            }
        }
        _ => {
            let exact: u32 = rng.gen_range(0..=4);
            PathSpec {
                min: exact,
                max: Some(exact),
            }
        }
    }
}

fn random_predicate(rng: &mut StdRng, var: &str, class: &str) -> Predicate {
    let var = var.to_string();
    if class == "String" {
        match rng.gen_range(0..5) {
            0 => Predicate::Cmp {
                var,
                op: if rng.gen_bool(0.5) {
                    CmpOp::Eq
                } else {
                    CmpOp::Ne
                },
                value: Value::str(format!("info-{}", rng.gen_range(0..10))),
                pos: 0,
            },
            1 => Predicate::Contains {
                var,
                needle: ["info", "-1", "3", "o-"][rng.gen_range(0..4usize)].to_string(),
                pos: 0,
            },
            2 => Predicate::StartsWith {
                var,
                prefix: format!("info-{}", rng.gen_range(0..3)),
                pos: 0,
            },
            3 => Predicate::Between {
                var,
                lo: Value::str("info-1"),
                hi: Value::str(format!("info-{}", rng.gen_range(5..9))),
                pos: 0,
            },
            _ => Predicate::OneOf {
                var,
                values: (0..rng.gen_range(1..=3))
                    .map(|_| Value::str(format!("info-{}", rng.gen_range(0..10))))
                    .collect(),
                pos: 0,
            },
        }
    } else {
        let day = |rng: &mut StdRng| Value::date(1990, 1, rng.gen_range(1..=15));
        match rng.gen_range(0..3) {
            0 => Predicate::Cmp {
                var,
                op: [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]
                    [rng.gen_range(0..5usize)],
                value: day(rng),
                pos: 0,
            },
            1 => Predicate::Between {
                var,
                lo: Value::date(1990, 1, rng.gen_range(1..=5)),
                hi: Value::date(1990, 1, rng.gen_range(6..=15)),
                pos: 0,
            },
            _ => Predicate::OneOf {
                var,
                values: (0..rng.gen_range(1..=3)).map(|_| day(rng)).collect(),
                pos: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse_query;
    use good_core::gen::bench_scheme;

    #[test]
    fn generated_queries_parse_and_compile() {
        let scheme = bench_scheme();
        for seed in 0..300 {
            let query = random_query(seed);
            let text = query.to_string();
            let parsed = parse_query(&text)
                .unwrap_or_else(|err| panic!("seed {seed}: {}\n{text}", err.render(&text)));
            assert_eq!(
                parsed.normalized(),
                query.normalized(),
                "seed {seed}: {text}"
            );
            compile(&query, &scheme)
                .unwrap_or_else(|err| panic!("seed {seed}: {}\n{text}", err.render(&text)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(random_query(7), random_query(7));
        // Different seeds almost surely differ (pinned here).
        assert_ne!(random_query(1).to_string(), random_query(2).to_string());
    }
}
