//! The relational-completeness compiler (Section 4.3, theorem T1).
//!
//! Translates any [`RelExpr`] into a GOOD [`Program`] over the
//! [`crate::encode`] representation. Each operator becomes one or two
//! basic operations:
//!
//! | algebra | GOOD |
//! |---|---|
//! | base copy, `π`, `ρ` | one node addition |
//! | `σ` (equalities) | one node addition over a constrained pattern |
//! | `×`, `⋈` | one node addition over a two-object pattern |
//! | `∪` | two node additions into the same class |
//! | `−` | node addition + node deletion (the Figure 27 negation technique) |
//!
//! The emitted programs use **only node addition and node deletion** —
//! comfortably inside the NA/EA/ND/ED fragment the theorem concerns.
//! Set semantics falls out of node addition's existence check: tuple
//! objects are deduplicated per distinct attribute-value vector because
//! the bold edges point at shared printable nodes.

use crate::algebra::{CmpOp, Predicate, RelExpr};
use crate::encode::{class_label, domain_label};
use crate::relation::{RelDatabase, RelSchema};
use good_core::error::{GoodError, Result};
use good_core::label::Label;
use good_core::ops::{NodeAddition, NodeDeletion};
use good_core::pattern::{Pattern, ValuePredicate};
use good_core::program::{Operation, Program};
use good_core::value::ValueType;
use good_graph::NodeId;
use std::collections::BTreeMap;

/// The result of compiling an expression.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The GOOD program computing the query.
    pub program: Program,
    /// The class holding the result tuples after running the program.
    pub class: Label,
    /// The result schema (decode with this).
    pub schema: RelSchema,
}

/// Infer the output schema of an expression against the database's
/// relation schemas (mirrors `eval` without touching tuples).
pub fn infer_schema(expr: &RelExpr, db: &RelDatabase) -> Result<RelSchema> {
    match expr {
        RelExpr::Base(name) => Ok(db.get(name)?.schema().clone()),
        RelExpr::Select(_, input) => infer_schema(input, db),
        RelExpr::Project(attrs, input) => {
            let input = infer_schema(input, db)?;
            let picked: Vec<(String, ValueType)> = attrs
                .iter()
                .map(|attr| {
                    input
                        .domain(attr)
                        .map(|ty| (attr.clone(), ty))
                        .ok_or_else(|| {
                            GoodError::InvariantViolation(format!("unknown attribute {attr}"))
                        })
                })
                .collect::<Result<_>>()?;
            Ok(RelSchema::new(picked))
        }
        RelExpr::Rename(map, input) => {
            let input = infer_schema(input, db)?;
            Ok(RelSchema::new(input.attrs().iter().map(|(name, ty)| {
                (map.get(name).cloned().unwrap_or_else(|| name.clone()), *ty)
            })))
        }
        RelExpr::Product(left, right) => {
            let (l, r) = (infer_schema(left, db)?, infer_schema(right, db)?);
            if !l.common_attrs(&r).is_empty() {
                return Err(GoodError::InvariantViolation(
                    "cartesian product requires disjoint attribute names".into(),
                ));
            }
            Ok(RelSchema::new(l.attrs().iter().chain(r.attrs()).cloned()))
        }
        RelExpr::Join(left, right) => {
            let (l, r) = (infer_schema(left, db)?, infer_schema(right, db)?);
            let common = l.common_attrs(&r);
            for attr in &common {
                if l.domain(attr) != r.domain(attr) {
                    return Err(GoodError::InvariantViolation(format!(
                        "join attribute {attr} has different domains"
                    )));
                }
            }
            let extra = r
                .attrs()
                .iter()
                .filter(|(n, _)| !common.contains(n))
                .cloned();
            Ok(RelSchema::new(l.attrs().iter().cloned().chain(extra)))
        }
        RelExpr::Union(left, right) | RelExpr::Difference(left, right) => {
            let (l, r) = (infer_schema(left, db)?, infer_schema(right, db)?);
            if l != r {
                return Err(GoodError::InvariantViolation(
                    "union/difference require identical schemas".into(),
                ));
            }
            Ok(l)
        }
    }
}

/// The compiler: a fresh-name source plus recursive translation.
#[derive(Debug, Default)]
pub struct Compiler {
    counter: usize,
}

/// A pattern fragment describing one tuple object of `class` with
/// printable nodes for the attributes in `schema`.
struct TupleFragment {
    object: NodeId,
    /// attribute name → printable pattern node holding its value.
    values: BTreeMap<String, NodeId>,
}

impl Compiler {
    /// A new compiler.
    pub fn new() -> Self {
        Compiler::default()
    }

    fn fresh(&mut self, hint: &str) -> Label {
        self.counter += 1;
        Label::new(format!("Q{}-{hint}", self.counter))
    }

    /// Add a tuple-object fragment for `class`/`schema` to `pattern`.
    /// `merge` lets callers share printable nodes across fragments (for
    /// joins and attr=attr selections): attributes listed there reuse
    /// the given pattern node.
    fn add_fragment(
        pattern: &mut Pattern,
        class: &Label,
        schema: &RelSchema,
        merge: &BTreeMap<String, NodeId>,
        constants: &BTreeMap<String, good_core::value::Value>,
    ) -> TupleFragment {
        let object = pattern.node(class.clone());
        let mut values = BTreeMap::new();
        for (attr, value_type) in schema.attrs() {
            let node = if let Some(&existing) = merge.get(attr) {
                existing
            } else if let Some(constant) = constants.get(attr) {
                pattern.printable(domain_label(*value_type), constant.clone())
            } else {
                pattern.node(domain_label(*value_type))
            };
            pattern.edge(object, attr.as_str(), node);
            values.insert(attr.clone(), node);
        }
        TupleFragment { object, values }
    }

    /// The NA materializing `schema`-shaped tuples into `class`, with
    /// bold edges to the given value nodes under (possibly renamed)
    /// attribute labels.
    fn materialize(
        pattern: Pattern,
        class: &Label,
        attrs: impl IntoIterator<Item = (String, NodeId)>,
    ) -> NodeAddition {
        NodeAddition::new(
            pattern,
            class.clone(),
            attrs
                .into_iter()
                .map(|(attr, node)| (Label::new(attr), node)),
        )
    }

    /// Compile `expr` into a program over the [`crate::encode`]
    /// representation of `db`.
    pub fn compile(&mut self, expr: &RelExpr, db: &RelDatabase) -> Result<CompiledQuery> {
        let schema = infer_schema(expr, db)?;
        let mut program = Program::new();
        let class = self.emit(expr, db, &mut program)?;
        Ok(CompiledQuery {
            program,
            class,
            schema,
        })
    }

    /// Emit operations computing `expr` into a fresh class; returns the
    /// class label.
    fn emit(&mut self, expr: &RelExpr, db: &RelDatabase, program: &mut Program) -> Result<Label> {
        match expr {
            RelExpr::Base(name) => {
                // Copy the base relation into a fresh class so downstream
                // deletions (difference) never touch stored data.
                let schema = db.get(name)?.schema().clone();
                let class = self.fresh("base");
                let mut pattern = Pattern::new();
                let fragment = Self::add_fragment(
                    &mut pattern,
                    &class_label(name),
                    &schema,
                    &BTreeMap::new(),
                    &BTreeMap::new(),
                );
                program.push(Operation::NodeAdd(Self::materialize(
                    pattern,
                    &class,
                    fragment.values,
                )));
                Ok(class)
            }
            RelExpr::Select(pred, input) => {
                let input_schema = infer_schema(input, db)?;
                let input_class = self.emit(input, db, program)?;
                // Fold the conjuncts into merge/constant/predicate maps.
                let mut constants = BTreeMap::new();
                let mut comparisons: Vec<(String, CmpOp, good_core::value::Value)> = Vec::new();
                let mut unify: Vec<(String, String)> = Vec::new();
                for conjunct in pred.conjuncts() {
                    match conjunct {
                        Predicate::AttrEqConst(attr, value) => {
                            if input_schema.domain(attr) != Some(value.value_type()) {
                                return Err(GoodError::InvariantViolation(format!(
                                    "selection constant for {attr} has the wrong domain"
                                )));
                            }
                            constants.insert(attr.clone(), value.clone());
                        }
                        Predicate::AttrCmp(attr, op, value) => {
                            if input_schema.domain(attr) != Some(value.value_type()) {
                                return Err(GoodError::InvariantViolation(format!(
                                    "comparison constant for {attr} has the wrong domain"
                                )));
                            }
                            comparisons.push((attr.clone(), *op, value.clone()));
                        }
                        Predicate::AttrEqAttr(a, b) => {
                            if input_schema.domain(a).is_none()
                                || input_schema.domain(a) != input_schema.domain(b)
                            {
                                return Err(GoodError::InvariantViolation(format!(
                                    "cannot equate attributes {a} and {b}"
                                )));
                            }
                            unify.push((a.clone(), b.clone()));
                        }
                        Predicate::And(..) => unreachable!("conjuncts() flattens"),
                    }
                }
                let class = self.fresh("select");
                let mut pattern = Pattern::new();
                // Build the fragment, then post-unify attr=attr pairs by
                // constructing the merge map incrementally: create nodes
                // for the first attr of each union-find class.
                let mut merge: BTreeMap<String, NodeId> = BTreeMap::new();
                // Union-find-lite: map each attribute to a representative.
                let mut rep: BTreeMap<String, String> = BTreeMap::new();
                let find = |rep: &BTreeMap<String, String>, mut a: String| {
                    while let Some(next) = rep.get(&a) {
                        a = next.clone();
                    }
                    a
                };
                for (a, b) in &unify {
                    let (ra, rb) = (find(&rep, a.clone()), find(&rep, b.clone()));
                    if ra != rb {
                        rep.insert(rb, ra);
                    }
                }
                // Propagate constants to class representatives. Two
                // *different* constants on one equivalence class make
                // the selection unsatisfiable.
                let mut rep_constants: BTreeMap<String, good_core::value::Value> = BTreeMap::new();
                let mut unsatisfiable = false;
                for (attr, value) in &constants {
                    let representative = find(&rep, attr.clone());
                    match rep_constants.get(&representative) {
                        Some(existing) if existing != value => unsatisfiable = true,
                        _ => {
                            rep_constants.insert(representative, value.clone());
                        }
                    }
                }
                // Comparisons become pattern-node predicates on the
                // class representative (Section 4.1's printable
                // predicates). Against a representative that also has a
                // constant, evaluate at compile time.
                let to_value_predicate = |op: CmpOp, value: good_core::value::Value| match op {
                    CmpOp::Lt => ValuePredicate::Lt(value),
                    CmpOp::Le => ValuePredicate::Le(value),
                    CmpOp::Gt => ValuePredicate::Gt(value),
                    CmpOp::Ge => ValuePredicate::Ge(value),
                    CmpOp::Ne => ValuePredicate::Ne(value),
                };
                let mut rep_predicates: BTreeMap<String, Vec<ValuePredicate>> = BTreeMap::new();
                for (attr, op, value) in comparisons {
                    let representative = find(&rep, attr);
                    match rep_constants.get(&representative) {
                        Some(constant) => {
                            if !op.holds(constant, &value) {
                                unsatisfiable = true;
                            }
                        }
                        None => rep_predicates
                            .entry(representative)
                            .or_default()
                            .push(to_value_predicate(op, value)),
                    }
                }
                if unsatisfiable {
                    // Emit an always-empty class: copy nothing (NA over
                    // the input class), then delete everything in it.
                    let mut copy = Pattern::new();
                    let fragment = Self::add_fragment(
                        &mut copy,
                        &input_class,
                        &input_schema,
                        &BTreeMap::new(),
                        &BTreeMap::new(),
                    );
                    program.push(Operation::NodeAdd(Self::materialize(
                        copy,
                        &class,
                        fragment.values,
                    )));
                    let mut wipe = Pattern::new();
                    let target = wipe.node(class.clone());
                    program.push(Operation::NodeDel(NodeDeletion::new(wipe, target)));
                    return Ok(class);
                }
                // Create one pattern node per representative; point the
                // merge map of every attribute at its representative's
                // node.
                for (attr, value_type) in input_schema.attrs() {
                    let representative = find(&rep, attr.clone());
                    let node = if let Some(&existing) = merge.get(&representative) {
                        existing
                    } else {
                        let node = if let Some(constant) = rep_constants.get(&representative) {
                            pattern.printable(domain_label(*value_type), constant.clone())
                        } else if let Some(predicates) = rep_predicates.get(&representative) {
                            let predicate = if predicates.len() == 1 {
                                predicates[0].clone()
                            } else {
                                ValuePredicate::All(predicates.clone())
                            };
                            pattern.predicate_node(domain_label(*value_type), predicate)
                        } else {
                            pattern.node(domain_label(*value_type))
                        };
                        merge.insert(representative.clone(), node);
                        node
                    };
                    merge.insert(attr.clone(), node);
                }
                let fragment = Self::add_fragment(
                    &mut pattern,
                    &input_class,
                    &input_schema,
                    &merge,
                    &constants,
                );
                program.push(Operation::NodeAdd(Self::materialize(
                    pattern,
                    &class,
                    fragment.values,
                )));
                Ok(class)
            }
            RelExpr::Project(attrs, input) => {
                let input_schema = infer_schema(input, db)?;
                let input_class = self.emit(input, db, program)?;
                let class = self.fresh("project");
                let mut pattern = Pattern::new();
                // Only the projected attributes appear in the pattern —
                // incomplete information is fine in GOOD, and matching
                // only the needed edges is exactly projection.
                let projected = RelSchema::new(
                    attrs
                        .iter()
                        .map(|attr| (attr.clone(), input_schema.domain(attr).expect("inferred"))),
                );
                let fragment = Self::add_fragment(
                    &mut pattern,
                    &input_class,
                    &projected,
                    &BTreeMap::new(),
                    &BTreeMap::new(),
                );
                program.push(Operation::NodeAdd(Self::materialize(
                    pattern,
                    &class,
                    fragment.values,
                )));
                Ok(class)
            }
            RelExpr::Rename(map, input) => {
                let input_schema = infer_schema(input, db)?;
                let input_class = self.emit(input, db, program)?;
                let class = self.fresh("rename");
                let mut pattern = Pattern::new();
                let fragment = Self::add_fragment(
                    &mut pattern,
                    &input_class,
                    &input_schema,
                    &BTreeMap::new(),
                    &BTreeMap::new(),
                );
                let renamed = fragment
                    .values
                    .into_iter()
                    .map(|(attr, node)| (map.get(&attr).cloned().unwrap_or(attr), node));
                program.push(Operation::NodeAdd(Self::materialize(
                    pattern, &class, renamed,
                )));
                Ok(class)
            }
            RelExpr::Product(left, right) => {
                let (ls, rs) = (infer_schema(left, db)?, infer_schema(right, db)?);
                if !ls.common_attrs(&rs).is_empty() {
                    return Err(GoodError::InvariantViolation(
                        "cartesian product requires disjoint attribute names".into(),
                    ));
                }
                let left_class = self.emit(left, db, program)?;
                let right_class = self.emit(right, db, program)?;
                let class = self.fresh("product");
                let mut pattern = Pattern::new();
                let lfrag = Self::add_fragment(
                    &mut pattern,
                    &left_class,
                    &ls,
                    &BTreeMap::new(),
                    &BTreeMap::new(),
                );
                let rfrag = Self::add_fragment(
                    &mut pattern,
                    &right_class,
                    &rs,
                    &BTreeMap::new(),
                    &BTreeMap::new(),
                );
                let attrs = lfrag.values.into_iter().chain(rfrag.values);
                program.push(Operation::NodeAdd(Self::materialize(
                    pattern, &class, attrs,
                )));
                Ok(class)
            }
            RelExpr::Join(left, right) => {
                let (ls, rs) = (infer_schema(left, db)?, infer_schema(right, db)?);
                let common = ls.common_attrs(&rs);
                let left_class = self.emit(left, db, program)?;
                let right_class = self.emit(right, db, program)?;
                let class = self.fresh("join");
                let mut pattern = Pattern::new();
                let lfrag = Self::add_fragment(
                    &mut pattern,
                    &left_class,
                    &ls,
                    &BTreeMap::new(),
                    &BTreeMap::new(),
                );
                // The right fragment reuses the left's printable nodes
                // for the shared attributes — that IS the join.
                let merge: BTreeMap<String, NodeId> = common
                    .iter()
                    .map(|attr| (attr.clone(), lfrag.values[attr]))
                    .collect();
                let rfrag =
                    Self::add_fragment(&mut pattern, &right_class, &rs, &merge, &BTreeMap::new());
                let attrs = lfrag.values.clone().into_iter().chain(
                    rfrag
                        .values
                        .into_iter()
                        .filter(|(attr, _)| !common.contains(attr)),
                );
                program.push(Operation::NodeAdd(Self::materialize(
                    pattern, &class, attrs,
                )));
                Ok(class)
            }
            RelExpr::Union(left, right) => {
                let schema = infer_schema(expr, db)?;
                let left_class = self.emit(left, db, program)?;
                let right_class = self.emit(right, db, program)?;
                let class = self.fresh("union");
                for input in [left_class, right_class] {
                    let mut pattern = Pattern::new();
                    let fragment = Self::add_fragment(
                        &mut pattern,
                        &input,
                        &schema,
                        &BTreeMap::new(),
                        &BTreeMap::new(),
                    );
                    // Node addition's existence check deduplicates the
                    // overlap between the two inputs.
                    program.push(Operation::NodeAdd(Self::materialize(
                        pattern,
                        &class,
                        fragment.values,
                    )));
                }
                Ok(class)
            }
            RelExpr::Difference(left, right) => {
                let schema = infer_schema(expr, db)?;
                let left_class = self.emit(left, db, program)?;
                let right_class = self.emit(right, db, program)?;
                let class = self.fresh("difference");
                // Step 1 (NA): copy the left side.
                let mut copy = Pattern::new();
                let fragment = Self::add_fragment(
                    &mut copy,
                    &left_class,
                    &schema,
                    &BTreeMap::new(),
                    &BTreeMap::new(),
                );
                program.push(Operation::NodeAdd(Self::materialize(
                    copy,
                    &class,
                    fragment.values.clone(),
                )));
                // Step 2 (ND): delete result tuples that also appear on
                // the right — Figure 27's "delete the intermediates
                // whose matching can be enlarged".
                let mut doomed = Pattern::new();
                let result_frag = Self::add_fragment(
                    &mut doomed,
                    &class,
                    &schema,
                    &BTreeMap::new(),
                    &BTreeMap::new(),
                );
                let merge: BTreeMap<String, NodeId> = result_frag.values.clone();
                let _witness = Self::add_fragment(
                    &mut doomed,
                    &right_class,
                    &schema,
                    &merge,
                    &BTreeMap::new(),
                );
                program.push(Operation::NodeDel(NodeDeletion::new(
                    doomed,
                    result_frag.object,
                )));
                Ok(class)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{decode, encode};
    use crate::relation::Relation;
    use good_core::program::Env;
    use good_core::value::Value;

    fn db() -> RelDatabase {
        let mut emp = Relation::new(RelSchema::new([
            ("name", ValueType::Str),
            ("dept", ValueType::Str),
        ]));
        emp.extend([
            vec![Value::str("ann"), Value::str("db")],
            vec![Value::str("bob"), Value::str("os")],
            vec![Value::str("cal"), Value::str("db")],
        ])
        .unwrap();
        let mut dept = Relation::new(RelSchema::new([
            ("dept", ValueType::Str),
            ("head", ValueType::Str),
        ]));
        dept.extend([
            vec![Value::str("db"), Value::str("ann")],
            vec![Value::str("os"), Value::str("bob")],
        ])
        .unwrap();
        let mut managers = Relation::new(RelSchema::new([
            ("name", ValueType::Str),
            ("dept", ValueType::Str),
        ]));
        managers
            .extend([vec![Value::str("ann"), Value::str("db")]])
            .unwrap();
        let mut out = RelDatabase::new();
        out.add("emp", emp);
        out.add("dept", dept);
        out.add("managers", managers);
        out
    }

    /// Compile + run + decode, and compare against native evaluation.
    fn check(expr: RelExpr) {
        let base = db();
        let expected = expr.eval(&base).unwrap();
        let mut instance = encode(&base).unwrap();
        let compiled = Compiler::new().compile(&expr, &base).unwrap();
        compiled
            .program
            .apply(&mut instance, &mut Env::new())
            .unwrap();
        instance.validate().unwrap();
        let actual = decode(&instance, &compiled.class, &compiled.schema).unwrap();
        assert_eq!(actual, expected, "GOOD simulation disagrees for {expr:?}");
    }

    #[test]
    fn base_copy() {
        check(RelExpr::base("emp"));
    }

    #[test]
    fn select_const() {
        check(RelExpr::base("emp").select(Predicate::AttrEqConst("dept".into(), Value::str("db"))));
    }

    #[test]
    fn select_attr_eq_attr() {
        // dept.head = dept.dept is empty here; use emp×renamed variant:
        check(RelExpr::base("dept").select(Predicate::AttrEqAttr("dept".into(), "head".into())));
    }

    #[test]
    fn select_conjunction() {
        check(RelExpr::base("emp").select(Predicate::And(
            Box::new(Predicate::AttrEqConst("dept".into(), Value::str("db"))),
            Box::new(Predicate::AttrEqConst("name".into(), Value::str("cal"))),
        )));
    }

    #[test]
    fn project_deduplicates() {
        check(RelExpr::base("emp").project(["dept"]));
    }

    #[test]
    fn rename() {
        check(RelExpr::base("emp").rename([("name", "employee")]));
    }

    #[test]
    fn product() {
        let renamed = RelExpr::base("emp").rename([("name", "n2"), ("dept", "d2")]);
        check(RelExpr::base("emp").product(renamed));
    }

    #[test]
    fn natural_join() {
        check(RelExpr::base("emp").join(RelExpr::base("dept")));
    }

    #[test]
    fn union() {
        check(RelExpr::base("emp").union(RelExpr::base("managers")));
    }

    #[test]
    fn difference() {
        check(RelExpr::base("emp").difference(RelExpr::base("managers")));
    }

    #[test]
    fn composed_query() {
        let expr = RelExpr::base("emp")
            .join(RelExpr::base("dept"))
            .select(Predicate::AttrEqConst("head".into(), Value::str("ann")))
            .project(["name"])
            .difference(RelExpr::base("managers").project(["name"]));
        check(expr);
    }

    #[test]
    fn intersect_and_divide_compile_via_their_desugarings() {
        check(RelExpr::base("emp").intersect(RelExpr::base("managers")));

        let mut enrolled = Relation::new(RelSchema::new([
            ("student", ValueType::Str),
            ("course", ValueType::Str),
        ]));
        enrolled
            .extend([
                vec![Value::str("ann"), Value::str("db")],
                vec![Value::str("ann"), Value::str("os")],
                vec![Value::str("bob"), Value::str("db")],
            ])
            .unwrap();
        let mut required = Relation::new(RelSchema::new([("course", ValueType::Str)]));
        required
            .extend([vec![Value::str("db")], vec![Value::str("os")]])
            .unwrap();
        let mut base = RelDatabase::new();
        base.add("enrolled", enrolled);
        base.add("required", required);
        let expr = RelExpr::base("enrolled").divide(RelExpr::base("required"), &["student"]);
        let expected = expr.eval(&base).unwrap();
        let mut instance = encode(&base).unwrap();
        let compiled = Compiler::new().compile(&expr, &base).unwrap();
        compiled
            .program
            .apply(&mut instance, &mut Env::new())
            .unwrap();
        let actual = decode(&instance, &compiled.class, &compiled.schema).unwrap();
        assert_eq!(actual, expected);
        assert_eq!(actual.len(), 1); // only ann took everything required
    }

    #[test]
    fn comparison_selections_compile_via_predicates() {
        use crate::algebra::CmpOp;
        let mut nums = Relation::new(RelSchema::new([
            ("n", ValueType::Int),
            ("tag", ValueType::Str),
        ]));
        for n in 0..8 {
            nums.insert(vec![
                Value::int(n),
                Value::str(if n % 2 == 0 { "even" } else { "odd" }),
            ])
            .unwrap();
        }
        let mut base = RelDatabase::new();
        base.add("nums", nums);

        for expr in [
            RelExpr::base("nums").select(Predicate::AttrCmp("n".into(), CmpOp::Ge, Value::int(3))),
            RelExpr::base("nums").select(Predicate::And(
                Box::new(Predicate::AttrCmp("n".into(), CmpOp::Gt, Value::int(1))),
                Box::new(Predicate::AttrCmp("n".into(), CmpOp::Le, Value::int(5))),
            )),
            RelExpr::base("nums").select(Predicate::And(
                Box::new(Predicate::AttrEqConst("tag".into(), Value::str("even"))),
                Box::new(Predicate::AttrCmp("n".into(), CmpOp::Ne, Value::int(2))),
            )),
        ] {
            let expected = expr.eval(&base).unwrap();
            let mut instance = encode(&base).unwrap();
            let compiled = Compiler::new().compile(&expr, &base).unwrap();
            compiled
                .program
                .apply(&mut instance, &mut Env::new())
                .unwrap();
            let actual = decode(&instance, &compiled.class, &compiled.schema).unwrap();
            assert_eq!(actual, expected, "for {expr:?}");
        }
    }

    #[test]
    fn comparison_against_unified_constant_folds_at_compile_time() {
        use crate::algebra::CmpOp;
        // dept = "db" AND dept > "zz" is unsatisfiable and must compile
        // to an empty class (constant folded against the comparison).
        let expr = RelExpr::base("emp").select(Predicate::And(
            Box::new(Predicate::AttrEqConst("dept".into(), Value::str("db"))),
            Box::new(Predicate::AttrCmp(
                "dept".into(),
                CmpOp::Gt,
                Value::str("zz"),
            )),
        ));
        check(expr);
        // ... and the satisfiable variant keeps the rows.
        let expr = RelExpr::base("emp").select(Predicate::And(
            Box::new(Predicate::AttrEqConst("dept".into(), Value::str("db"))),
            Box::new(Predicate::AttrCmp(
                "dept".into(),
                CmpOp::Gt,
                Value::str("aa"),
            )),
        ));
        check(expr);
    }

    #[test]
    fn emitted_programs_use_only_na_and_nd() {
        let expr = RelExpr::base("emp")
            .join(RelExpr::base("dept"))
            .difference(RelExpr::base("managers").join(RelExpr::base("dept")));
        let compiled = Compiler::new().compile(&expr, &db()).unwrap();
        for op in compiled.program.ops() {
            assert!(
                matches!(op.mnemonic(), "NA" | "ND"),
                "unexpected operation {op}"
            );
        }
    }

    #[test]
    fn schema_errors_surface_at_compile_time() {
        let bad = RelExpr::base("emp").union(RelExpr::base("dept"));
        assert!(Compiler::new().compile(&bad, &db()).is_err());
        let bad = RelExpr::base("emp").product(RelExpr::base("emp"));
        assert!(Compiler::new().compile(&bad, &db()).is_err());
        let bad = RelExpr::base("emp").select(Predicate::AttrEqConst("dept".into(), Value::int(3)));
        assert!(Compiler::new().compile(&bad, &db()).is_err());
    }
}
