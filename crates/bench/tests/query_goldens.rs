//! GOODQL end-to-end golden tests: for a fixed deterministic instance,
//! each hand-written query is pinned from text through the compiled
//! GOOD program and the matcher's explain plan down to the final
//! answer rows — all byte-identical to the checked-in files under
//! `tests/goldens/`.
//!
//! The rows section is produced by the three-way differential runner,
//! so every golden also certifies that the core matcher, the
//! relational encoding, and the Tarski algebra agree on that query.
//!
//! When an intentional compiler, planner, or rendering change lands,
//! regenerate with
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p good-bench --test query_goldens
//! ```
//!
//! and commit the diff.

use good_core::gen::{random_instance, GenConfig};
use good_core::instance::Instance;
use std::fmt::Write as _;
use std::path::PathBuf;

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

/// The pinned instance: small enough that the goldens stay readable,
/// dense enough that the transitive-closure queries reach real cycles.
fn golden_instance() -> Instance {
    random_instance(&GenConfig {
        infos: 12,
        avg_links: 1.5,
        distinct_dates: 4,
        seed: 7,
    })
}

/// The hand-written query set: every grammar production, predicates of
/// each type, negation, and four property-path queries (`*`, bounded,
/// `*0..`, and a path over an edge label with no instances — the
/// empty-seed case the compiler must pre-register).
const QUERIES: &[(&str, &str)] = &[
    ("all-infos", "MATCH (a:Info) RETURN a"),
    ("names", "MATCH (a:Info)-[:name]->(n:String) RETURN a, n LIMIT 6"),
    (
        "eq-literal",
        "MATCH (a:Info)-[:name]->(n:String = \"info-3\") RETURN a",
    ),
    (
        "links",
        "MATCH (a:Info)-[:links-to]->(b:Info) RETURN a, b LIMIT 5",
    ),
    (
        "date-lt",
        "MATCH (a:Info)-[:created]->(d:Date) WHERE d < date(1990-01-03) RETURN a, d",
    ),
    (
        "contains",
        "MATCH (a:Info)-[:name]->(n:String) WHERE n CONTAINS \"o-1\" RETURN n",
    ),
    (
        "starts-with",
        "MATCH (a:Info)-[:name]->(n:String) WHERE n STARTS WITH \"info-1\" RETURN DISTINCT n",
    ),
    (
        "date-between",
        "MATCH (a:Info)-[:created]->(d:Date) WHERE d BETWEEN date(1990-01-02) AND date(1990-01-04) RETURN DISTINCT d",
    ),
    (
        "in-list",
        "MATCH (a:Info)-[:name]->(n:String) WHERE n IN [\"info-1\", \"info-5\"] RETURN a, n",
    ),
    (
        "negation",
        "MATCH (a:Info)-[:name]->(n:String = \"info-0\"), (b:Info) WHERE NOT (a)-[:links-to]->(b) RETURN b LIMIT 4",
    ),
    (
        "join-chain",
        "MATCH (a:Info)-[:links-to]->(b:Info), (b)-[:name]->(n:String) RETURN a, n LIMIT 6",
    ),
    (
        "path-star",
        "MATCH (a:Info)-[:name]->(n:String = \"info-0\"), (a)-[:links-to*]->(b:Info) RETURN DISTINCT b",
    ),
    (
        "path-bounded",
        "MATCH (a:Info)-[:links-to*2..3]->(b:Info) RETURN a, b LIMIT 8",
    ),
    (
        "path-zero",
        "MATCH (a:Info)-[:name]->(n:String = \"info-2\"), (a)-[:links-to*0..2]->(b:Info) RETURN DISTINCT b",
    ),
    (
        "path-empty-seed",
        "MATCH (a:Info)-[:rec-links-to*]->(b:Info) RETURN a, b",
    ),
];

/// One golden: the query text, the compiled program + profiled plan
/// (`good_query::explain`), and the differential answer rows.
fn golden_for(db: &Instance, text: &str) -> String {
    let mut out = String::new();
    writeln!(out, "query: {text}").expect("write");
    writeln!(out, "\n== compiled program and plan ==").expect("write");
    let explained = good_query::explain(db, text)
        .unwrap_or_else(|err| panic!("explain failed:\n{}", err.render(text)));
    out.push_str(&explained);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    writeln!(out, "\n== rows (core = relational = tarski) ==").expect("write");
    let output = good_query::run_differential(db, text)
        .unwrap_or_else(|err| panic!("differential failed:\n{}", err.render(text)));
    writeln!(out, "{}", output.columns.join(" | ")).expect("write");
    for row in &output.rows {
        writeln!(out, "{}", row.join(" | ")).expect("write");
    }
    writeln!(out, "({} rows)", output.rows.len()).expect("write");
    out
}

fn query_renderings() -> Vec<(String, String)> {
    let db = golden_instance();
    QUERIES
        .iter()
        .map(|(name, text)| (format!("query-{name}.txt"), golden_for(&db, text)))
        .collect()
}

#[test]
fn query_pipelines_match_the_checked_in_goldens() {
    let update = std::env::var_os("UPDATE_GOLDENS").is_some();
    let dir = goldens_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create goldens dir");
    }
    for (name, contents) in query_renderings() {
        let path = dir.join(&name);
        if update {
            std::fs::write(&path, &contents).expect("write golden");
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|err| {
            panic!(
                "missing golden {name}: {err}\n\
                 regenerate with UPDATE_GOLDENS=1 cargo test -p good-bench --test query_goldens"
            )
        });
        assert!(
            golden == contents,
            "query pipeline {name} drifted from its golden.\n\
             If the change is intentional, regenerate with\n\
             UPDATE_GOLDENS=1 cargo test -p good-bench --test query_goldens\n\
             --- golden ---\n{golden}\n--- current ---\n{contents}"
        );
    }
}

#[test]
fn query_renderings_are_deterministic() {
    // Goldens are only meaningful if regeneration is byte-stable.
    assert_eq!(query_renderings(), query_renderings());
}

#[test]
fn the_path_goldens_actually_reach_rows() {
    // Goldens with zero rows would silently pin nothing about path
    // evaluation; keep the closure queries honest (the deliberate
    // exception is `path-empty-seed`, which pins the zero-instance
    // derivation).
    let db = golden_instance();
    for (name, text) in QUERIES {
        let rows = good_query::run_differential(&db, text)
            .unwrap_or_else(|err| panic!("{name}: {}", err.render(text)))
            .rows;
        if name.starts_with("path-") && *name != "path-empty-seed" {
            assert!(!rows.is_empty(), "{name} pins an empty answer");
        }
        if *name == "path-empty-seed" {
            assert!(rows.is_empty(), "{name} is supposed to have no seed edges");
        }
    }
}
