//! Nightly stress suite (run with `cargo test --release -- --ignored`;
//! scheduled in CI). Exercises the matching engine and the batched
//! operations on the 10 000-object stress instance — too slow for the
//! per-commit test run, which covers the same properties at small scale.

use good_bench::{anchored_pattern, chain_pattern, stress_instance};
use good_core::matching::{find_matchings_with, MatchConfig};
use good_core::ops::EdgeDeletion;

#[test]
#[ignore = "10k-object stress run; exercised by the nightly CI schedule"]
fn parallel_matching_is_deterministic_at_scale() {
    let db = stress_instance();
    for (name, pattern) in [
        ("figure4-anchored", anchored_pattern("info-0").0),
        ("chain-2", chain_pattern(2).0),
        ("chain-3", chain_pattern(3).0),
    ] {
        let sequential =
            find_matchings_with(&pattern, &db, MatchConfig::sequential()).expect("valid pattern");
        for threads in [2, 4, 8] {
            let parallel = find_matchings_with(
                &pattern,
                &db,
                MatchConfig {
                    threads,
                    parallel_threshold: 0,
                },
            )
            .expect("valid pattern");
            assert_eq!(sequential, parallel, "{name} differs at {threads} threads");
        }
    }
}

#[test]
#[ignore = "10k-object stress run; exercised by the nightly CI schedule"]
fn batched_edge_deletion_keeps_indexes_coherent_at_scale() {
    let mut db = stress_instance();
    let (pattern, nodes) = chain_pattern(2);
    let report = EdgeDeletion::single(pattern, nodes[0], "links-to", nodes[1])
        .apply(&mut db)
        .expect("edge deletion applies");
    assert!(report.edges_deleted > 0);
    db.validate().expect("invariants after bulk deletion");
}
