//! E14 — overhead of the `good-trace` layer (EXPERIMENTS.md §E14).
//!
//! Measures matcher and operation workloads twice: with no recorder
//! installed (the shipping default — every span site must collapse to
//! one relaxed atomic load) and with a `Collector` attached (full
//! capture). Prints criterion-style lines and emits machine-readable
//! results to `BENCH_trace.json` in the workspace root.
//!
//! Doubles as the CI overhead smoke: `--check <baseline.json>`
//! re-measures only the tracing-off medians and exits nonzero if any
//! workload regressed more than 10% against the recorded baseline.
//!
//! Hand-rolled measurement loop (same idiom as `parallel.rs`) because
//! the report needs the raw medians.

use good_bench::{anchored_pattern, chain_pattern, instance_of, tag_addition};
use good_core::matching::{find_matchings_with, MatchConfig};
use good_core::program::{Env, Operation, Program};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const SAMPLES: usize = 7;
const TARGET_SAMPLE_NANOS: u128 = 60_000_000; // ~60ms per sample
const CHECK_TOLERANCE: f64 = 1.10;
// Absolute slack on top of the 10%: µs-scale workloads jitter by more
// than 10% from timer granularity alone, yet an accidental always-on
// capture costs several µs there — so a 1µs floor keeps the gate
// meaningful without false alarms.
const CHECK_SLACK_NANOS: u128 = 1_000;

struct Measurement {
    workload: &'static str,
    off_ns: u128,
    on_ns: u128,
    spans_per_iter: usize,
}

fn format_nanos(nanos: u128) -> String {
    let nanos = nanos as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// Median per-iteration time of `routine` over `SAMPLES` samples, each
/// sized to roughly `TARGET_SAMPLE_NANOS`.
fn measure(mut routine: impl FnMut()) -> u128 {
    let start = Instant::now();
    routine();
    let once = start.elapsed().as_nanos().max(1);
    let iterations = (TARGET_SAMPLE_NANOS / once).clamp(1, 10_000);
    let mut samples: Vec<u128> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iterations {
            routine();
        }
        samples.push(start.elapsed().as_nanos() / iterations);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The measured workloads. Each closure is self-contained and safe to
/// call repeatedly: the mutation workload re-applies an idempotent
/// node addition, so every timed iteration after the first exercises
/// the dedup path in both modes. The `checked` flag marks workloads
/// stable enough for the 10% CI gate — the morsel-parallel one is
/// reported but not gated, since its median swings with scheduler
/// noise on shared runners.
struct Workload {
    name: &'static str,
    checked: bool,
    routine: Box<dyn FnMut()>,
}

fn workloads() -> Vec<Workload> {
    let chain_db = instance_of(1600);
    let chain_db_par = chain_db.clone();
    let chain = chain_pattern(2).0;
    let chain_par = chain_pattern(2).0;
    let anchored_db = instance_of(400);
    let anchored = anchored_pattern("info-0").0;
    let mut tag_db = instance_of(400);
    let tag_program = Program::from_ops([Operation::NodeAdd(tag_addition(2))]);
    vec![
        Workload {
            name: "match-chain2-seq@1600",
            checked: true,
            routine: Box::new(move || {
                find_matchings_with(&chain, &chain_db, MatchConfig::sequential())
                    .expect("valid pattern");
            }),
        },
        Workload {
            name: "match-anchored-seq@400",
            checked: true,
            routine: Box::new(move || {
                find_matchings_with(&anchored, &anchored_db, MatchConfig::sequential())
                    .expect("valid pattern");
            }),
        },
        Workload {
            name: "match-chain2-par4@1600",
            checked: false,
            routine: Box::new(move || {
                let config = MatchConfig {
                    threads: 4,
                    parallel_threshold: 128,
                };
                find_matchings_with(&chain_par, &chain_db_par, config).expect("valid pattern");
            }),
        },
        Workload {
            name: "program-tag-na@400",
            checked: true,
            routine: Box::new(move || {
                let mut env = Env::with_fuel(1_000_000);
                tag_program.apply(&mut tag_db, &mut env).expect("applies");
            }),
        },
    ]
}

fn workspace_path(file: &str) -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop(); // crates/
    path.pop(); // workspace root
    path.push(file);
    path
}

fn json_str_field(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

fn json_num_field(line: &str, key: &str) -> Option<u128> {
    let start = line.find(key)? + key.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extract `(workload, off_ns)` pairs from a previously emitted
/// `BENCH_trace.json` (flat hand-formatted JSON, one result per line —
/// no parser dependency needed).
fn parse_baseline(text: &str) -> Vec<(String, u128)> {
    text.lines()
        .filter_map(|line| {
            let workload = json_str_field(line, "\"workload\": \"")?;
            let off_ns = json_num_field(line, "\"off_ns\": ")?;
            Some((workload, off_ns))
        })
        .collect()
}

/// CI smoke: re-measure the tracing-off medians and fail on >10%
/// regression against the recorded baseline.
fn run_check(baseline_arg: &str) -> ! {
    let path = if std::path::Path::new(baseline_arg).is_absolute() {
        PathBuf::from(baseline_arg)
    } else {
        // cargo bench runs with the package as cwd; resolve relative
        // baselines against the workspace root where the bench emits.
        workspace_path(baseline_arg)
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read baseline {}: {err}", path.display());
            std::process::exit(1);
        }
    };
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        eprintln!("no results found in baseline {}", path.display());
        std::process::exit(1);
    }
    println!("E14 overhead smoke — tracing-off vs {}", path.display());
    let mut failed = false;
    for workload in workloads() {
        if !workload.checked {
            continue;
        }
        let Workload {
            name, mut routine, ..
        } = workload;
        good_trace::uninstall();
        // Best of two medians: the gate compares against a recorded
        // median, so damping scheduler spikes here trades a slightly
        // lenient gate for no false alarms on shared runners.
        let off_ns = measure(&mut *routine).min(measure(&mut *routine));
        match baseline.iter().find(|(w, _)| w == name) {
            Some((_, base_ns)) => {
                let ratio = off_ns as f64 / *base_ns as f64;
                let allowed = (*base_ns as f64 * CHECK_TOLERANCE) as u128 + CHECK_SLACK_NANOS;
                let verdict = if off_ns > allowed {
                    failed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "{name:<28} off {:>12}  baseline {:>12}  ratio {ratio:.3}  {verdict}",
                    format_nanos(off_ns),
                    format_nanos(*base_ns),
                );
            }
            None => {
                failed = true;
                println!("{name:<28} missing from baseline");
            }
        }
    }
    if failed {
        eprintln!("tracing-off medians regressed more than 10% vs baseline");
        std::process::exit(1);
    }
    println!("tracing-off medians within 10% of baseline");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(position) = args.iter().position(|a| a == "--check") {
        let Some(baseline) = args.get(position + 1) else {
            eprintln!("error: --check requires a baseline path");
            std::process::exit(1);
        };
        run_check(baseline);
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("E14 trace overhead — {cores} core(s) available");

    let mut measurements: Vec<Measurement> = Vec::new();
    for Workload {
        name: workload,
        mut routine,
        ..
    } in workloads()
    {
        // Tracing off: the shipping default. No recorder installed, so
        // every span site is a single relaxed load.
        good_trace::uninstall();
        let off_ns = measure(&mut *routine);

        // Tracing on: full capture into a collector. One extra run
        // counts spans per iteration; the capture is drained afterward
        // so the timed runs only pay recording, not unbounded growth.
        let collector = Arc::new(good_trace::Collector::new());
        good_trace::swap_recorder(Some(collector.clone()));
        routine();
        let spans_per_iter = collector.take().len();
        let on_ns = measure(&mut *routine);
        good_trace::uninstall();
        collector.take();

        let overhead_pct = (on_ns as f64 / off_ns as f64 - 1.0) * 100.0;
        println!(
            "E14-trace-overhead/{workload:<28} off: [median {:>12}]  on: [median {:>12}]  overhead {overhead_pct:+.2}% ({spans_per_iter} spans/iter)",
            format_nanos(off_ns),
            format_nanos(on_ns),
        );
        measurements.push(Measurement {
            workload,
            off_ns,
            on_ns,
            spans_per_iter,
        });
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"E14-trace-overhead\",");
    let _ = writeln!(json, "  \"machine_cores\": {cores},");
    json.push_str("  \"results\": [\n");
    for (index, m) in measurements.iter().enumerate() {
        let comma = if index + 1 == measurements.len() {
            ""
        } else {
            ","
        };
        let overhead_pct = (m.on_ns as f64 / m.off_ns as f64 - 1.0) * 100.0;
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"off_ns\": {}, \"on_ns\": {}, \"spans_per_iter\": {}, \"overhead_pct\": {overhead_pct:.2}}}{comma}",
            m.workload, m.off_ns, m.on_ns, m.spans_per_iter
        );
    }
    json.push_str("  ]\n}\n");

    let path = workspace_path("BENCH_trace.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
