//! Codec torture suite: round-trip every frame type, then prove the
//! decoder total — truncations at every byte boundary, single-bit
//! flips, oversized and hostile length fields all yield a typed
//! [`ProtoError`], never a panic. A checked-in regression corpus
//! under `tests/corpus/` pins known-tricky inputs (regenerate with
//! `UPDATE_CORPUS=1 cargo test -p good-server --test proto`).

use good_core::gen::random_workload;
use good_server::proto::{
    decode, encode, ErrCode, Frame, ProtoError, SnapshotInfo, HEADER_LEN, MAGIC, MAX_PAYLOAD,
    VERSION,
};
use proptest::prelude::*;

/// One representative of every frame type, parameterized by a seed so
/// the proptests sweep field values too.
fn sample_frames(seed: u64) -> Vec<Frame> {
    let program = random_workload(seed, 1).remove(0);
    vec![
        Frame::Hello { session: seed },
        Frame::Submit {
            request: seed,
            program,
            trace: seed.is_multiple_of(2).then_some(seed ^ 0xD1CE),
        },
        Frame::Ack {
            request: seed,
            epoch: seed / 2,
            commit_seq: seed.is_multiple_of(2).then_some(seed + 1),
            outcome: if seed.is_multiple_of(3) {
                Err(format!("rejected-{seed}"))
            } else {
                Ok(format!("2 matching(s), +{seed} nodes"))
            },
        },
        Frame::Snapshot {
            request: seed,
            at: (seed % 2 == 1).then_some(seed),
            want_dot: seed.is_multiple_of(2),
            info: None,
        },
        Frame::Snapshot {
            request: seed,
            at: None,
            want_dot: true,
            info: Some(SnapshotInfo {
                epoch: seed,
                nodes: seed * 3,
                edges: seed * 5,
                dot: Some(format!("digraph g{seed} {{}}")),
            }),
        },
        Frame::Query {
            request: seed,
            at: seed.is_multiple_of(4).then_some(seed),
            pattern: format!("i: Info; s: String = \"x{seed}\"; i -name-> s;"),
            trace: seed.is_multiple_of(3).then_some(seed.wrapping_mul(31)),
        },
        Frame::Rows {
            request: seed,
            epoch: seed,
            columns: vec!["i".into(), "s".into()],
            rows: vec![
                vec![format!("Info(#{seed})"), "String(x)".into()],
                vec!["Info(#2)".into(), "String(üñïçøde)".into()],
            ],
        },
        Frame::Err {
            request: seed,
            code: match seed % 7 {
                0 => ErrCode::BadRequest,
                1 => ErrCode::UnknownSession,
                2 => ErrCode::Shutdown,
                3 => ErrCode::QueueFull,
                4 => ErrCode::QuotaExceeded,
                5 => ErrCode::Overloaded,
                _ => ErrCode::Store,
            },
            retry_after_ms: (seed % 500) as u32,
            detail: format!("detail {seed}"),
        },
        Frame::Goodbye {
            reason: format!("reason {seed}"),
        },
        Frame::Stats { request: seed },
        Frame::StatsReply {
            request: seed,
            json: format!("{{\"server\":{{\"epoch\":{seed}}}}}"),
        },
    ]
}

/// Round-trip identity is checked on bytes: `Program` has no
/// `PartialEq`, but its serde encoding is canonical, so
/// `encode(decode(encode(f))) == encode(f)` is the right equality.
fn assert_round_trips(frame: &Frame) {
    let bytes = encode(frame);
    let (decoded, consumed) =
        decode(&bytes).unwrap_or_else(|err| panic!("{} must decode: {err}", frame.type_name()));
    assert_eq!(consumed, bytes.len(), "{} consumed", frame.type_name());
    assert_eq!(
        encode(&decoded),
        bytes,
        "{} round-trip must be byte-identical",
        frame.type_name()
    );
}

#[test]
fn every_frame_type_round_trips() {
    for seed in [0, 1, 2, 3, 5, 7, 1_000_003] {
        for frame in sample_frames(seed) {
            assert_round_trips(&frame);
        }
    }
}

#[test]
fn every_truncation_of_every_frame_is_a_typed_error() {
    for frame in sample_frames(11) {
        let bytes = encode(&frame);
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Err(ProtoError::Truncated { needed, have }) => {
                    assert_eq!(have, cut);
                    assert!(needed > cut, "needed {needed} must exceed available {cut}");
                }
                Err(ProtoError::Malformed { .. }) => {
                    // Payload-level truncation detected after the
                    // header claimed a shorter payload is impossible
                    // here (len is exact); any Malformed would be a
                    // codec bug.
                    panic!(
                        "truncation at {cut}/{} of {} decoded as Malformed",
                        bytes.len(),
                        frame.type_name()
                    );
                }
                other => panic!(
                    "truncation at {cut}/{} of {} gave {other:?}",
                    bytes.len(),
                    frame.type_name()
                ),
            }
        }
    }
}

#[test]
fn every_single_bit_flip_yields_frame_or_typed_error() {
    // Exhaustive over all bits of every sample frame: decode must
    // return, never panic. (The result may legitimately be Ok — many
    // flips only change field values.)
    for frame in sample_frames(3) {
        let bytes = encode(&frame);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[byte] ^= 1 << bit;
                match decode(&mutated) {
                    Ok((decoded, consumed)) => {
                        assert!(consumed <= mutated.len());
                        // Re-encoding a decoded frame must stay total.
                        let _ = encode(&decoded);
                    }
                    Err(_typed) => {}
                }
            }
        }
    }
}

#[test]
fn oversized_length_field_is_rejected_before_allocation() {
    let mut bytes = encode(&Frame::Hello { session: 1 });
    bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
    match decode(&bytes) {
        Err(ProtoError::Oversized { len, max }) => {
            assert_eq!(len, u32::MAX as u64);
            assert_eq!(max, MAX_PAYLOAD as u64);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
    // Just over the limit is also refused; the limit itself is not.
    bytes[6..10].copy_from_slice(&((MAX_PAYLOAD + 1) as u32).to_le_bytes());
    assert!(matches!(decode(&bytes), Err(ProtoError::Oversized { .. })));
}

#[test]
fn bad_magic_version_and_type_are_typed() {
    let good = encode(&Frame::Goodbye { reason: "x".into() });

    let mut bad_magic = good.clone();
    bad_magic[0] = b'B';
    assert!(matches!(decode(&bad_magic), Err(ProtoError::BadMagic(_))));

    let mut bad_version = good.clone();
    bad_version[4] = VERSION + 1;
    assert!(matches!(
        decode(&bad_version),
        Err(ProtoError::Version { got, want }) if got == VERSION + 1 && want == VERSION
    ));

    let mut bad_type = good.clone();
    bad_type[5] = 99;
    assert!(matches!(
        decode(&bad_type),
        Err(ProtoError::UnknownFrame(99))
    ));

    let mut zero_type = good;
    zero_type[5] = 0;
    assert!(matches!(
        decode(&zero_type),
        Err(ProtoError::UnknownFrame(0))
    ));
}

#[test]
fn payload_trailing_bytes_are_malformed() {
    let mut bytes = encode(&Frame::Hello { session: 9 });
    // Grow the payload by one byte and fix the length field: the
    // Hello decoder must reject the trailing byte.
    bytes.push(0xAA);
    let len = (bytes.len() - HEADER_LEN) as u32;
    bytes[6..10].copy_from_slice(&len.to_le_bytes());
    assert!(matches!(
        decode(&bytes),
        Err(ProtoError::Malformed { frame: "Hello", .. })
    ));
}

#[test]
fn invalid_utf8_and_bad_bools_are_malformed() {
    // Goodbye with a string of 2 bytes of invalid UTF-8.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.push(VERSION);
    bytes.push(8); // Goodbye
    bytes.extend_from_slice(&6u32.to_le_bytes()); // payload len
    bytes.extend_from_slice(&2u32.to_le_bytes()); // string len
    bytes.extend_from_slice(&[0xFF, 0xFE]);
    assert!(matches!(
        decode(&bytes),
        Err(ProtoError::Malformed {
            frame: "Goodbye",
            ..
        })
    ));

    // Snapshot whose want_dot byte is 7.
    let snap = Frame::Snapshot {
        request: 1,
        at: None,
        want_dot: false,
        info: None,
    };
    let mut bytes = encode(&snap);
    // Payload: request u64 (8) + has_at u8 (1) + want_dot u8 (1) + has_info u8 (1).
    bytes[HEADER_LEN + 9] = 7;
    assert!(matches!(
        decode(&bytes),
        Err(ProtoError::Malformed {
            frame: "Snapshot",
            ..
        })
    ));
}

#[test]
fn submit_with_garbage_json_is_malformed_not_a_panic() {
    // Hand-build a Submit whose program JSON is nonsense.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u64.to_le_bytes());
    let json = b"{\"ops\": [truncated";
    payload.extend_from_slice(&(json.len() as u32).to_le_bytes());
    payload.extend_from_slice(json);
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.push(VERSION);
    bytes.push(2); // Submit
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&payload);
    assert!(matches!(
        decode(&bytes),
        Err(ProtoError::Malformed {
            frame: "Submit",
            ..
        })
    ));
}

#[test]
fn untraced_submit_and_query_use_the_v0_layout() {
    // A Submit/Query without a trace id must encode with zero trailing
    // bytes — byte-identical to what a pre-tracing peer emits — and an
    // old-layout frame must decode with `trace: None`. This is the
    // wire-compat contract: tracing is opt-in per frame, not a version
    // bump.
    let program = random_workload(5, 1).remove(0);
    let submit = Frame::Submit {
        request: 5,
        program,
        trace: None,
    };
    let bytes = encode(&submit);
    // Reconstruct the old layout by hand: request u64 + len-prefixed
    // program JSON, nothing after.
    let json_len = u32::from_le_bytes(bytes[HEADER_LEN + 8..HEADER_LEN + 12].try_into().unwrap());
    assert_eq!(
        bytes.len(),
        HEADER_LEN + 8 + 4 + json_len as usize,
        "untraced Submit must carry no trailing trace bytes"
    );
    let (decoded, _) = decode(&bytes).expect("v0-layout Submit decodes");
    match &decoded {
        Frame::Submit { trace, .. } => assert_eq!(*trace, None),
        other => panic!("decoded {}", other.type_name()),
    }
    assert_eq!(encode(&decoded), bytes);

    let query = Frame::Query {
        request: 6,
        at: None,
        pattern: "i: Info;".into(),
        trace: None,
    };
    let bytes = encode(&query);
    let (decoded, _) = decode(&bytes).expect("v0-layout Query decodes");
    match &decoded {
        Frame::Query { trace, .. } => assert_eq!(*trace, None),
        other => panic!("decoded {}", other.type_name()),
    }
    assert_eq!(encode(&decoded), bytes);
}

#[test]
fn traced_submit_round_trips_and_zero_presence_byte_is_rejected() {
    let program = random_workload(7, 1).remove(0);
    let traced = Frame::Submit {
        request: 7,
        program,
        trace: Some(0xFEED_BEEF_u64),
    };
    let bytes = encode(&traced);
    let (decoded, consumed) = decode(&bytes).expect("traced Submit decodes");
    assert_eq!(consumed, bytes.len());
    match &decoded {
        Frame::Submit { trace, .. } => assert_eq!(*trace, Some(0xFEED_BEEF_u64)),
        other => panic!("decoded {}", other.type_name()),
    }
    assert_eq!(encode(&decoded), bytes);

    // The encoding is canonical: absence is *zero* bytes, so a `0`
    // presence byte (an alternate spelling of "no trace") is malformed.
    let mut zero_presence = bytes.clone();
    // Strip `1 + u64` and append a lone `0`, fixing the length field.
    zero_presence.truncate(bytes.len() - 9);
    zero_presence.push(0);
    let len = (zero_presence.len() - HEADER_LEN) as u32;
    zero_presence[6..10].copy_from_slice(&len.to_le_bytes());
    assert!(matches!(
        decode(&zero_presence),
        Err(ProtoError::Malformed {
            frame: "Submit",
            ..
        })
    ));
}

// ---------------------------------------------------------------- corpus

/// The regression corpus: known-tricky wire inputs checked in as
/// files. `ok-*.bin` must decode; `err-*.bin` must yield a typed
/// error. Every file must be classified — a panic fails the test by
/// aborting it.
fn corpus_dir() -> std::path::PathBuf {
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.push("tests");
    path.push("corpus");
    path
}

/// The corpus contents, as `(name, bytes)`; regenerated byte-for-byte
/// by `UPDATE_CORPUS=1`.
fn corpus_entries() -> Vec<(String, Vec<u8>)> {
    let mut entries = Vec::new();
    for (index, frame) in sample_frames(42).into_iter().enumerate() {
        entries.push((
            format!("ok-{:02}-{}.bin", index, frame.type_name().to_lowercase()),
            encode(&frame),
        ));
    }
    let hello = encode(&Frame::Hello { session: 7 });

    entries.push(("err-empty.bin".into(), Vec::new()));
    entries.push(("err-header-only-3-bytes.bin".into(), hello[..3].to_vec()));
    entries.push((
        "err-truncated-mid-payload.bin".into(),
        hello[..HEADER_LEN + 4].to_vec(),
    ));
    let mut bad_magic = hello.clone();
    bad_magic[0..4].copy_from_slice(b"EVIL");
    entries.push(("err-bad-magic.bin".into(), bad_magic));
    let mut bad_version = hello.clone();
    bad_version[4] = 0x7F;
    entries.push(("err-bad-version.bin".into(), bad_version));
    let mut bad_type = hello.clone();
    bad_type[5] = 0xEE;
    entries.push(("err-unknown-type.bin".into(), bad_type));
    let mut oversized = hello.clone();
    oversized[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
    entries.push(("err-oversized-length.bin".into(), oversized));
    let mut trailing = encode(&Frame::Hello { session: 3 });
    trailing.push(0x00);
    let len = (trailing.len() - HEADER_LEN) as u32;
    trailing[6..10].copy_from_slice(&len.to_le_bytes());
    entries.push(("err-trailing-payload-byte.bin".into(), trailing));
    // Rows claiming u32::MAX rows in a near-empty payload.
    let mut rows_payload = Vec::new();
    rows_payload.extend_from_slice(&1u64.to_le_bytes());
    rows_payload.extend_from_slice(&1u64.to_le_bytes());
    rows_payload.extend_from_slice(&0u32.to_le_bytes());
    rows_payload.extend_from_slice(&u32::MAX.to_le_bytes());
    let mut rows_bomb = Vec::new();
    rows_bomb.extend_from_slice(&MAGIC);
    rows_bomb.push(VERSION);
    rows_bomb.push(6);
    rows_bomb.extend_from_slice(&(rows_payload.len() as u32).to_le_bytes());
    rows_bomb.extend_from_slice(&rows_payload);
    entries.push(("err-rows-count-bomb.bin".into(), rows_bomb));
    // A Submit whose JSON is valid UTF-8 garbage.
    let mut submit_payload = Vec::new();
    submit_payload.extend_from_slice(&9u64.to_le_bytes());
    let garbage = b"not json at all";
    submit_payload.extend_from_slice(&(garbage.len() as u32).to_le_bytes());
    submit_payload.extend_from_slice(garbage);
    let mut submit_garbage = Vec::new();
    submit_garbage.extend_from_slice(&MAGIC);
    submit_garbage.push(VERSION);
    submit_garbage.push(2);
    submit_garbage.extend_from_slice(&(submit_payload.len() as u32).to_le_bytes());
    submit_garbage.extend_from_slice(&submit_payload);
    entries.push(("err-submit-garbage-json.bin".into(), submit_garbage));
    // An Err frame carrying an unassigned error code.
    let mut err_payload = Vec::new();
    err_payload.extend_from_slice(&1u64.to_le_bytes());
    err_payload.push(0xCC); // bad code
    err_payload.extend_from_slice(&0u32.to_le_bytes());
    err_payload.extend_from_slice(&0u32.to_le_bytes());
    let mut bad_code = Vec::new();
    bad_code.extend_from_slice(&MAGIC);
    bad_code.push(VERSION);
    bad_code.push(7);
    bad_code.extend_from_slice(&(err_payload.len() as u32).to_le_bytes());
    bad_code.extend_from_slice(&err_payload);
    entries.push(("err-bad-error-code.bin".into(), bad_code));
    // A Submit spelling "no trace id" as an explicit 0 presence byte:
    // the canonical encoding is zero trailing bytes, so this variant
    // must be rejected (otherwise re-encode would not be byte-stable).
    let mut zero_trace = encode(&Frame::Submit {
        request: 11,
        program: random_workload(11, 1).remove(0),
        trace: None,
    });
    zero_trace.push(0);
    let len = (zero_trace.len() - HEADER_LEN) as u32;
    zero_trace[6..10].copy_from_slice(&len.to_le_bytes());
    entries.push(("err-zero-trace-presence-byte.bin".into(), zero_trace));
    entries
}

#[test]
fn regression_corpus_is_checked_in_and_classified() {
    let dir = corpus_dir();
    if std::env::var("UPDATE_CORPUS").is_ok() {
        std::fs::create_dir_all(&dir).expect("create corpus dir");
        for (name, bytes) in corpus_entries() {
            std::fs::write(dir.join(&name), &bytes).expect("write corpus file");
        }
    }
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|err| {
            panic!(
                "corpus dir {} missing ({err}); regenerate with UPDATE_CORPUS=1",
                dir.display()
            )
        })
        .map(|entry| entry.expect("dir entry").file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(
        names.len() >= corpus_entries().len(),
        "corpus incomplete: {} files, expected at least {}",
        names.len(),
        corpus_entries().len()
    );
    for name in names {
        let bytes = std::fs::read(dir.join(&name)).expect("read corpus file");
        let result = decode(&bytes);
        if name.starts_with("ok-") {
            let (frame, consumed) =
                result.unwrap_or_else(|err| panic!("corpus {name} must decode: {err}"));
            assert_eq!(consumed, bytes.len(), "{name}");
            assert_eq!(encode(&frame), bytes, "{name} must re-encode identically");
        } else if name.starts_with("err-") {
            let err = match result {
                Err(err) => err,
                Ok((frame, _)) => {
                    panic!(
                        "corpus {name} must be rejected, decoded {}",
                        frame.type_name()
                    )
                }
            };
            // The error must render (Display is part of the contract).
            assert!(!err.to_string().is_empty(), "{name}");
        } else {
            panic!("corpus file {name} must be prefixed ok- or err-");
        }
    }
}

// ---------------------------------------------------------------- proptests

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every frame built from random field values round-trips
    /// byte-identically.
    #[test]
    fn prop_round_trip(seed in 0u64..1_000_000) {
        for frame in sample_frames(seed) {
            assert_round_trips(&frame);
        }
    }

    /// Arbitrary byte soup never panics the decoder and always yields
    /// a frame or a typed error; decode of random bytes prefixed with
    /// a valid header shape is equally total.
    #[test]
    fn prop_decoder_is_total_on_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        match decode(&bytes) {
            Ok((frame, consumed)) => {
                prop_assert!(consumed <= bytes.len());
                let _ = encode(&frame);
            }
            Err(err) => prop_assert!(!err.to_string().is_empty()),
        }
        // Same soup as a claimed-valid payload of every frame type.
        for type_byte in 1u8..=10 {
            let mut framed = Vec::with_capacity(HEADER_LEN + bytes.len());
            framed.extend_from_slice(&MAGIC);
            framed.push(VERSION);
            framed.push(type_byte);
            framed.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            framed.extend_from_slice(&bytes);
            match decode(&framed) {
                Ok((frame, consumed)) => {
                    prop_assert!(consumed == framed.len());
                    let _ = encode(&frame);
                }
                Err(err) => prop_assert!(!err.to_string().is_empty()),
            }
        }
    }

    /// Random mutations (splices, flips, truncations) of valid frames
    /// stay total.
    #[test]
    fn prop_decoder_survives_mutations(
        seed in 0u64..100_000,
        cut in 0usize..2048,
        byte in 0usize..2048,
        flip in 0u8..8,
    ) {
        for frame in sample_frames(seed) {
            let mut bytes = encode(&frame);
            if !bytes.is_empty() {
                let position = byte % bytes.len();
                bytes[position] ^= 1 << flip;
                bytes.truncate(cut.max(1).min(bytes.len()));
            }
            match decode(&bytes) {
                Ok((frame, _)) => { let _ = encode(&frame); }
                Err(err) => prop_assert!(!err.to_string().is_empty()),
            }
        }
    }
}
