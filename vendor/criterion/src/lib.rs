//! Offline stand-in for `criterion`.
//!
//! Implements the API surface this workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::{iter, iter_batched}`, `black_box`,
//! `criterion_group!`, `criterion_main!` — over a simple wall-clock
//! measurement loop: warm up, size iterations to the measurement
//! budget, take `sample_size` samples, report min/median/max time per
//! iteration.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Batch sizing hints for `iter_batched` (measurement treats all the
/// same: one setup per timed routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Identifier of a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function: Some(function),
            parameter: None,
        }
    }
}

/// Measurement settings and the entry point handed to bench targets.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Upstream parses CLI args here; the stand-in accepts and ignores
    /// them (kept so generated mains stay source-compatible).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
            warm_up_time: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let settings = self.clone();
        run_benchmark(&id.render(), &settings, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
    warm_up_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = Some(d);
        self
    }

    fn settings(&self) -> Criterion {
        Criterion {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            measurement_time: self
                .measurement_time
                .unwrap_or(self.criterion.measurement_time),
            warm_up_time: self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let label = format!("{}/{}", self.name, id.render());
        run_benchmark(&label, &self.settings(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.render());
        run_benchmark(&label, &self.settings(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Passed to benchmark closures; measures the timed routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, settings: &Criterion, mut f: F) {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // estimating per-iteration cost as we go.
    let warm_up_start = Instant::now();
    let mut warm_up_iters: u64 = 0;
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    loop {
        f(&mut bencher);
        warm_up_iters += 1;
        if warm_up_start.elapsed() >= settings.warm_up_time {
            break;
        }
    }
    let per_iteration = warm_up_start.elapsed().as_nanos().max(1) / warm_up_iters.max(1) as u128;

    // Size each sample so all samples fit the measurement budget.
    let budget_per_sample =
        settings.measurement_time.as_nanos() / settings.sample_size.max(1) as u128;
    let iterations = (budget_per_sample / per_iteration.max(1)).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        bencher.iterations = iterations;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        samples.push(bencher.elapsed.as_nanos() as f64 / iterations as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples.first().copied().unwrap_or(0.0);
    let max = samples.last().copied().unwrap_or(0.0);
    let median = samples[samples.len() / 2];
    println!(
        "{label:<60} time: [{} {} {}] ({} samples x {} iters)",
        format_nanos(min),
        format_nanos(median),
        format_nanos(max),
        samples.len(),
        iterations,
    );
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// Define a benchmark group function, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut criterion = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut group = criterion.benchmark_group("smoke");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
