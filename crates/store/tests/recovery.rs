//! Named recovery edge-case tests, driven through the fault-injecting
//! VFS so every scenario is deterministic and filesystem-independent.
//!
//! These pin the recovery contract case by case (DESIGN.md,
//! "Durability and crash consistency"); the torture harness then
//! checks the same contract under exhaustive crash schedules.

use good_core::gen::bench_scheme;
use good_core::instance::Instance;
use good_core::ops::NodeAddition;
use good_core::pattern::Pattern;
use good_core::program::{Operation, Program};
use good_store::vfs::{FaultPlan, FaultVfs, Vfs};
use good_store::{LogRecord, Store, StoreError};
use std::path::Path;
use std::sync::Arc;

const JOURNAL: &str = "/db/test.journal";

fn fault_vfs(seed: u64) -> (FaultVfs, Arc<dyn Vfs>) {
    let vfs = FaultVfs::new(FaultPlan::reliable(seed));
    let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
    (vfs, arc)
}

fn probe_program(label: &str) -> Program {
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        Pattern::new(),
        label,
        [],
    ))])
}

fn record_line(record: &LogRecord) -> String {
    let mut line = serde_json::to_string(record).expect("serialize record");
    line.push('\n');
    line
}

fn snapshot_line() -> String {
    record_line(&LogRecord::Snapshot(Box::new(
        Instance::new(bench_scheme()),
    )))
}

fn apply_line() -> String {
    record_line(&LogRecord::Apply(probe_program("Info")))
}

/// Write raw journal bytes durably (content + name).
fn write_raw(vfs: &Arc<dyn Vfs>, bytes: &[u8]) {
    let mut file = vfs.create_truncate(Path::new(JOURNAL)).expect("create");
    file.append(bytes).expect("append");
    file.sync_data().expect("sync");
    vfs.sync_parent_dir(Path::new(JOURNAL)).expect("dir sync");
}

#[test]
fn empty_journal_reports_missing_snapshot() {
    let (_vfs, arc) = fault_vfs(1);
    write_raw(&arc, b"");
    match Store::open_with_vfs(arc, JOURNAL) {
        Err(StoreError::MissingSnapshot) => {}
        other => panic!("expected MissingSnapshot, got {other:?}"),
    }
    assert_eq!(
        StoreError::MissingSnapshot.to_string(),
        "journal does not begin with a snapshot record"
    );
}

#[test]
fn journal_without_leading_snapshot_reports_missing_snapshot() {
    let (_vfs, arc) = fault_vfs(2);
    // Two records so the Apply is not a (tolerated) torn tail.
    write_raw(&arc, format!("{}{}", apply_line(), apply_line()).as_bytes());
    match Store::open_with_vfs(arc, JOURNAL) {
        Err(StoreError::MissingSnapshot) => {}
        other => panic!("expected MissingSnapshot, got {other:?}"),
    }
}

#[test]
fn unexpected_second_snapshot_is_corruption() {
    let (_vfs, arc) = fault_vfs(3);
    let text = format!("{}{}{}", snapshot_line(), snapshot_line(), apply_line());
    write_raw(&arc, text.as_bytes());
    match Store::open_with_vfs(arc, JOURNAL) {
        Err(StoreError::Corrupt { line, message }) => {
            assert_eq!(line, 2);
            assert!(message.contains("unexpected second snapshot"), "{message}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn corrupt_non_final_record_is_an_error_not_a_truncation() {
    let (_vfs, arc) = fault_vfs(4);
    let text = format!("{}not json\n{}", snapshot_line(), apply_line());
    write_raw(&arc, text.as_bytes());
    match Store::open_with_vfs(arc, JOURNAL) {
        Err(StoreError::Corrupt { line, .. }) => assert_eq!(line, 2),
        other => panic!("expected Corrupt at line 2, got {other:?}"),
    }
}

#[test]
fn torn_final_record_is_ignored_and_next_append_overwrites_cleanly() {
    let (vfs, arc) = fault_vfs(5);
    let committed = {
        let mut store =
            Store::create_with_vfs(Arc::clone(&arc), JOURNAL, bench_scheme()).expect("create");
        store.execute(&probe_program("Info")).expect("execute");
        store.instance().clone()
    };
    // Simulate a crash mid-append: a torn, unterminated record —
    // including the nasty case where the tear stops at a parseable
    // prefix (no trailing newline).
    let torn = apply_line();
    let mut file = arc.open_append(Path::new(JOURNAL)).expect("open");
    file.append(torn.trim_end().as_bytes()).expect("append");
    drop(file);
    let intact_len =
        vfs.live_contents(Path::new(JOURNAL)).unwrap().len() as u64 - torn.trim_end().len() as u64;

    let mut store = Store::open_with_vfs(Arc::clone(&arc), JOURNAL).expect("reopen");
    assert!(store.recovered_torn_tail());
    assert!(store.instance().isomorphic_to(&committed));
    // The torn bytes were truncated, so the next append starts on a
    // fresh line instead of concatenating onto the debris.
    assert_eq!(
        vfs.live_contents(Path::new(JOURNAL)).unwrap().len() as u64,
        intact_len
    );
    store
        .execute(&probe_program("Probe"))
        .expect("append after recovery");

    let reopened = Store::open_with_vfs(arc, JOURNAL).expect("reopen again");
    assert!(!reopened.recovered_torn_tail());
    assert_eq!(reopened.instance().label_count(&"Probe".into()), 1);
}

#[test]
fn fsync_failure_poisons_the_store_until_reopen() {
    let (vfs, arc) = fault_vfs(6);
    let mut store =
        Store::create_with_vfs(Arc::clone(&arc), JOURNAL, bench_scheme()).expect("create");
    store.execute(&probe_program("Info")).expect("execute");
    let committed = store.instance().clone();

    // Every subsequent fsync fails: the next append's durability is
    // unknowable.
    vfs.set_probabilities(0.0, 1.0, 0.0);
    match store.execute(&probe_program("Probe")) {
        Err(StoreError::Io(_)) => {}
        other => panic!("expected the append to fail, got {other:?}"),
    }
    // The in-memory state rolled back to the committed prefix…
    assert!(store.instance().isomorphic_to(&committed));
    // …and the store is poisoned: every further mutation is refused
    // with the documented error.
    assert!(store.poisoned().is_some());
    match store.execute(&probe_program("Probe")) {
        Err(err @ StoreError::Poisoned(_)) => {
            let message = err.to_string();
            assert!(message.contains("store is poisoned"), "{message}");
            assert!(
                message.contains("reopen the journal"),
                "the error must tell the user how to recover: {message}"
            );
        }
        other => panic!("expected Poisoned, got {other:?}"),
    }
    match store.checkpoint() {
        Err(StoreError::Poisoned(_)) => {}
        other => panic!("expected Poisoned checkpoint, got {other:?}"),
    }
    // Committed state stays readable while poisoned.
    assert_eq!(store.instance().label_count(&"Info".into()), 1);

    // Reopening resolves the ambiguity: the torn/unsynced record either
    // survived fully or is discarded — here it was written but never
    // synced, and the live file still holds it, so replay sees it.
    vfs.set_probabilities(0.0, 0.0, 0.0);
    drop(store);
    let recovered = Store::open_with_vfs(arc, JOURNAL).expect("reopen");
    assert!(recovered.poisoned().is_none());
    let plus_probe = {
        let mut db = committed.clone();
        let mut env = good_core::program::Env::with_fuel(good_core::program::DEFAULT_FUEL);
        probe_program("Probe").apply(&mut db, &mut env).unwrap();
        db
    };
    assert!(
        recovered.instance().isomorphic_to(&committed)
            || recovered.instance().isomorphic_to(&plus_probe),
        "recovery must land on the committed state or committed+ambiguous"
    );
}

#[test]
fn create_makes_the_journal_name_durable() {
    // Regression: without the parent-directory fsync in `create`, the
    // whole store vanishes on a crash right after creation.
    let (vfs, arc) = fault_vfs(7);
    Store::create_with_vfs(arc, JOURNAL, bench_scheme()).expect("create");
    let disk = vfs.reboot();
    let arc: Arc<dyn Vfs> = Arc::new(disk);
    let store = Store::open_with_vfs(arc, JOURNAL).expect("the journal must survive a reboot");
    assert_eq!(store.record_count(), 1);
}

#[test]
fn checkpoint_survives_a_reboot() {
    // Regression: without the parent-directory fsync after the rename,
    // a reboot resurrects the old journal and silently discards every
    // record appended after the checkpoint.
    let (vfs, arc) = fault_vfs(8);
    let mut store =
        Store::create_with_vfs(Arc::clone(&arc), JOURNAL, bench_scheme()).expect("create");
    for label in ["Info", "Probe", "Extra"] {
        store.execute(&probe_program(label)).expect("execute");
    }
    store.checkpoint().expect("checkpoint");
    store
        .execute(&probe_program("Late"))
        .expect("post-checkpoint append");
    let committed = store.instance().clone();
    drop(store);

    let disk = vfs.reboot();
    let arc: Arc<dyn Vfs> = Arc::new(disk);
    let recovered = Store::open_with_vfs(arc, JOURNAL).expect("reopen after reboot");
    assert!(recovered.instance().isomorphic_to(&committed));
    // Snapshot + the one post-checkpoint record.
    assert_eq!(recovered.record_count(), 2);
}

#[test]
fn checkpoint_rename_failure_leaves_the_store_usable() {
    let (vfs, arc) = fault_vfs(9);
    let mut store =
        Store::create_with_vfs(Arc::clone(&arc), JOURNAL, bench_scheme()).expect("create");
    store.execute(&probe_program("Info")).expect("execute");

    vfs.set_probabilities(0.0, 0.0, 1.0);
    match store.checkpoint() {
        Err(StoreError::Io(err)) => {
            assert!(err.to_string().contains("rename failure"), "{err}")
        }
        other => panic!("expected the rename to fail, got {other:?}"),
    }
    // Failure before the rename landed: the old journal is intact and
    // the store keeps working without a reopen.
    assert!(store.poisoned().is_none());
    vfs.set_probabilities(0.0, 0.0, 0.0);
    store
        .execute(&probe_program("Probe"))
        .expect("execute after failed checkpoint");

    drop(store);
    let reopened = Store::open_with_vfs(arc, JOURNAL).expect("reopen");
    assert_eq!(reopened.instance().label_count(&"Probe".into()), 1);
}

#[test]
fn dir_fsync_failure_after_checkpoint_rename_poisons() {
    // Find which operation index the checkpoint's dir-fsync lands on by
    // running the same deterministic sequence fault-free first.
    let run = |crash_at: Option<u64>| {
        let plan = match crash_at {
            Some(op) => FaultPlan::crash_at(10, op),
            None => FaultPlan::reliable(10),
        };
        let vfs = FaultVfs::new(plan);
        let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
        let mut store =
            Store::create_with_vfs(Arc::clone(&arc), JOURNAL, bench_scheme()).expect("create");
        store.execute(&probe_program("Info")).expect("execute");
        let result = store.checkpoint();
        (vfs, store, result)
    };
    let (vfs, _store, result) = run(None);
    result.expect("fault-free checkpoint");
    let rename_op: u64 = vfs
        .fault_log()
        .iter()
        .find_map(|line| {
            let (op, rest) = line.strip_prefix("op ")?.split_once(':')?;
            rest.contains(" rename ").then(|| op.parse().unwrap())
        })
        .expect("checkpoint renames");

    // Crash exactly on the directory fsync that follows the rename: the
    // new journal is in place but its name is not durable, so the store
    // must refuse to keep appending.
    let (_vfs, store, result) = run(Some(rename_op + 1));
    match result {
        Err(StoreError::Io(_)) => {}
        other => panic!("expected the dir fsync to fail, got {other:?}"),
    }
    let reason = store.poisoned().expect("store must be poisoned");
    assert!(reason.contains("checkpoint rename not durable"), "{reason}");
}
