//! Trace capture over the store and torture harness.
//!
//! The recorder is process-global, so these tests serialize on a local
//! lock; concurrent spans from other tests in this binary can only add
//! records, never violate the per-thread ordering asserted here.

use good_store::torture::{crash_schedule, TortureConfig};
use std::sync::{Arc, Mutex};

/// Serialize tests that install the global recorder.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Assert the span list is chronologically ordered within each thread
/// when visited in `(thread, seq)` order — the shape a crash-schedule
/// timeline must have to be readable as "what I/O preceded the crash".
fn assert_per_thread_chronological(spans: &[good_trace::Span]) {
    let mut last: Option<(u64, u64, u64)> = None;
    for span in spans {
        if let Some((thread, seq, start_ns)) = last {
            if span.thread == thread {
                assert!(span.seq > seq, "seq must increase within a thread");
                assert!(
                    span.start_ns >= start_ns,
                    "span {} opened before its predecessor on thread {thread}",
                    span.name
                );
            }
        }
        last = Some((span.thread, span.seq, span.start_ns));
    }
}

#[test]
fn crash_schedule_emits_store_span_timeline() {
    let _guard = lock();
    let collector = Arc::new(good_trace::Collector::new());
    let previous = good_trace::swap_recorder(Some(collector.clone()));
    let config = TortureConfig {
        seed: 7,
        programs: 6,
        checkpoint_every: 3,
    };
    let result = crash_schedule(&config, 9);
    good_trace::swap_recorder(previous);
    let outcome = result.unwrap_or_else(|failure| panic!("{failure}"));
    assert!(!outcome.fault_log.is_empty());

    let spans = collector.take();
    assert!(!spans.is_empty(), "crash schedule produced no spans");
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "store/append",
        "store/fsync",
        "store/execute",
        "store/recovery",
    ] {
        assert!(
            names.contains(&expected),
            "timeline lacks {expected}; got {names:?}"
        );
    }
    assert_per_thread_chronological(&spans);
}

/// Nightly: a full-size crash schedule with trace capture. The captured
/// timeline must be non-empty, cover the store category, and read
/// chronologically per thread, so a failing schedule's trace can be
/// lined up against its fault log.
#[test]
#[ignore = "nightly: crash schedule with trace capture via --ignored"]
fn nightly_crash_schedule_emits_ordered_trace_timeline() {
    let _guard = lock();
    let collector = Arc::new(good_trace::Collector::new());
    let previous = good_trace::swap_recorder(Some(collector.clone()));
    let config = TortureConfig::default();
    let result = crash_schedule(&config, 25);
    good_trace::swap_recorder(previous);
    let outcome = result.unwrap_or_else(|failure| panic!("{failure}"));

    let spans = collector.take();
    assert!(!spans.is_empty(), "no spans captured");
    assert!(
        spans.iter().any(|s| s.cat == "store"),
        "store category missing from the timeline"
    );
    assert_per_thread_chronological(&spans);
    // The timeline must cover both the pre-crash workload (appends)
    // and the post-reboot recovery scan.
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"store/append"), "{names:?}");
    assert!(names.contains(&"store/recovery"), "{names:?}");
    println!(
        "captured {} spans across crash schedule (acked {}, attempted {})",
        spans.len(),
        outcome.acked,
        outcome.attempted
    );
}
