//! Persistent ordered maps and sets for the instance's secondary
//! indexes.
//!
//! [`PMap`] is an `Arc`-chunked B-tree in the "maxes array" style: a
//! branch holds its children plus the maximum key of each child, so
//! lookups binary-search the maxes and descend. All nodes sit behind
//! `Arc`s and every write goes through [`Arc::make_mut`], so
//!
//! * `clone()` is one `Arc` bump (the substrate of O(delta) snapshot
//!   publishes — see `crate::snapshot`),
//! * a write path-copies only the O(log n) nodes from the root to the
//!   touched leaf, and copies nothing at all when the map is unshared.
//!
//! Deletion removes entries (and empty nodes) without rebalancing:
//! separator maxes stay valid upper bounds, so search correctness is
//! unaffected, and tree height only ever grows via root splits, so the
//! O(log n) bound survives. Indexes here shrink rarely (GOOD deletions
//! are typically followed by more insertions), so the occasional sparse
//! node is a fine trade for simpler path-copying.
//!
//! [`PSet`] is a thin wrapper over `PMap<T, ()>` mirroring the
//! `BTreeSet` surface the matcher probes. Both serialize exactly like
//! their `std` counterparts (`BTreeMap` → JSON object, `BTreeSet` →
//! JSON array), keeping on-disk artifacts format-identical.
//!
//! Std-only by design, like `good_graph::pvec` (the persistent-structure
//! crates are unavailable offline; the needed subset is small).

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// Maximum entries in a leaf / children in a branch before splitting.
/// 32-wide nodes keep the tree at depth ≤ 4 for a million keys while
/// keeping path copies small (a split copies at most 32 entries), and
/// make iteration mostly contiguous slice walks.
const MAX: usize = 32;

#[derive(Debug, Clone)]
enum MNode<K, V> {
    Leaf {
        keys: Vec<K>,
        vals: Vec<V>,
    },
    Branch {
        /// `maxes[i]` is an upper bound for every key in `children[i]`
        /// and a strict lower bound for every key in `children[i + 1]`.
        maxes: Vec<K>,
        children: Vec<Arc<MNode<K, V>>>,
    },
}

/// Result of a recursive insert: the displaced value (if the key was
/// present) and, on overflow, the split-off right sibling as
/// `(left_max, right_max, right_node)`.
type Displaced<K, V> = (Option<V>, Option<(K, K, Arc<MNode<K, V>>)>);

/// A persistent ordered map: `clone` is O(1), reads and writes are
/// O(log n), writes path-copy only shared nodes.
///
/// ```
/// use good_core::persist::PMap;
///
/// let mut m: PMap<u32, &str> = PMap::new();
/// for i in 0..100 {
///     m.insert(i, "x");
/// }
/// let snapshot = m.clone(); // one Arc bump
/// m.insert(17, "y");
/// assert_eq!(snapshot.get(&17), Some(&"x"));
/// assert_eq!(m.get(&17), Some(&"y"));
/// ```
#[derive(Clone)]
pub struct PMap<K, V> {
    root: Option<Arc<MNode<K, V>>>,
    len: usize,
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        PMap::new()
    }
}

impl<K, V> PMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        PMap { root: None, len: 0 }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut iter = Iter {
            stack: [None; MAX_HEIGHT],
            depth: 0,
            keys: [].iter(),
            vals: [].iter(),
        };
        if let Some(root) = &self.root {
            iter.stack[0] = Some((root.as_ref(), 0));
            iter.depth = 1;
        }
        iter
    }

    /// Iterate over keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterate over values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

impl<K: Ord, V> PMap<K, V> {
    /// Shared access to the value for `key`.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut node = self.root.as_deref()?;
        loop {
            match node {
                MNode::Leaf { keys, vals } => {
                    let i = keys.binary_search_by(|k| k.borrow().cmp(key)).ok()?;
                    return Some(&vals[i]);
                }
                MNode::Branch { maxes, children } => {
                    let i = maxes.partition_point(|m| m.borrow() < key);
                    node = children.get(i)?.as_ref();
                }
            }
        }
    }

    /// True if `key` has an entry.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.get(key).is_some()
    }
}

impl<K: Ord + Clone, V: Clone> PMap<K, V> {
    /// Insert `key → value`, returning the previous value if any.
    /// Path-copies shared nodes; splits full ones on the way back up.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.root.as_mut() {
            None => {
                self.root = Some(Arc::new(MNode::Leaf {
                    keys: vec![key],
                    vals: vec![value],
                }));
                self.len = 1;
                None
            }
            Some(root) => {
                let (displaced, split) = Self::insert_rec(root, key, value);
                if let Some((left_max, right_max, right)) = split {
                    let old = self.root.take().expect("non-empty");
                    self.root = Some(Arc::new(MNode::Branch {
                        maxes: vec![left_max, right_max],
                        children: vec![old, right],
                    }));
                }
                if displaced.is_none() {
                    self.len += 1;
                }
                displaced
            }
        }
    }

    fn insert_rec(node: &mut Arc<MNode<K, V>>, key: K, value: V) -> Displaced<K, V> {
        match Arc::make_mut(node) {
            MNode::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => (Some(std::mem::replace(&mut vals[i], value)), None),
                Err(i) => {
                    keys.insert(i, key);
                    vals.insert(i, value);
                    if keys.len() > MAX {
                        let half = keys.len() / 2;
                        let right_keys = keys.split_off(half);
                        let right_vals = vals.split_off(half);
                        let left_max = keys.last().expect("non-empty half").clone();
                        let right_max = right_keys.last().expect("non-empty half").clone();
                        let right = Arc::new(MNode::Leaf {
                            keys: right_keys,
                            vals: right_vals,
                        });
                        (None, Some((left_max, right_max, right)))
                    } else {
                        (None, None)
                    }
                }
            },
            MNode::Branch { maxes, children } => {
                let mut i = maxes.partition_point(|m| *m < key);
                if i == children.len() {
                    // Larger than everything: goes into the last child,
                    // whose recorded max grows to match.
                    i -= 1;
                    maxes[i] = key.clone();
                }
                let (displaced, split) = Self::insert_rec(&mut children[i], key, value);
                if let Some((left_max, right_max, right)) = split {
                    maxes[i] = left_max;
                    maxes.insert(i + 1, right_max);
                    children.insert(i + 1, right);
                    if children.len() > MAX {
                        let half = children.len() / 2;
                        let right_children = children.split_off(half);
                        let right_maxes = maxes.split_off(half);
                        let left_max = maxes.last().expect("non-empty half").clone();
                        let right_max = right_maxes.last().expect("non-empty half").clone();
                        let right = Arc::new(MNode::Branch {
                            maxes: right_maxes,
                            children: right_children,
                        });
                        return (displaced, Some((left_max, right_max, right)));
                    }
                }
                (displaced, None)
            }
        }
    }

    /// Mutable access to the value for `key`, path-copying shared nodes
    /// on the way down.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        fn descend<'a, K, V, Q>(node: &'a mut Arc<MNode<K, V>>, key: &Q) -> Option<&'a mut V>
        where
            K: Ord + Clone + Borrow<Q>,
            V: Clone,
            Q: Ord + ?Sized,
        {
            match Arc::make_mut(node) {
                MNode::Leaf { keys, vals } => {
                    let i = keys.binary_search_by(|k| k.borrow().cmp(key)).ok()?;
                    Some(&mut vals[i])
                }
                MNode::Branch { maxes, children } => {
                    let i = maxes.partition_point(|m| m.borrow() < key);
                    descend(children.get_mut(i)?, key)
                }
            }
        }
        descend(self.root.as_mut()?, key)
    }

    /// Remove the entry for `key`, returning its value if present.
    /// Empty nodes are unlinked; no rebalancing (see module docs).
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        fn remove_rec<K, V, Q>(node: &mut Arc<MNode<K, V>>, key: &Q) -> (Option<V>, bool)
        where
            K: Ord + Clone + Borrow<Q>,
            V: Clone,
            Q: Ord + ?Sized,
        {
            match Arc::make_mut(node) {
                MNode::Leaf { keys, vals } => {
                    match keys.binary_search_by(|k| k.borrow().cmp(key)) {
                        Ok(i) => {
                            keys.remove(i);
                            let value = vals.remove(i);
                            (Some(value), keys.is_empty())
                        }
                        Err(_) => (None, false),
                    }
                }
                MNode::Branch { maxes, children } => {
                    let i = maxes.partition_point(|m| m.borrow() < key);
                    let Some(child) = children.get_mut(i) else {
                        return (None, false);
                    };
                    let (removed, child_empty) = remove_rec(child, key);
                    if child_empty {
                        children.remove(i);
                        maxes.remove(i);
                    }
                    (removed, children.is_empty())
                }
            }
        }
        let root = self.root.as_mut()?;
        let (removed, root_empty) = remove_rec(root, key);
        if removed.is_some() {
            self.len -= 1;
            if root_empty {
                self.root = None;
            } else {
                // Collapse single-child root chains so height tracks the
                // live key count.
                while let Some(MNode::Branch { children, .. }) = self.root.as_deref() {
                    if children.len() != 1 {
                        break;
                    }
                    let only = children[0].clone();
                    self.root = Some(only);
                }
            }
        }
        removed
    }

    /// The value for `key`, inserting `default()` first if absent.
    pub fn get_or_insert_with(&mut self, key: &K, default: impl FnOnce() -> V) -> &mut V {
        if !self.contains_key(key) {
            self.insert(key.clone(), default());
        }
        self.get_mut(key).expect("just ensured present")
    }
}

impl<K, V> PMap<K, V> {
    /// Approximate heap footprint in bytes, counting every node once
    /// (shared nodes are not deduplicated). Feeds MVCC retention.
    pub fn approx_bytes(&self) -> usize {
        fn node_bytes<K, V>(node: &MNode<K, V>) -> usize {
            match node {
                MNode::Leaf { keys, vals } => {
                    keys.capacity() * std::mem::size_of::<K>()
                        + vals.capacity() * std::mem::size_of::<V>()
                        + 48
                }
                MNode::Branch { maxes, children } => {
                    maxes.capacity() * std::mem::size_of::<K>()
                        + children.capacity() * std::mem::size_of::<usize>()
                        + 48
                        + children.iter().map(|c| node_bytes(c)).sum::<usize>()
                }
            }
        }
        self.root.as_ref().map_or(0, |root| node_bytes(root))
    }
}

/// Upper bound on the descent depth an iterator can see. Height grows
/// only on root splits, and every node holds at least `MAX / 2 = 16`
/// entries when created — reaching height 12 therefore requires on the
/// order of `16^11 ≈ 10¹³` historic insertions, far past anything the
/// arena's `u32` node ids can address. Kept small deliberately: the
/// iterator lives on the stack of matcher hot loops, so its
/// zero-initialization cost matters.
const MAX_HEIGHT: usize = 12;

/// Iterator over a [`PMap`] in key order, chunked by leaf.
///
/// The descent stack is a fixed inline array (see [`MAX_HEIGHT`]):
/// creating and draining an iterator never heap-allocates, which keeps
/// index probes in the matcher's hot loop allocation-free.
pub struct Iter<'m, K, V> {
    stack: [Option<(&'m MNode<K, V>, usize)>; MAX_HEIGHT],
    depth: usize,
    keys: std::slice::Iter<'m, K>,
    vals: std::slice::Iter<'m, V>,
}

impl<'m, K, V> Iterator for Iter<'m, K, V> {
    type Item = (&'m K, &'m V);

    fn next(&mut self) -> Option<(&'m K, &'m V)> {
        loop {
            if let Some(key) = self.keys.next() {
                let val = self.vals.next().expect("keys and vals zip");
                return Some((key, val));
            }
            if self.depth == 0 {
                return None;
            }
            self.depth -= 1;
            let (node, child) = self.stack[self.depth].take().expect("frame below depth");
            match node {
                MNode::Leaf { keys, vals } => {
                    self.keys = keys.iter();
                    self.vals = vals.iter();
                }
                MNode::Branch { children, .. } => {
                    if let Some(next) = children.get(child) {
                        self.stack[self.depth] = Some((node, child + 1));
                        self.stack[self.depth + 1] = Some((next.as_ref(), 0));
                        self.depth += 2;
                    }
                }
            }
        }
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord + Clone, V: Clone> FromIterator<(K, V)> for PMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = PMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<K: PartialEq, V: PartialEq> PartialEq for PMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<K: Eq, V: Eq> Eq for PMap<K, V> {}

/// Serializes exactly like a `BTreeMap` (entries in key order).
impl<K: Serialize, V: Serialize> Serialize for PMap<K, V> {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord + Clone, V: Deserialize + Clone> Deserialize for PMap<K, V> {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        match content {
            serde::Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(serde::Error::custom(format!(
                "invalid type: expected map, found {}",
                other.kind()
            ))),
        }
    }
}

/// A persistent ordered set: `clone` is O(1), membership and updates
/// are O(log n) with path copying. A thin wrapper over [`PMap<T, ()>`]
/// mirroring the `BTreeSet` probes the matcher uses.
#[derive(Clone)]
pub struct PSet<T> {
    map: PMap<T, ()>,
}

impl<T> Default for PSet<T> {
    fn default() -> Self {
        PSet::new()
    }
}

impl<T> PSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        PSet { map: PMap::new() }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.map.keys()
    }

    /// Approximate heap footprint in bytes (unshared size).
    pub fn approx_bytes(&self) -> usize {
        self.map.approx_bytes()
    }
}

impl<T: Ord> PSet<T> {
    /// True if `value` is in the set.
    pub fn contains<Q>(&self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.map.contains_key(value)
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<&T> {
        self.map.iter().next().map(|(k, ())| k)
    }
}

impl<T: Ord + Clone> PSet<T> {
    /// Insert `value`; returns true if it was newly added.
    pub fn insert(&mut self, value: T) -> bool {
        self.map.insert(value, ()).is_none()
    }

    /// Remove `value`; returns true if it was present.
    pub fn remove<Q>(&mut self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.map.remove(value).is_some()
    }
}

impl<T: fmt::Debug> fmt::Debug for PSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<T: Ord + Clone> FromIterator<T> for PSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        PSet {
            map: iter.into_iter().map(|v| (v, ())).collect(),
        }
    }
}

impl<T: PartialEq> PartialEq for PSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.map == other.map
    }
}

impl<T: Eq> Eq for PSet<T> {}

/// Serializes exactly like a `BTreeSet` (a sorted sequence).
impl<T: Serialize> Serialize for PSet<T> {
    fn to_content(&self) -> serde::Content {
        serde::Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord + Clone> Deserialize for PSet<T> {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        match content {
            serde::Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(serde::Error::custom(format!(
                "invalid type: expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

/// An `Arc`-shared hash map for the *outer*, scheme-bounded levels of
/// the instance indexes (label → inner structure).
///
/// [`PMap`] pays an ordered descent — several key comparisons — on
/// every probe, which the matcher's innermost loops feel when keys are
/// labels (string compares). The outer index levels hold one entry per
/// *label*: a handful, bounded by the scheme, independent of instance
/// size. So they keep plain `HashMap` probe speed, and cloning stays
/// O(1) by sharing the whole table behind one `Arc`. The first write
/// after a clone copies the table via [`Arc::make_mut`] — O(#labels)
/// entry clones, and the inner values are themselves persistent
/// structures whose clone is an `Arc` bump — so the O(delta) publish
/// story (see `crate::snapshot`) is unchanged.
///
/// Iteration order is the hash map's (arbitrary): never let it reach
/// rendered or serialized output. The instance only iterates these
/// maps for order-insensitive audits and byte accounting.
#[derive(Debug, Clone)]
pub struct SharedMap<K, V> {
    inner: Arc<std::collections::HashMap<K, V>>,
}

impl<K, V> Default for SharedMap<K, V> {
    fn default() -> Self {
        SharedMap::new()
    }
}

impl<K, V> SharedMap<K, V> {
    /// Create an empty map.
    pub fn new() -> Self {
        SharedMap {
            inner: Arc::new(std::collections::HashMap::new()),
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if the map has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate over `(&key, &value)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.inner.iter()
    }

    /// Iterate over values in arbitrary order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.inner.values()
    }

    /// Approximate heap footprint of the table itself in bytes (the
    /// values' own heap data is the caller's to add).
    pub fn approx_bytes(&self) -> usize {
        self.inner.capacity() * (std::mem::size_of::<K>() + std::mem::size_of::<V>() + 8) + 48
    }
}

impl<K: Eq + std::hash::Hash, V> SharedMap<K, V> {
    /// Shared access to the value under `key`.
    #[inline]
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + std::hash::Hash + ?Sized,
    {
        self.inner.get(key)
    }
}

impl<K: Eq + std::hash::Hash + Clone, V: Clone> SharedMap<K, V> {
    /// Mutable access to the value under `key`, copying the table if
    /// it is shared.
    #[inline]
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Eq + std::hash::Hash + ?Sized,
    {
        Arc::make_mut(&mut self.inner).get_mut(key)
    }

    /// Mutable access to the value under `key`, inserting
    /// `default()` first if absent. The key is cloned only on insert.
    pub fn get_or_insert_with(&mut self, key: &K, default: impl FnOnce() -> V) -> &mut V {
        let inner = Arc::make_mut(&mut self.inner);
        if !inner.contains_key(key) {
            inner.insert(key.clone(), default());
        }
        inner.get_mut(key).expect("just ensured present")
    }

    /// Remove and return the value under `key`.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Eq + std::hash::Hash + ?Sized,
    {
        Arc::make_mut(&mut self.inner).remove(key)
    }
}

impl<K: Eq + std::hash::Hash + Clone, V: Clone> FromIterator<(K, V)> for SharedMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        SharedMap {
            inner: Arc::new(iter.into_iter().collect()),
        }
    }
}

impl<K: Eq + std::hash::Hash, V: PartialEq> PartialEq for SharedMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl<K: Eq + std::hash::Hash, V: Eq> Eq for SharedMap<K, V> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_roundtrip_ordered() {
        let mut m = PMap::new();
        // Insert in a scrambled order that exercises splits.
        for i in 0..2_000u32 {
            let key = (i * 7919) % 2_000;
            m.insert(key, key * 10);
        }
        assert_eq!(m.len(), 2_000);
        for i in 0..2_000 {
            assert_eq!(m.get(&i), Some(&(i * 10)));
        }
        let keys: Vec<u32> = m.keys().copied().collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(keys.len(), 2_000);
    }

    #[test]
    fn insert_replaces_and_reports_displaced() {
        let mut m = PMap::new();
        assert_eq!(m.insert("k", 1), None);
        assert_eq!(m.insert("k", 2), Some(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("k"), Some(&2));
    }

    #[test]
    fn remove_matches_btreemap_under_random_workload() {
        let mut ours = PMap::new();
        let mut reference = BTreeMap::new();
        let mut state = 0x243F_6A88u64;
        for _ in 0..4_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) as u32 % 512;
            if state & 4 == 0 {
                assert_eq!(ours.remove(&key), reference.remove(&key));
            } else {
                assert_eq!(ours.insert(key, state), reference.insert(key, state));
            }
            assert_eq!(ours.len(), reference.len());
        }
        let flat: Vec<_> = ours.iter().map(|(k, v)| (*k, *v)).collect();
        let expect: Vec<_> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(flat, expect);
        for key in 0..512u32 {
            assert_eq!(ours.get(&key), reference.get(&key));
        }
    }

    #[test]
    fn clone_shares_until_written() {
        let mut m: PMap<u32, u32> = (0..1_000).map(|i| (i, i)).collect();
        let snapshot = m.clone();
        m.insert(17, 999);
        m.remove(&400);
        assert_eq!(snapshot.get(&17), Some(&17));
        assert_eq!(snapshot.get(&400), Some(&400));
        assert_eq!(snapshot.len(), 1_000);
        assert_eq!(m.get(&17), Some(&999));
        assert_eq!(m.len(), 999);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut m: PMap<u32, u32> = (0..100).map(|i| (i, i)).collect();
        let snapshot = m.clone();
        *m.get_mut(&50).unwrap() += 1_000;
        assert_eq!(m.get(&50), Some(&1_050));
        assert_eq!(snapshot.get(&50), Some(&50));
        assert!(m.get_mut(&200).is_none());
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut m: PMap<u32, Vec<u32>> = PMap::new();
        m.get_or_insert_with(&1, Vec::new).push(10);
        m.get_or_insert_with(&1, Vec::new).push(11);
        assert_eq!(m.get(&1), Some(&vec![10, 11]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn borrowed_key_lookup() {
        let mut m: PMap<String, u32> = PMap::new();
        m.insert("alpha".to_string(), 1);
        m.insert("beta".to_string(), 2);
        assert_eq!(m.get("alpha"), Some(&1));
        assert!(m.contains_key("beta"));
        assert_eq!(m.remove("alpha"), Some(1));
        assert_eq!(m.get("alpha"), None);
    }

    #[test]
    fn pset_mirrors_btreeset() {
        let mut s = PSet::new();
        assert!(s.insert(3));
        assert!(s.insert(1));
        assert!(!s.insert(3));
        assert!(s.contains(&1));
        assert_eq!(s.first(), Some(&1));
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![1, 3]);
        assert!(s.remove(&1));
        assert!(!s.remove(&1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn serde_matches_std_formats() {
        let m: PMap<String, u32> = [("a".to_string(), 1), ("b".to_string(), 2)]
            .into_iter()
            .collect();
        let std_m: BTreeMap<String, u32> = [("a".to_string(), 1), ("b".to_string(), 2)]
            .into_iter()
            .collect();
        assert_eq!(
            serde_json::to_string(&m).unwrap(),
            serde_json::to_string(&std_m).unwrap()
        );
        let back: PMap<String, u32> =
            serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(back, m);

        let s: PSet<u32> = [3, 1, 2].into_iter().collect();
        assert_eq!(serde_json::to_string(&s).unwrap(), "[1,2,3]");
    }

    #[test]
    fn deep_workload_after_clone_keeps_snapshot_frozen() {
        let mut m: PMap<u32, u32> = (0..5_000).map(|i| (i, i)).collect();
        let snapshot = m.clone();
        for i in 0..5_000 {
            m.remove(&i);
        }
        assert!(m.is_empty());
        assert_eq!(snapshot.len(), 5_000);
        assert_eq!(snapshot.iter().count(), 5_000);
    }

    #[test]
    fn shared_map_clone_is_isolated_from_writes() {
        let mut m: SharedMap<String, u32> = SharedMap::new();
        *m.get_or_insert_with(&"a".to_string(), || 0) = 1;
        *m.get_or_insert_with(&"b".to_string(), || 0) = 2;
        let snapshot = m.clone();
        *m.get_mut("a").unwrap() = 10;
        m.remove("b");
        *m.get_or_insert_with(&"c".to_string(), || 3) += 1;
        assert_eq!(snapshot.get("a"), Some(&1));
        assert_eq!(snapshot.get("b"), Some(&2));
        assert_eq!(snapshot.get("c"), None);
        assert_eq!(m.get("a"), Some(&10));
        assert_eq!(m.get("b"), None);
        assert_eq!(m.get("c"), Some(&4));
        assert_eq!(snapshot.len(), 2);
        assert_eq!(m.len(), 2);
        assert_ne!(m, snapshot);
    }
}
