//! Labeled graph isomorphism.
//!
//! GOOD's operations are "deterministic up to the particular choice of
//! new objects" (Section 3 of the paper): two runs of the same program
//! produce instances that differ only in node identity. The test suites
//! therefore compare results with a *labeled isomorphism* check rather
//! than by id equality.
//!
//! The checker is a VF2-flavoured backtracking search with the usual
//! pruning (label multisets, degree profiles, incremental adjacency
//! consistency). It is exact and complete; the instances compared in
//! tests are small enough that worst-case behaviour is irrelevant, and
//! printable values give most nodes a unique key anyway.

use crate::graph::{Graph, NodeId};
use std::collections::HashMap;
use std::hash::Hash;

/// A multiset of edge keys between one ordered pair of nodes.
fn edge_keys_between<N, E, L: Ord>(
    graph: &Graph<N, E>,
    src: NodeId,
    dst: NodeId,
    edge_key: &impl Fn(&E) -> L,
) -> Vec<L> {
    let mut keys: Vec<L> = graph
        .out_edges(src)
        .filter(|edge| edge.dst == dst)
        .map(|edge| edge_key(edge.payload))
        .collect();
    keys.sort();
    keys
}

/// Find a label- and edge-preserving bijection from `g1` to `g2`, if one
/// exists.
///
/// `node_key` and `edge_key` extract comparison keys from payloads; two
/// nodes (edges) may correspond only if their keys are equal. Returns a
/// map from `g1` node ids to `g2` node ids.
pub fn find_isomorphism<N1, E1, N2, E2, K, L>(
    g1: &Graph<N1, E1>,
    g2: &Graph<N2, E2>,
    node_key1: impl Fn(&N1) -> K,
    node_key2: impl Fn(&N2) -> K,
    edge_key1: impl Fn(&E1) -> L,
    edge_key2: impl Fn(&E2) -> L,
) -> Option<HashMap<NodeId, NodeId>>
where
    K: Eq + Hash + Ord + Clone,
    L: Eq + Hash + Ord + Clone,
{
    if g1.node_count() != g2.node_count() || g1.edge_count() != g2.edge_count() {
        return None;
    }

    // Quick rejection: multiset of (node key, out-degree, in-degree)
    // profiles must coincide.
    let mut profile1: Vec<(K, usize, usize)> = g1
        .nodes()
        .map(|n| (node_key1(n.payload), n.out_degree, n.in_degree))
        .collect();
    let mut profile2: Vec<(K, usize, usize)> = g2
        .nodes()
        .map(|n| (node_key2(n.payload), n.out_degree, n.in_degree))
        .collect();
    profile1.sort();
    profile2.sort();
    if profile1 != profile2 {
        return None;
    }

    // Candidate sets per g1 node: same key and degree profile.
    let nodes1: Vec<NodeId> = g1.node_ids().collect();
    let mut candidates: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &u in &nodes1 {
        let uref = g1.node_ref(u).expect("live");
        let key = node_key1(uref.payload);
        let cands: Vec<NodeId> = g2
            .nodes()
            .filter(|v| {
                node_key2(v.payload) == key
                    && v.out_degree == uref.out_degree
                    && v.in_degree == uref.in_degree
            })
            .map(|v| v.id)
            .collect();
        if cands.is_empty() {
            return None;
        }
        candidates.insert(u, cands);
    }

    // Order g1 nodes: fewest candidates first, then highest degree —
    // most-constrained-variable heuristic.
    let mut order = nodes1.clone();
    order.sort_by_key(|u| {
        let degree = g1.out_degree(*u) + g1.in_degree(*u);
        (candidates[u].len(), usize::MAX - degree)
    });

    struct Search<'a, N1, E1, N2, E2, EK1, EK2> {
        g1: &'a Graph<N1, E1>,
        g2: &'a Graph<N2, E2>,
        edge_key1: EK1,
        edge_key2: EK2,
        order: Vec<NodeId>,
        candidates: HashMap<NodeId, Vec<NodeId>>,
        forward: HashMap<NodeId, NodeId>,
        reverse: HashMap<NodeId, NodeId>,
    }

    impl<'a, N1, E1, N2, E2, EK1, EK2, L> Search<'a, N1, E1, N2, E2, EK1, EK2>
    where
        EK1: Fn(&E1) -> L,
        EK2: Fn(&E2) -> L,
        L: Ord + Clone,
    {
        fn consistent(&self, u: NodeId, v: NodeId) -> bool {
            // Self-loops.
            if edge_keys_between(self.g1, u, u, &self.edge_key1)
                != edge_keys_between(self.g2, v, v, &self.edge_key2)
            {
                return false;
            }
            // Edges between u and every already-mapped node must agree
            // in both directions, as label multisets.
            for (&w, &mw) in &self.forward {
                if edge_keys_between(self.g1, u, w, &self.edge_key1)
                    != edge_keys_between(self.g2, v, mw, &self.edge_key2)
                {
                    return false;
                }
                if edge_keys_between(self.g1, w, u, &self.edge_key1)
                    != edge_keys_between(self.g2, mw, v, &self.edge_key2)
                {
                    return false;
                }
            }
            true
        }

        fn solve(&mut self, depth: usize) -> bool {
            if depth == self.order.len() {
                return true;
            }
            let u = self.order[depth];
            let cands = self.candidates[&u].clone();
            for v in cands {
                if self.reverse.contains_key(&v) || !self.consistent(u, v) {
                    continue;
                }
                self.forward.insert(u, v);
                self.reverse.insert(v, u);
                if self.solve(depth + 1) {
                    return true;
                }
                self.forward.remove(&u);
                self.reverse.remove(&v);
            }
            false
        }
    }

    let mut search = Search {
        g1,
        g2,
        edge_key1,
        edge_key2,
        order,
        candidates,
        forward: HashMap::new(),
        reverse: HashMap::new(),
    };
    search.solve(0).then_some(search.forward)
}

/// Convenience wrapper: are the two graphs isomorphic under the given
/// key extractors?
pub fn isomorphic<N1, E1, N2, E2, K, L>(
    g1: &Graph<N1, E1>,
    g2: &Graph<N2, E2>,
    node_key1: impl Fn(&N1) -> K,
    node_key2: impl Fn(&N2) -> K,
    edge_key1: impl Fn(&E1) -> L,
    edge_key2: impl Fn(&E2) -> L,
) -> bool
where
    K: Eq + Hash + Ord + Clone,
    L: Eq + Hash + Ord + Clone,
{
    find_isomorphism(g1, g2, node_key1, node_key2, edge_key1, edge_key2).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    type G = Graph<&'static str, &'static str>;

    fn same(a: &G, b: &G) -> bool {
        isomorphic(a, b, |n| *n, |n| *n, |e| *e, |e| *e)
    }

    fn triangle(labels: [&'static str; 3]) -> G {
        let mut g = Graph::new();
        let a = g.add_node(labels[0]);
        let b = g.add_node(labels[1]);
        let c = g.add_node(labels[2]);
        g.add_edge(a, b, "x");
        g.add_edge(b, c, "x");
        g.add_edge(c, a, "x");
        g
    }

    #[test]
    fn identical_graphs_are_isomorphic() {
        let g = triangle(["a", "b", "c"]);
        assert!(same(&g, &g.clone()));
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let g1 = triangle(["a", "b", "c"]);
        let mut g2 = Graph::new();
        let c = g2.add_node("c");
        let a = g2.add_node("a");
        let b = g2.add_node("b");
        g2.add_edge(a, b, "x");
        g2.add_edge(b, c, "x");
        g2.add_edge(c, a, "x");
        let mapping = find_isomorphism(&g1, &g2, |n| *n, |n| *n, |e| *e, |e| *e).unwrap();
        assert_eq!(mapping.len(), 3);
    }

    #[test]
    fn node_labels_distinguish() {
        let g1 = triangle(["a", "b", "c"]);
        let g2 = triangle(["a", "b", "d"]);
        assert!(!same(&g1, &g2));
    }

    #[test]
    fn edge_labels_distinguish() {
        let mut g1: G = Graph::new();
        let a = g1.add_node("a");
        let b = g1.add_node("b");
        g1.add_edge(a, b, "x");
        let mut g2: G = Graph::new();
        let a2 = g2.add_node("a");
        let b2 = g2.add_node("b");
        g2.add_edge(a2, b2, "y");
        assert!(!same(&g1, &g2));
    }

    #[test]
    fn edge_direction_distinguishes() {
        let mut g1: G = Graph::new();
        let a = g1.add_node("a");
        let b = g1.add_node("b");
        g1.add_edge(a, b, "x");
        let mut g2: G = Graph::new();
        let a2 = g2.add_node("a");
        let b2 = g2.add_node("b");
        g2.add_edge(b2, a2, "x");
        assert!(!same(&g1, &g2));
    }

    #[test]
    fn parallel_edge_multiplicity_distinguishes() {
        let mut g1: G = Graph::new();
        let a = g1.add_node("a");
        let b = g1.add_node("b");
        g1.add_edge(a, b, "x");
        g1.add_edge(a, b, "x");
        let mut g2: G = Graph::new();
        let a2 = g2.add_node("a");
        let b2 = g2.add_node("b");
        g2.add_edge(a2, b2, "x");
        assert!(!same(&g1, &g2)); // edge counts differ
    }

    #[test]
    fn self_loops_must_match() {
        let mut g1: G = Graph::new();
        let a = g1.add_node("a");
        let b = g1.add_node("a");
        g1.add_edge(a, a, "x");
        g1.add_edge(a, b, "y");
        let mut g2: G = Graph::new();
        let a2 = g2.add_node("a");
        let b2 = g2.add_node("a");
        g2.add_edge(a2, b2, "x");
        g2.add_edge(a2, b2, "y");
        assert!(!same(&g1, &g2));
    }

    #[test]
    fn automorphic_square_with_same_labels() {
        // 4-cycle with identical labels: isomorphic to a rotated copy.
        let build = |start: usize| {
            let mut g: Graph<&str, &str> = Graph::new();
            let ids: Vec<_> = (0..4).map(|_| g.add_node("n")).collect();
            for i in 0..4 {
                g.add_edge(ids[(start + i) % 4], ids[(start + i + 1) % 4], "e");
            }
            g
        };
        let g1 = build(0);
        let g2 = build(2);
        assert!(same(&g1, &g2));
    }

    #[test]
    fn square_vs_two_two_cycles() {
        // Same label/degree profiles, different structure: a directed
        // 4-cycle vs two directed 2-cycles. Requires real backtracking.
        let mut g1: Graph<&str, &str> = Graph::new();
        let ids: Vec<_> = (0..4).map(|_| g1.add_node("n")).collect();
        for i in 0..4 {
            g1.add_edge(ids[i], ids[(i + 1) % 4], "e");
        }
        let mut g2: Graph<&str, &str> = Graph::new();
        let jds: Vec<_> = (0..4).map(|_| g2.add_node("n")).collect();
        g2.add_edge(jds[0], jds[1], "e");
        g2.add_edge(jds[1], jds[0], "e");
        g2.add_edge(jds[2], jds[3], "e");
        g2.add_edge(jds[3], jds[2], "e");
        assert!(!same(&g1, &g2));
    }

    #[test]
    fn mapping_preserves_edges() {
        let g1 = triangle(["a", "b", "c"]);
        let g2 = triangle(["a", "b", "c"]);
        let m = find_isomorphism(&g1, &g2, |n| *n, |n| *n, |e| *e, |e| *e).unwrap();
        for edge in g1.edges() {
            let (ms, md) = (m[&edge.src], m[&edge.dst]);
            assert!(g2
                .out_edges(ms)
                .any(|e2| e2.dst == md && e2.payload == edge.payload));
        }
    }

    #[test]
    fn empty_graphs_are_isomorphic() {
        let g1: G = Graph::new();
        let g2: G = Graph::new();
        assert!(same(&g1, &g2));
    }
}
