//! Methods (Section 3.6): specification, body, interface, call.
//!
//! A GOOD method is a named procedure with
//!
//! * a **specification** `(s_M, R_M)`: parameter edge labels with their
//!   node labels, and the receiver's node label;
//! * a **body**: a sequence of parameterized operations whose source
//!   patterns may contain one diamond *M-head node* binding pattern
//!   nodes to the formal receiver (unlabeled edge, modeled as the
//!   reserved [`RECEIVER_EDGE`] label) and formal parameters;
//! * an **interface**: a scheme describing the method's effect at the
//!   scheme level — temporaries the body creates that appear in neither
//!   the original scheme nor the interface are filtered out of the
//!   result (the `Elapsed` example of Figures 23–25);
//! * a **call**: a pattern with actual receiver and parameters.
//!
//! The call semantics follows the paper's K-construction exactly:
//!
//! 1. a hidden node addition introduces a fresh frame label `K` with
//!    functional edges to the actual parameters and receiver, one frame
//!    per distinct (receiver, parameters) restriction of the call
//!    pattern's matchings;
//! 2. each body operation is rewritten — its M-head node (if any) is
//!    substituted by a `K`-labeled class node, otherwise an isolated
//!    `K` node is added to its source pattern — and executed;
//! 3. all `K` nodes are deleted;
//! 4. the result is restricted to the union of the call-time scheme and
//!    the method interface.
//!
//! Recursion terminates operationally when a recursive call's pattern
//! has no matchings: no frames are created and the body is skipped
//! (with zero frames every rewritten body operation is vacuous, so
//! skipping is semantics-preserving). Runaway recursion that keeps
//! creating frames is caught by the environment's fuel bound.

use crate::error::{GoodError, Result};
use crate::instance::Instance;
use crate::label::{Label, RECEIVER_EDGE};
use crate::ops::{NodeAddition, NodeDeletion, OpReport};
use crate::pattern::{Pattern, PatternNodeKind};
use crate::program::{Env, Operation};
use crate::scheme::Scheme;
use good_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A method specification: name, parameter labels with node labels, and
/// receiver label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodSpec {
    /// The method name.
    pub name: String,
    /// `s_M`: parameter (functional) edge labels → node labels.
    pub params: BTreeMap<Label, Label>,
    /// `R_M`: the receiver's node label.
    pub receiver: Label,
}

impl MethodSpec {
    /// Construct a specification.
    pub fn new(
        name: impl Into<String>,
        receiver: impl Into<Label>,
        params: impl IntoIterator<Item = (Label, Label)>,
    ) -> Self {
        MethodSpec {
            name: name.into(),
            receiver: receiver.into(),
            params: params.into_iter().collect(),
        }
    }
}

/// A complete method: specification, body, interface.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Method {
    /// The specification.
    pub spec: MethodSpec,
    /// The body: parameterized operations (their patterns may contain
    /// one M-head node named after this method).
    pub body: Vec<Operation>,
    /// The interface scheme. Use `Scheme::new()` for methods whose
    /// effects are pure side effects on existing classes.
    pub interface: Scheme,
}

impl Method {
    /// Construct a method.
    pub fn new(spec: MethodSpec, body: Vec<Operation>, interface: Scheme) -> Self {
        Method {
            spec,
            body,
            interface,
        }
    }
}

/// A method call `MC[J, S, I, M, g, n]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodCall {
    /// The method name.
    pub method: String,
    /// The call's source pattern `J`.
    pub pattern: Pattern,
    /// The pattern node bound as the actual receiver (`n`).
    pub receiver: NodeId,
    /// Actual parameters: parameter label → pattern node (`g`).
    pub args: BTreeMap<Label, NodeId>,
}

impl MethodCall {
    /// Construct a call.
    pub fn new(
        method: impl Into<String>,
        pattern: Pattern,
        receiver: NodeId,
        args: impl IntoIterator<Item = (Label, NodeId)>,
    ) -> Self {
        MethodCall {
            method: method.into(),
            pattern,
            receiver,
            args: args.into_iter().collect(),
        }
    }
}

/// Rewrite one body operation for execution under frame label `frame`:
/// substitute the M-head node, or add an isolated frame node.
fn rewrite_body_op(op: &Operation, method_name: &str, frame: &Label) -> Result<Operation> {
    let mut rewritten = op.clone();
    let pattern = rewritten.pattern_mut();
    let heads: Vec<NodeId> = pattern
        .graph()
        .nodes()
        .filter_map(|node| match &node.payload.kind {
            PatternNodeKind::MethodHead(name) => Some((node.id, name.clone())),
            _ => None,
        })
        .map(|(id, name)| {
            if name == method_name {
                Ok(id)
            } else {
                Err(GoodError::MethodSignatureMismatch(format!(
                    "body of {method_name} contains a head node for method {name}"
                )))
            }
        })
        .collect::<Result<_>>()?;
    match heads.as_slice() {
        [] => {
            // "an isolated node labeled K is added to the source
            // pattern" — the operation only fires while a frame exists.
            pattern.node(frame.clone());
        }
        [head] => {
            pattern.graph_mut().node_mut(*head).expect("live").kind =
                PatternNodeKind::Class(frame.clone());
        }
        _ => {
            return Err(GoodError::MethodSignatureMismatch(format!(
                "body operation of {method_name} contains more than one head node"
            )))
        }
    }
    Ok(rewritten)
}

/// Adapt a rewritten body operation for a subclass receiver
/// (Section 4.2): relabel the pattern node(s) bound by the frame's
/// `$recv` edge from the declared receiver class to the actual class,
/// then route any now-inherited properties through explicit `isa`
/// chains ([`crate::inheritance::rewrite_pattern_with_map`]) and
/// retarget the operation's edge specifications to the chain nodes —
/// the internal translation the paper illustrates in Figures 30–31.
fn adapt_for_subclass_receiver(
    op: &mut Operation,
    frame: &Label,
    declared: &Label,
    actual: &Label,
    db: &Instance,
) -> Result<()> {
    use crate::pattern::PatternNodeKind;
    let recv_edge = Label::system(RECEIVER_EDGE);
    {
        let pattern = op.pattern_mut();
        // Find the frame node and its $recv targets.
        let receiver_nodes: Vec<good_graph::NodeId> = pattern
            .graph()
            .edges()
            .filter(|edge| {
                edge.payload.label == recv_edge
                    && matches!(
                        pattern.graph().node(edge.src).map(|n| &n.kind),
                        Some(PatternNodeKind::Class(label)) if label == frame
                    )
            })
            .map(|edge| edge.dst)
            .collect();
        for node in receiver_nodes {
            if let Some(data) = pattern.graph_mut().node_mut(node) {
                if data.kind == PatternNodeKind::Class(declared.clone()) {
                    data.kind = PatternNodeKind::Class(actual.clone());
                }
            }
        }
    }
    // Bold edges of an edge addition are not pattern edges, so they
    // need their own isa routing: if the (relabeled) source class does
    // not license the property but an ancestor does, graft the chain
    // into the pattern and re-root the bold edge at its end.
    if let Operation::EdgeAdd(ea) = op {
        let scheme = db.scheme().clone();
        for index in 0..ea.edges.len() {
            let (src, label, dst) = {
                let edge = &ea.edges[index];
                (edge.src, edge.label.clone(), edge.dst)
            };
            let pattern = &mut ea.pattern;
            let (Some(src_label), Some(dst_label)) = (
                pattern.node_label(src).cloned(),
                pattern.node_label(dst).cloned(),
            ) else {
                continue;
            };
            if scheme.allows(&src_label, &label, &dst_label) || !scheme.is_edge_label(&label) {
                continue; // licensed directly, or a brand-new label
            }
            let Ok(path) =
                crate::inheritance::isa_path_to_licensor(&scheme, &src_label, &label, &dst_label)
            else {
                continue; // no ancestor licenses it: EA will extend the scheme
            };
            let mut current = src;
            for (isa_edge, super_label) in path {
                let chain = pattern.node(super_label);
                pattern.edge(current, isa_edge, chain);
                current = chain;
            }
            ea.edges[index].src = current;
        }
    }
    // Route inherited properties used in the pattern itself through isa
    // chains and retarget edge-deletion specs accordingly.
    let (rewritten, reroutes) =
        crate::inheritance::rewrite_pattern_with_map(op.pattern(), db.scheme())?;
    *op.pattern_mut() = rewritten;
    if let Operation::EdgeDel(ed) = op {
        for (src, label, dst) in &mut ed.edges {
            if let Some(&new_src) = reroutes.get(&(*src, label.clone(), *dst)) {
                *src = new_src;
            }
        }
    }
    Ok(())
}

/// Execute a method call (the `MC` operation).
pub fn execute_call(call: &MethodCall, db: &mut Instance, env: &mut Env) -> Result<OpReport> {
    let method = env.method(&call.method)?.clone();

    // ---- validate the call against the specification -------------------
    let receiver_label = call
        .pattern
        .node_label(call.receiver)
        .ok_or_else(|| GoodError::NodeNotInPattern(format!("{:?}", call.receiver)))?;
    // Section 4.2: "a method can be called on objects belonging to
    // subclasses of the method's specified receiver and parameter
    // classes" — accept the exact class or any `isa` descendant.
    let conforms = |actual: &Label, expected: &Label| {
        actual == expected || db.scheme().ancestors_of(actual).contains(expected)
    };
    if !conforms(receiver_label, &method.spec.receiver) {
        return Err(GoodError::MethodSignatureMismatch(format!(
            "receiver has label {receiver_label}, expected {} (or a subclass)",
            method.spec.receiver
        )));
    }
    if call.args.len() != method.spec.params.len()
        || !call.args.keys().eq(method.spec.params.keys())
    {
        return Err(GoodError::MethodSignatureMismatch(format!(
            "call passes parameters {:?}, expected {:?}",
            call.args.keys().collect::<Vec<_>>(),
            method.spec.params.keys().collect::<Vec<_>>()
        )));
    }
    for (param, node) in &call.args {
        let expected = &method.spec.params[param];
        let actual = call
            .pattern
            .node_label(*node)
            .ok_or_else(|| GoodError::NodeNotInPattern(format!("{node:?}")))?;
        if !conforms(actual, expected) {
            return Err(GoodError::MethodSignatureMismatch(format!(
                "parameter {param} has label {actual}, expected {expected} (or a subclass)"
            )));
        }
    }

    // The scope entry and span cover the whole K-construction (frame
    // addition, body, frame deletion, scheme restriction); the closure
    // guarantees the scope stack unwinds on every exit path.
    env.enter_method(&call.method);
    let mut method_span = if good_trace::enabled() {
        good_trace::span("method", &format!("method/{}", call.method))
    } else {
        good_trace::SpanGuard::disabled()
    };
    if method_span.is_live() {
        method_span.arg("depth", env.method_depth());
        good_trace::counter_add("method.calls", 1);
    }
    let fuel_before = env.fuel_left();
    let result = run_call(&method, call, receiver_label, db, env);
    if method_span.is_live() {
        method_span.arg("fuel_burned", fuel_before - env.fuel_left());
        if let Ok(report) = &result {
            method_span.arg("matchings", report.matchings);
        }
    }
    drop(method_span);
    env.exit_method();
    result
}

/// The K-construction proper (steps 1–4 of the module doc), factored
/// out of [`execute_call`] so scope/span bookkeeping wraps every exit
/// path exactly once.
fn run_call(
    method: &Method,
    call: &MethodCall,
    receiver_label: &Label,
    db: &mut Instance,
    env: &mut Env,
) -> Result<OpReport> {
    // ---- snapshot the call-time scheme for the final restriction -------
    let call_scheme = db.scheme().clone();

    // ---- 1. frame node addition ----------------------------------------
    let frame = Label::system(format!(
        "$frame:{}:{}",
        method.spec.name,
        env.next_frame_id()
    ));
    let mut frame_edges: Vec<(Label, NodeId)> = call
        .args
        .iter()
        .map(|(param, node)| (param.clone(), *node))
        .collect();
    frame_edges.push((Label::system(RECEIVER_EDGE), call.receiver));
    let frame_na = NodeAddition::new(call.pattern.clone(), frame.clone(), frame_edges);
    env.burn_fuel()?;
    let frame_report = frame_na.apply(db)?;
    let mut report = OpReport {
        matchings: frame_report.matchings,
        ..OpReport::default()
    };

    // ---- 2. body execution (skipped when no frames exist: every
    //         rewritten body operation would be vacuous) -----------------
    if !frame_report.created_nodes.is_empty() {
        let subclass_receiver = if receiver_label == &method.spec.receiver {
            None
        } else {
            Some(receiver_label.clone())
        };
        for (body_index, body_op) in method.body.iter().enumerate() {
            let mut rewritten = rewrite_body_op(body_op, &method.spec.name, &frame)?;
            if let Some(actual) = &subclass_receiver {
                adapt_for_subclass_receiver(
                    &mut rewritten,
                    &frame,
                    &method.spec.receiver,
                    actual,
                    db,
                )?;
            }
            env.enter_op(body_index, body_op.mnemonic());
            let sub_report = rewritten.apply(db, env);
            env.exit_op();
            report.absorb(&sub_report?);
        }
        // `matchings` reports the CALL pattern's matchings, not the sum
        // over body operations.
        report.matchings = frame_report.matchings;
    }

    // ---- 3. delete the frame nodes --------------------------------------
    let mut frame_pattern = Pattern::new();
    let frame_node = frame_pattern.node(frame.clone());
    env.burn_fuel()?;
    NodeDeletion::new(frame_pattern, frame_node).apply(db)?;

    // ---- 4. restrict to (call-time scheme) ∪ interface -------------------
    let result_scheme = call_scheme.union(&method.interface)?;
    db.restrict_to_scheme(&result_scheme);

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{EdgeAddition, EdgeDeletion};
    use crate::scheme::SchemeBuilder;
    use crate::value::{Value, ValueType};

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .printable("Date", ValueType::Date)
            .functional("Info", "name", "String")
            .functional("Info", "modified", "Date")
            .multivalued("Info", "links-to", "Info")
            .build()
    }

    fn named_info(db: &mut Instance, name: &str) -> NodeId {
        let info = db.add_object("Info").unwrap();
        let s = db.add_printable("String", name).unwrap();
        db.add_edge(info, "name", s).unwrap();
        info
    }

    /// The paper's `Update` method (Figure 20): delete the old modified
    /// edge, add a new one to the Date parameter.
    fn update_method() -> Method {
        let spec = MethodSpec::new(
            "Update",
            "Info",
            [(Label::new("parameter"), Label::new("Date"))],
        );
        // Body op 1: ED — delete (receiver) -modified-> Date.
        let mut p1 = Pattern::new();
        let head1 = p1.method_head("Update");
        let info1 = p1.node("Info");
        let old_date = p1.node("Date");
        p1.edge(head1, Label::system(RECEIVER_EDGE), info1);
        p1.edge(info1, "modified", old_date);
        let ed = EdgeDeletion::single(p1, info1, "modified", old_date);
        // Body op 2: EA — add (receiver) -modified-> (parameter).
        let mut p2 = Pattern::new();
        let head2 = p2.method_head("Update");
        let info2 = p2.node("Info");
        let new_date = p2.node("Date");
        p2.edge(head2, Label::system(RECEIVER_EDGE), info2);
        p2.edge(head2, "parameter", new_date);
        let ea = EdgeAddition::functional(p2, info2, "modified", new_date);
        Method::new(
            spec,
            vec![Operation::EdgeDel(ed), Operation::EdgeAdd(ea)],
            Scheme::new(),
        )
    }

    /// Figure 21: call Update on every Music History info with Jan 16.
    fn update_call() -> MethodCall {
        let mut p = Pattern::new();
        let info = p.node("Info");
        let name = p.printable("String", "Music History");
        let date = p.printable("Date", Value::date(1990, 1, 16));
        p.edge(info, "name", name);
        MethodCall::new("Update", p, info, [(Label::new("parameter"), date)])
    }

    #[test]
    fn figure20_21_update_changes_modified_date() {
        let mut db = Instance::new(scheme());
        let music = named_info(&mut db, "Music History");
        let other = named_info(&mut db, "Other");
        let d14 = db.add_printable("Date", Value::date(1990, 1, 14)).unwrap();
        db.add_edge(music, "modified", d14).unwrap();
        db.add_edge(other, "modified", d14).unwrap();
        db.add_printable("Date", Value::date(1990, 1, 16)).unwrap();

        let mut env = Env::new();
        env.register(update_method());
        execute_call(&update_call(), &mut db, &mut env).unwrap();

        let target = db.functional_target(music, &"modified".into()).unwrap();
        assert_eq!(db.print_value(target), Some(&Value::date(1990, 1, 16)));
        // Unmatched receivers are untouched.
        let other_target = db.functional_target(other, &"modified".into()).unwrap();
        assert_eq!(
            db.print_value(other_target),
            Some(&Value::date(1990, 1, 14))
        );
        // No frame residue.
        assert!(db.graph().nodes().all(|n| !n.payload.label.is_system()));
        assert_eq!(db.scheme(), &scheme());
        db.validate().unwrap();
    }

    #[test]
    fn update_works_when_no_modified_edge_exists_yet() {
        // The ED body op simply has no matchings; the EA still fires.
        let mut db = Instance::new(scheme());
        let music = named_info(&mut db, "Music History");
        db.add_printable("Date", Value::date(1990, 1, 16)).unwrap();
        let mut env = Env::new();
        env.register(update_method());
        execute_call(&update_call(), &mut db, &mut env).unwrap();
        assert!(db.functional_target(music, &"modified".into()).is_some());
    }

    #[test]
    fn call_with_no_matchings_is_noop() {
        let mut db = Instance::new(scheme());
        named_info(&mut db, "Something Else");
        db.add_printable("Date", Value::date(1990, 1, 16)).unwrap();
        let mut env = Env::new();
        env.register(update_method());
        let snapshot = db.clone();
        execute_call(&update_call(), &mut db, &mut env).unwrap();
        assert!(db.isomorphic_to(&snapshot));
    }

    #[test]
    fn signature_mismatches_rejected() {
        let mut db = Instance::new(scheme());
        named_info(&mut db, "Music History");
        let mut env = Env::new();
        env.register(update_method());

        // Wrong receiver label.
        let mut p = Pattern::new();
        let date = p.node("Date");
        let call = MethodCall::new("Update", p, date, []);
        assert!(matches!(
            execute_call(&call, &mut db, &mut env),
            Err(GoodError::MethodSignatureMismatch(_))
        ));

        // Missing parameter.
        let mut p = Pattern::new();
        let info = p.node("Info");
        let call = MethodCall::new("Update", p, info, []);
        assert!(matches!(
            execute_call(&call, &mut db, &mut env),
            Err(GoodError::MethodSignatureMismatch(_))
        ));

        // Parameter with wrong node label.
        let mut p = Pattern::new();
        let info = p.node("Info");
        let wrong = p.node("String");
        let call = MethodCall::new("Update", p, info, [(Label::new("parameter"), wrong)]);
        assert!(matches!(
            execute_call(&call, &mut db, &mut env),
            Err(GoodError::MethodSignatureMismatch(_))
        ));
    }

    #[test]
    fn unknown_method_is_an_error() {
        let mut db = Instance::new(scheme());
        let mut p = Pattern::new();
        let info = p.node("Info");
        let call = MethodCall::new("Nope", p, info, []);
        let mut env = Env::new();
        assert!(matches!(
            execute_call(&call, &mut db, &mut env),
            Err(GoodError::UnknownMethod(_))
        ));
    }

    #[test]
    fn methods_dispatch_on_subclasses() {
        // Section 4.2: "a method can be called on objects belonging to
        // subclasses of the method's specified receiver". The Update
        // method is declared on Info; we call it on a Reference whose
        // properties live on its isa-target Info object.
        let scheme = SchemeBuilder::new()
            .object("Info")
            .object("Reference")
            .printable("String", ValueType::Str)
            .printable("Date", ValueType::Date)
            .functional("Info", "name", "String")
            .functional("Info", "modified", "Date")
            .subclass("Reference", "isa", "Info")
            .build();
        let mut db = Instance::new(scheme);
        let info = db.add_object("Info").unwrap();
        let name = db.add_printable("String", "Music History").unwrap();
        db.add_edge(info, "name", name).unwrap();
        let d14 = db.add_printable("Date", Value::date(1990, 1, 14)).unwrap();
        db.add_edge(info, "modified", d14).unwrap();
        let reference = db.add_object("Reference").unwrap();
        db.add_edge(reference, "isa", info).unwrap();
        db.add_printable("Date", Value::date(1990, 1, 16)).unwrap();

        let mut env = Env::new();
        env.register(update_method());
        // Call Update with a Reference receiver.
        let mut p = Pattern::new();
        let recv = p.node("Reference");
        let date = p.printable("Date", Value::date(1990, 1, 16));
        let call = MethodCall::new("Update", p, recv, [(Label::new("parameter"), date)]);
        execute_call(&call, &mut db, &mut env).unwrap();

        // The write landed on the underlying Info object (the paper's
        // Figure 31 internal translation), not on the Reference.
        let target = db.functional_target(info, &"modified".into()).unwrap();
        assert_eq!(db.print_value(target), Some(&Value::date(1990, 1, 16)));
        assert!(db
            .functional_target(reference, &"modified".into())
            .is_none());
        assert_eq!(db.label_count(&"Reference".into()), 1);
        db.validate().unwrap();
    }

    #[test]
    fn unrelated_receiver_classes_still_rejected() {
        let scheme = SchemeBuilder::new()
            .object("Info")
            .object("Version")
            .printable("Date", ValueType::Date)
            .functional("Info", "modified", "Date")
            .build();
        let mut db = Instance::new(scheme);
        db.add_object("Version").unwrap();
        let mut env = Env::new();
        env.register(update_method());
        let mut p = Pattern::new();
        let recv = p.node("Version");
        let date = p.node("Date");
        let call = MethodCall::new("Update", p, recv, [(Label::new("parameter"), date)]);
        assert!(matches!(
            execute_call(&call, &mut db, &mut env),
            Err(GoodError::MethodSignatureMismatch(_))
        ));
    }

    #[test]
    fn interface_filters_temporaries() {
        // A method that creates a Temp node per receiver and an Out node
        // declared in the interface: Temp disappears, Out persists.
        let mut interface = Scheme::new();
        interface.add_object_label("Out").unwrap();
        interface.add_functional_label("for").unwrap();
        interface.add_object_label("Info").unwrap();
        interface.add_triple("Out", "for", "Info").unwrap();

        // Body op 1: NA Temp with edge to receiver.
        let mut p1 = Pattern::new();
        let head1 = p1.method_head("M");
        let recv1 = p1.node("Info");
        p1.edge(head1, Label::system(RECEIVER_EDGE), recv1);
        let na_temp = NodeAddition::new(p1, "Temp", [(Label::new("t"), recv1)]);
        // Body op 2: NA Out with edge to receiver (via the Temp node, to
        // prove intermediates are usable inside the body).
        let mut p2 = Pattern::new();
        let head2 = p2.method_head("M");
        let recv2 = p2.node("Info");
        let temp2 = p2.node("Temp");
        p2.edge(head2, Label::system(RECEIVER_EDGE), recv2);
        p2.edge(temp2, "t", recv2);
        let na_out = NodeAddition::new(p2, "Out", [(Label::new("for"), recv2)]);

        let method = Method::new(
            MethodSpec::new("M", "Info", []),
            vec![Operation::NodeAdd(na_temp), Operation::NodeAdd(na_out)],
            interface,
        );

        let mut db = Instance::new(scheme());
        let info = named_info(&mut db, "x");
        let mut env = Env::new();
        env.register(method);
        let mut p = Pattern::new();
        let pinfo = p.node("Info");
        execute_call(&MethodCall::new("M", p, pinfo, []), &mut db, &mut env).unwrap();

        // Temp has been filtered out (it is in neither the original
        // scheme nor the interface), Out persists.
        assert_eq!(db.label_count(&"Temp".into()), 0);
        assert!(!db.scheme().is_object_label(&"Temp".into()));
        assert_eq!(db.label_count(&"Out".into()), 1);
        let out = db.nodes_with_label(&"Out".into()).next().unwrap();
        assert_eq!(db.functional_target(out, &"for".into()), Some(info));
        db.validate().unwrap();
    }

    #[test]
    fn one_frame_per_distinct_receiver_parameter_combination() {
        // Two matchings with the same receiver image must execute the
        // body once (the frame NA deduplicates restrictions).
        let mut db = Instance::new(scheme());
        let hub = named_info(&mut db, "hub");
        let a = named_info(&mut db, "a");
        let b = named_info(&mut db, "b");
        db.add_edge(hub, "links-to", a).unwrap();
        db.add_edge(hub, "links-to", b).unwrap();

        // Method: NA a Mark node attached to the receiver. Marks are
        // deduplicated per receiver by NA semantics anyway, so instead
        // count via interface-persistent class.
        let mut interface = Scheme::new();
        interface.add_object_label("Mark").unwrap();
        interface.add_functional_label("on").unwrap();
        interface.add_object_label("Info").unwrap();
        interface.add_triple("Mark", "on", "Info").unwrap();
        let mut pb = Pattern::new();
        let head = pb.method_head("Mark");
        let recv = pb.node("Info");
        pb.edge(head, Label::system(RECEIVER_EDGE), recv);
        let na = NodeAddition::new(pb, "Mark", [(Label::new("on"), recv)]);
        let method = Method::new(
            MethodSpec::new("Mark", "Info", []),
            vec![Operation::NodeAdd(na)],
            interface,
        );

        // Call pattern: Info -links-to-> Info, receiver = source. Two
        // matchings, one distinct receiver.
        let mut p = Pattern::new();
        let src = p.node("Info");
        let dst = p.node("Info");
        p.edge(src, "links-to", dst);
        let mut env = Env::new();
        env.register(method);
        let report = execute_call(&MethodCall::new("Mark", p, src, []), &mut db, &mut env).unwrap();
        assert_eq!(report.matchings, 2);
        assert_eq!(db.label_count(&"Mark".into()), 1);
        let mark = db.nodes_with_label(&"Mark".into()).next().unwrap();
        assert_eq!(db.functional_target(mark, &"on".into()), Some(hub));
    }
}
