//! The negation macro (Section 4.1, Figures 26–27).
//!
//! "The general technique to simulate patterns with a crossed part in
//! GOOD utilizes deletions. First, intermediate nodes are created for
//! every matching of the non-crossed part of the pattern. Then the
//! intermediate nodes are deleted that are associated to a matching
//! that can be enlarged to the complete pattern. The intermediate nodes
//! that are left represent the desired matching."
//!
//! [`expand_negation`] produces exactly that two-operation program; the
//! surviving intermediate nodes carry one functional *slot* edge per
//! positive pattern node, so a caller (or [`NegationExpansion::read_matchings`])
//! can recover the matchings. The property tests check the expansion
//! against the matcher's built-in negation semantics
//! ([`crate::matching::find_matchings`]).

use crate::error::{GoodError, Result};
use crate::instance::Instance;
use crate::label::Label;
use crate::matching::Matching;
use crate::ops::{NodeAddition, NodeDeletion};
use crate::pattern::Pattern;
use crate::program::{Env, Operation, Program};
use good_graph::NodeId;
use std::collections::BTreeMap;

/// The result of expanding a crossed pattern.
#[derive(Debug, Clone)]
pub struct NegationExpansion {
    /// The two-step program: tag positive matchings, delete extendable
    /// tags.
    pub program: Program,
    /// The label of the intermediate (tag) nodes.
    pub intermediate: Label,
    /// Slot edge label per positive pattern node, in pattern-node order.
    pub slots: BTreeMap<NodeId, Label>,
}

impl NegationExpansion {
    /// Run the program on `db`, then read the surviving matchings back
    /// from the intermediate nodes (and delete them, leaving `db` as it
    /// was apart from scheme extensions).
    pub fn evaluate(&self, db: &mut Instance, env: &mut Env) -> Result<Vec<Matching>> {
        self.program.apply(db, env)?;
        let matchings = self.read_matchings(db);
        // Clean up the surviving intermediates.
        let mut cleanup = Pattern::new();
        let tag = cleanup.node(self.intermediate.clone());
        NodeDeletion::new(cleanup, tag).apply(db)?;
        Ok(matchings)
    }

    /// Read the matchings represented by the currently-live intermediate
    /// nodes.
    pub fn read_matchings(&self, db: &Instance) -> Vec<Matching> {
        let mut out: Vec<Matching> = db
            .nodes_with_label(&self.intermediate)
            .map(|tag| {
                Matching::from_pairs(self.slots.iter().map(|(pattern_node, slot)| {
                    (
                        *pattern_node,
                        db.functional_target(tag, slot)
                            .expect("intermediate carries all slot edges"),
                    )
                }))
            })
            .collect();
        out.sort();
        out
    }
}

/// Expand a pattern with crossed parts into core operations, using
/// `intermediate` as the tag label (it must be fresh with respect to the
/// instance's scheme objects, or at least unused by live nodes).
pub fn expand_negation(
    pattern: &Pattern,
    intermediate: impl Into<Label>,
) -> Result<NegationExpansion> {
    if !pattern.has_negation() {
        return Err(GoodError::InvalidPattern(
            "expand_negation requires a pattern with crossed parts".into(),
        ));
    }
    let intermediate = intermediate.into();
    let positive = pattern.positive_part();
    let positive_nodes = positive.positive_nodes();

    // Slot labels "<intermediate>-1", "<intermediate>-2", ...
    let slots: BTreeMap<NodeId, Label> = positive_nodes
        .iter()
        .enumerate()
        .map(|(index, node)| (*node, Label::new(format!("{intermediate}-{}", index + 1))))
        .collect();

    // Step 1 (NA): one intermediate per matching of the positive part,
    // with slot edges to every positive node — the full restriction, so
    // intermediates are in bijection with positive matchings.
    let na = NodeAddition::new(
        positive.clone(),
        intermediate.clone(),
        slots.iter().map(|(node, slot)| (slot.clone(), *node)),
    );

    // Step 2 (ND): delete intermediates whose matching extends to the
    // complete (unnegated) pattern. The source pattern is the complete
    // pattern plus the intermediate with its slot edges.
    let mut full = pattern.unnegated();
    let tag = full.node(intermediate.clone());
    for (node, slot) in &slots {
        full.edge(tag, slot.clone(), *node);
    }
    let nd = NodeDeletion::new(full, tag);

    Ok(NegationExpansion {
        program: Program::from_ops([Operation::NodeAdd(na), Operation::NodeDel(nd)]),
        intermediate,
        slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::find_matchings;
    use crate::scheme::{Scheme, SchemeBuilder};
    use crate::value::{Value, ValueType};

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .printable("Date", ValueType::Date)
            .functional("Info", "name", "String")
            .functional("Info", "created", "Date")
            .functional("Info", "modified", "Date")
            .multivalued("Info", "links-to", "Info")
            .build()
    }

    fn instance() -> Instance {
        let mut db = Instance::new(scheme());
        // a: created == modified; b: created != modified; c: no modified.
        let d1 = Value::date(1990, 1, 12);
        let d2 = Value::date(1990, 1, 14);
        for (name, created, modified) in [
            ("a", &d1, Some(&d1)),
            ("b", &d1, Some(&d2)),
            ("c", &d2, None),
        ] {
            let info = db.add_object("Info").unwrap();
            let s = db.add_printable("String", name).unwrap();
            db.add_edge(info, "name", s).unwrap();
            let cd = db.add_printable("Date", created.clone()).unwrap();
            db.add_edge(info, "created", cd).unwrap();
            if let Some(modified) = modified {
                let md = db.add_printable("Date", modified.clone()).unwrap();
                db.add_edge(info, "modified", md).unwrap();
            }
        }
        db
    }

    /// Figure 26: infos whose created date is not also their modified
    /// date.
    fn figure26() -> Pattern {
        let mut p = Pattern::new();
        let info = p.node("Info");
        let name = p.node("String");
        let date = p.node("Date");
        p.edge(info, "name", name);
        p.edge(info, "created", date);
        p.negated_edge(info, "modified", date);
        p
    }

    #[test]
    fn expansion_agrees_with_direct_negation() {
        let pattern = figure26();
        let mut db = instance();
        let direct = find_matchings(&pattern, &db).unwrap();
        assert_eq!(direct.len(), 2); // b and c

        let expansion = expand_negation(&pattern, "Intermediate").unwrap();
        let mut env = Env::new();
        let via_macro = expansion.evaluate(&mut db, &mut env).unwrap();
        // The macro matchings are over the positive nodes only — which
        // here is all three nodes of the pattern.
        assert_eq!(via_macro, direct);
        // No intermediates are left behind.
        assert_eq!(db.label_count(&"Intermediate".into()), 0);
        db.validate().unwrap();
    }

    #[test]
    fn expansion_with_crossed_node() {
        // Infos that do not link to anything.
        let mut db = instance();
        let infos: Vec<NodeId> = db.nodes_with_label(&"Info".into()).collect();
        db.add_edge(infos[0], "links-to", infos[1]).unwrap();

        let mut p = Pattern::new();
        let info = p.node("Info");
        let other = p.negated_node("Info");
        p.edge(info, "links-to", other);

        let direct = find_matchings(&p, &db).unwrap();
        assert_eq!(direct.len(), 2); // infos[1], infos[2]

        let expansion = expand_negation(&p, "Sink").unwrap();
        let via_macro = expansion.evaluate(&mut db, &mut Env::new()).unwrap();
        // Project direct matchings onto positive nodes for comparison.
        let projected: Vec<Matching> = direct
            .iter()
            .map(|m| Matching::from_pairs([(info, m.image(info))]))
            .collect();
        assert_eq!(via_macro, projected);
    }

    #[test]
    fn program_shape_matches_figure27() {
        let expansion = expand_negation(&figure26(), "Intermediate").unwrap();
        let ops = expansion.program.ops();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].mnemonic(), "NA");
        assert_eq!(ops[1].mnemonic(), "ND");
        assert_eq!(expansion.slots.len(), 3);
    }

    #[test]
    fn rejects_patterns_without_crossed_parts() {
        let mut p = Pattern::new();
        p.node("Info");
        assert!(matches!(
            expand_negation(&p, "X"),
            Err(GoodError::InvalidPattern(_))
        ));
    }

    #[test]
    fn read_matchings_before_cleanup() {
        let pattern = figure26();
        let mut db = instance();
        let expansion = expand_negation(&pattern, "Tag").unwrap();
        expansion.program.apply(&mut db, &mut Env::new()).unwrap();
        let read = expansion.read_matchings(&db);
        assert_eq!(read.len(), 2);
        assert_eq!(db.label_count(&"Tag".into()), 2);
    }
}
