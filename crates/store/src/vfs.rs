//! The virtual filesystem the journal runs on.
//!
//! [`Store`](crate::Store) performs every byte of journal and
//! checkpoint I/O through the [`Vfs`] trait, so the durability logic
//! can be exercised against two backends:
//!
//! * [`StdVfs`] — a passthrough to `std::fs`, used in production;
//! * [`FaultVfs`] — a deterministic in-memory filesystem that models
//!   *crash semantics* (what survives a power cut) and injects
//!   seed-scheduled faults: torn writes at arbitrary byte offsets,
//!   fsync failures, rename failures, and hard crash points that
//!   freeze the simulated on-disk state.
//!
//! # The crash model
//!
//! `FaultVfs` tracks, per file (inode), the visible content and the
//! *durable prefix length* (`fdatasync` advances it), and tracks the
//! directory namespace twice: the live map (what `open` sees now) and
//! the durable map (what survives a crash). `create`/`rename` mutate
//! only the live namespace; [`Vfs::sync_parent_dir`] — the `fsync(dir)`
//! a correct journal must issue — promotes it to durable. On
//! [`FaultVfs::reboot`] the live state is discarded: the namespace
//! reverts to the durable map and each surviving file is torn at a
//! seed-chosen byte offset within its un-synced suffix (so the tail
//! may be wholly lost, partially torn mid-record, or fully present).
//!
//! The model deliberately takes the *strictest legal* reading of POSIX
//! crash behaviour — un-fsynced renames and creates are always rolled
//! back — so a missing directory sync fails deterministically instead
//! of once in a thousand runs. Tearing is prefix-only within the
//! un-synced suffix: sector-reorder corruption *inside* the suffix
//! would require record checksums to recover from and is noted as
//! future work in DESIGN.md.
//!
//! Every operation and injected fault is appended to a textual fault
//! log; two runs over the same [`FaultPlan`] produce byte-identical
//! logs, which is what makes torture schedules reproducible from a
//! seed alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An open, append-only file handle.
pub trait VfsFile: Send {
    /// Append bytes at the end of the file.
    fn append(&mut self, data: &[u8]) -> io::Result<()>;
    /// Flush file *content* to durable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flush content and metadata (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The filesystem operations the journal needs.
pub trait Vfs: Send + Sync {
    /// Create a file that must not already exist (`O_CREAT | O_EXCL`).
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Create a file, truncating any existing one.
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open an existing file for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Truncate a file to `len` bytes (durability requires a
    /// subsequent [`VfsFile::sync_data`] on an open handle).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Atomically rename `from` onto `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Fsync the directory containing `path`, making renames and
    /// creates within it durable.
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// StdVfs
// ---------------------------------------------------------------------------

/// The production [`Vfs`]: a passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

struct StdFile(std::fs::File);

impl VfsFile for StdFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        self.0.write_all(data)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for StdVfs {
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(StdFile(file)))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(std::fs::File::create(path)?)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(Box::new(StdFile(file)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    #[cfg(unix)]
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
        match parent {
            Some(dir) => std::fs::File::open(dir)?.sync_all(),
            None => Ok(()),
        }
    }

    #[cfg(not(unix))]
    fn sync_parent_dir(&self, _path: &Path) -> io::Result<()> {
        // Directories cannot be opened for fsync here; rename
        // durability is left to the OS.
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FaultVfs
// ---------------------------------------------------------------------------

/// A deterministic fault schedule for [`FaultVfs`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for every random decision (tear offsets, fault draws).
    pub seed: u64,
    /// Operation index at which to simulate a hard crash: the
    /// operation fails (an append lands only a torn prefix) and every
    /// subsequent operation fails until [`FaultVfs::reboot`].
    pub crash_at: Option<u64>,
    /// Per-append probability of a torn write: a strict prefix of the
    /// data lands and the append reports an I/O error.
    pub torn_write_probability: f64,
    /// Per-sync probability that `fdatasync`/`fsync` (file or
    /// directory) fails without making anything durable.
    pub sync_error_probability: f64,
    /// Per-rename probability of failing without renaming.
    pub rename_error_probability: f64,
}

impl FaultPlan {
    /// A plan with no faults at all (still deterministic in `seed`).
    pub fn reliable(seed: u64) -> Self {
        FaultPlan {
            seed,
            crash_at: None,
            torn_write_probability: 0.0,
            sync_error_probability: 0.0,
            rename_error_probability: 0.0,
        }
    }

    /// A plan that crashes hard at operation `op` and is otherwise
    /// fault-free.
    pub fn crash_at(seed: u64, op: u64) -> Self {
        FaultPlan {
            crash_at: Some(op),
            ..FaultPlan::reliable(seed)
        }
    }
}

struct Inode {
    data: Vec<u8>,
    /// Bytes guaranteed durable (advanced by sync).
    synced_len: usize,
}

struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    inodes: BTreeMap<u64, Inode>,
    next_inode: u64,
    /// Live namespace: what `open` sees right now.
    live: BTreeMap<PathBuf, u64>,
    /// Durable namespace: what survives a crash.
    durable: BTreeMap<PathBuf, u64>,
    ops: u64,
    crashed: bool,
    log: Vec<String>,
}

fn crash_error(detail: &str) -> io::Error {
    io::Error::other(format!("simulated crash: {detail}"))
}

fn fault_error(detail: String) -> io::Error {
    io::Error::other(detail)
}

impl FaultState {
    /// Common per-operation bookkeeping: refuse everything after a
    /// crash, count the operation, and trigger the hard crash point.
    /// Returns the operation index, or `Err` if this operation is the
    /// crash point (`effect` describes it in the log).
    fn begin(&mut self, effect: &str) -> io::Result<u64> {
        if self.crashed {
            return Err(crash_error("filesystem is down"));
        }
        let n = self.ops;
        self.ops += 1;
        if self.plan.crash_at == Some(n) {
            self.crashed = true;
            self.log.push(format!("op {n}: CRASH during {effect}"));
            return Err(crash_error(effect));
        }
        Ok(n)
    }

    fn append(&mut self, ino: u64, data: &[u8]) -> io::Result<()> {
        if self.crashed {
            return Err(crash_error("filesystem is down"));
        }
        let n = self.ops;
        self.ops += 1;
        if self.plan.crash_at == Some(n) {
            // A crash mid-write: a prefix of the data may have reached
            // the page cache / platter before power was lost.
            let tear = self.rng.gen_range(0..=data.len());
            let inode = self.inodes.get_mut(&ino).expect("open handle has inode");
            inode.data.extend_from_slice(&data[..tear]);
            self.crashed = true;
            self.log.push(format!(
                "op {n}: CRASH during append of {} bytes to inode {ino} (tore at {tear})",
                data.len()
            ));
            return Err(crash_error("append"));
        }
        let torn = self.plan.torn_write_probability > 0.0
            && self.rng.gen_bool(self.plan.torn_write_probability)
            && data.len() > 1;
        let inode = self.inodes.get_mut(&ino).expect("open handle has inode");
        if torn {
            let tear = self.rng.gen_range(0..data.len());
            inode.data.extend_from_slice(&data[..tear]);
            self.log.push(format!(
                "op {n}: TORN write of {} bytes to inode {ino} (tore at {tear})",
                data.len()
            ));
            return Err(fault_error(format!(
                "injected torn write at op {n}: {tear} of {} bytes written",
                data.len()
            )));
        }
        inode.data.extend_from_slice(data);
        self.log.push(format!(
            "op {n}: append {} bytes to inode {ino}",
            data.len()
        ));
        Ok(())
    }

    fn sync(&mut self, ino: u64) -> io::Result<()> {
        let n = self.begin("fsync")?;
        if self.plan.sync_error_probability > 0.0
            && self.rng.gen_bool(self.plan.sync_error_probability)
        {
            self.log
                .push(format!("op {n}: FSYNC FAILURE on inode {ino}"));
            return Err(fault_error(format!("injected fsync failure at op {n}")));
        }
        let inode = self.inodes.get_mut(&ino).expect("open handle has inode");
        inode.synced_len = inode.data.len();
        self.log.push(format!(
            "op {n}: fsync inode {ino} ({} bytes durable)",
            inode.synced_len
        ));
        Ok(())
    }

    fn alloc(&mut self, data: Vec<u8>) -> u64 {
        let ino = self.next_inode;
        self.next_inode += 1;
        let synced_len = 0;
        self.inodes.insert(ino, Inode { data, synced_len });
        ino
    }
}

/// The deterministic fault-injecting in-memory [`Vfs`]. Cloning yields
/// another handle onto the same simulated disk.
#[derive(Clone)]
pub struct FaultVfs {
    shared: Arc<Mutex<FaultState>>,
}

struct FaultFile {
    shared: Arc<Mutex<FaultState>>,
    ino: u64,
}

impl VfsFile for FaultFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.shared
            .lock()
            .expect("fault vfs lock")
            .append(self.ino, data)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.shared.lock().expect("fault vfs lock").sync(self.ino)
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

impl FaultVfs {
    /// A fresh empty simulated disk driven by `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultVfs {
            shared: Arc::new(Mutex::new(FaultState {
                rng,
                plan,
                inodes: BTreeMap::new(),
                next_inode: 1,
                live: BTreeMap::new(),
                durable: BTreeMap::new(),
                ops: 0,
                crashed: false,
                log: Vec::new(),
            })),
        }
    }

    fn state(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.shared.lock().expect("fault vfs lock")
    }

    /// Number of operations issued so far (the crash-point space).
    pub fn op_count(&self) -> u64 {
        self.state().ops
    }

    /// True once the crash point has fired.
    pub fn crashed(&self) -> bool {
        self.state().crashed
    }

    /// The textual log of every operation and injected fault, in
    /// order. Byte-identical across runs of the same [`FaultPlan`].
    pub fn fault_log(&self) -> Vec<String> {
        self.state().log.clone()
    }

    /// The configured crash point, if any.
    pub fn plan_crash_at(&self) -> Option<u64> {
        self.state().plan.crash_at
    }

    /// Arm (or disarm) the crash point mid-run — for tests that find
    /// the interesting operation index dynamically (e.g. "crash on the
    /// next I/O operation", `set_crash_at(Some(op_count()))`).
    pub fn set_crash_at(&self, op: Option<u64>) {
        self.state().plan.crash_at = op;
    }

    /// Adjust the fault probabilities mid-run. The seed, RNG stream
    /// and crash point are unchanged, so runs stay deterministic as
    /// long as the adjustments happen at deterministic points.
    pub fn set_probabilities(&self, torn_write: f64, sync_error: f64, rename_error: f64) {
        let mut state = self.state();
        state.plan.torn_write_probability = torn_write;
        state.plan.sync_error_probability = sync_error;
        state.plan.rename_error_probability = rename_error;
    }

    /// The live (pre-crash) content of `path`, for tests.
    pub fn live_contents(&self, path: &Path) -> Option<Vec<u8>> {
        let state = self.state();
        let ino = state.live.get(path)?;
        Some(state.inodes[ino].data.clone())
    }

    /// Simulate a reboot after power loss: produce a new fault-free
    /// `FaultVfs` holding the durable state. The namespace reverts to
    /// the last directory-synced view and each file is torn at a
    /// seed-deterministic offset within its un-synced suffix. Tear
    /// decisions are appended to this (pre-crash) instance's fault
    /// log, so the log fully describes the schedule.
    pub fn reboot(&self) -> FaultVfs {
        let mut state = self.state();
        let mut tears: Vec<(PathBuf, u64)> = Vec::new();
        let mut inodes: BTreeMap<u64, Inode> = BTreeMap::new();
        let mut live: BTreeMap<PathBuf, u64> = BTreeMap::new();
        let durable_names: Vec<(PathBuf, u64)> =
            state.durable.iter().map(|(p, i)| (p.clone(), *i)).collect();
        for (path, ino) in durable_names {
            let (synced_len, data_len) = {
                let inode = &state.inodes[&ino];
                (inode.synced_len, inode.data.len())
            };
            let tear = state.rng.gen_range(synced_len..=data_len);
            let inode = &state.inodes[&ino];
            tears.push((path.clone(), tear as u64));
            inodes.insert(
                ino,
                Inode {
                    data: inode.data[..tear].to_vec(),
                    synced_len: tear,
                },
            );
            live.insert(path, ino);
        }
        for (path, tear) in &tears {
            state.log.push(format!(
                "reboot: {} survives torn to {tear} bytes",
                path.display()
            ));
        }
        let next_inode = state.next_inode;
        let durable = live.clone();
        FaultVfs {
            shared: Arc::new(Mutex::new(FaultState {
                rng: StdRng::seed_from_u64(state.plan.seed ^ 0x5eed_b007),
                plan: FaultPlan::reliable(state.plan.seed),
                inodes,
                next_inode,
                live,
                durable,
                ops: 0,
                crashed: false,
                log: Vec::new(),
            })),
        }
    }
}

impl Vfs for FaultVfs {
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut state = self.state();
        let n = state.begin("create")?;
        if state.live.contains_key(path) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} exists", path.display()),
            ));
        }
        let ino = state.alloc(Vec::new());
        state.live.insert(path.to_path_buf(), ino);
        state
            .log
            .push(format!("op {n}: create inode {ino} at {}", path.display()));
        Ok(Box::new(FaultFile {
            shared: Arc::clone(&self.shared),
            ino,
        }))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut state = self.state();
        let n = state.begin("create-truncate")?;
        let ino = state.alloc(Vec::new());
        state.live.insert(path.to_path_buf(), ino);
        state.log.push(format!(
            "op {n}: create-truncate inode {ino} at {}",
            path.display()
        ));
        Ok(Box::new(FaultFile {
            shared: Arc::clone(&self.shared),
            ino,
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut state = self.state();
        let n = state.begin("open-append")?;
        let Some(&ino) = state.live.get(path) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} not found", path.display()),
            ));
        };
        state
            .log
            .push(format!("op {n}: open inode {ino} at {}", path.display()));
        Ok(Box::new(FaultFile {
            shared: Arc::clone(&self.shared),
            ino,
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut state = self.state();
        let n = state.begin("read")?;
        let Some(&ino) = state.live.get(path) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} not found", path.display()),
            ));
        };
        let data = state.inodes[&ino].data.clone();
        state.log.push(format!(
            "op {n}: read {} bytes from inode {ino}",
            data.len()
        ));
        Ok(data)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut state = self.state();
        let n = state.begin("truncate")?;
        let Some(&ino) = state.live.get(path) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} not found", path.display()),
            ));
        };
        let inode = state.inodes.get_mut(&ino).expect("live name has inode");
        inode.data.truncate(len as usize);
        inode.synced_len = inode.synced_len.min(len as usize);
        state
            .log
            .push(format!("op {n}: truncate inode {ino} to {len} bytes"));
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = self.state();
        let n = state.begin("rename")?;
        let rename_error_probability = state.plan.rename_error_probability;
        if rename_error_probability > 0.0 && state.rng.gen_bool(rename_error_probability) {
            state.log.push(format!(
                "op {n}: RENAME FAILURE {} -> {}",
                from.display(),
                to.display()
            ));
            return Err(fault_error(format!("injected rename failure at op {n}")));
        }
        let Some(ino) = state.live.remove(from) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} not found", from.display()),
            ));
        };
        state.live.insert(to.to_path_buf(), ino);
        state.log.push(format!(
            "op {n}: rename {} -> {} (inode {ino}, not yet durable)",
            from.display(),
            to.display()
        ));
        Ok(())
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        let mut state = self.state();
        let n = state.begin("dir-fsync")?;
        let sync_error_probability = state.plan.sync_error_probability;
        if sync_error_probability > 0.0 && state.rng.gen_bool(sync_error_probability) {
            state.log.push(format!("op {n}: DIR-FSYNC FAILURE"));
            return Err(fault_error(format!(
                "injected directory fsync failure at op {n}"
            )));
        }
        let parent = path.parent().map(Path::to_path_buf);
        let in_dir = |p: &Path| p.parent().map(Path::to_path_buf) == parent;
        let synced: Vec<(PathBuf, u64)> = state
            .live
            .iter()
            .filter(|(p, _)| in_dir(p))
            .map(|(p, i)| (p.clone(), *i))
            .collect();
        state.durable.retain(|p, _| !in_dir(p));
        for (p, i) in synced {
            state.durable.insert(p, i);
        }
        state.log.push(format!(
            "op {n}: dir-fsync {} (namespace durable)",
            parent.as_deref().unwrap_or(Path::new("/")).display()
        ));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn unsynced_creates_do_not_survive_reboot() {
        let vfs = FaultVfs::new(FaultPlan::reliable(1));
        let mut file = vfs.create_new(&path("/d/a")).unwrap();
        file.append(b"hello\n").unwrap();
        file.sync_data().unwrap();
        // Content synced, but the name never was.
        let disk = vfs.reboot();
        assert!(matches!(
            disk.read(&path("/d/a")),
            Err(e) if e.kind() == io::ErrorKind::NotFound
        ));
    }

    #[test]
    fn dir_sync_makes_the_name_durable() {
        let vfs = FaultVfs::new(FaultPlan::reliable(1));
        let mut file = vfs.create_new(&path("/d/a")).unwrap();
        file.append(b"hello\n").unwrap();
        file.sync_data().unwrap();
        vfs.sync_parent_dir(&path("/d/a")).unwrap();
        let disk = vfs.reboot();
        assert_eq!(disk.read(&path("/d/a")).unwrap(), b"hello\n");
    }

    #[test]
    fn unsynced_tail_is_torn_deterministically() {
        let run = |seed| {
            let vfs = FaultVfs::new(FaultPlan::reliable(seed));
            let mut file = vfs.create_new(&path("/d/a")).unwrap();
            file.append(b"first\n").unwrap();
            file.sync_data().unwrap();
            vfs.sync_parent_dir(&path("/d/a")).unwrap();
            file.append(b"second-unsynced\n").unwrap();
            let disk = vfs.reboot();
            (disk.read(&path("/d/a")).unwrap(), vfs.fault_log())
        };
        let (data, log) = run(7);
        // The synced prefix always survives; the tail tear never cuts
        // into it.
        assert!(data.len() >= b"first\n".len());
        assert!(data.starts_with(b"first\n"));
        let (data2, log2) = run(7);
        assert_eq!(data, data2, "same seed must tear identically");
        assert_eq!(log, log2, "fault logs must be byte-identical");
    }

    #[test]
    fn unsynced_renames_roll_back() {
        let vfs = FaultVfs::new(FaultPlan::reliable(3));
        let mut a = vfs.create_new(&path("/d/a")).unwrap();
        a.append(b"old\n").unwrap();
        a.sync_data().unwrap();
        vfs.sync_parent_dir(&path("/d/a")).unwrap();
        let mut b = vfs.create_truncate(&path("/d/b")).unwrap();
        b.append(b"new\n").unwrap();
        b.sync_data().unwrap();
        vfs.rename(&path("/d/b"), &path("/d/a")).unwrap();
        // Live view sees the rename immediately…
        assert_eq!(vfs.live_contents(&path("/d/a")).unwrap(), b"new\n");
        // …but without a dir-fsync a reboot reverts it.
        let disk = vfs.reboot();
        assert_eq!(disk.read(&path("/d/a")).unwrap(), b"old\n");
        // With the dir-fsync it sticks.
        vfs.sync_parent_dir(&path("/d/a")).unwrap();
        let disk = vfs.reboot();
        assert_eq!(disk.read(&path("/d/a")).unwrap(), b"new\n");
    }

    #[test]
    fn crash_point_freezes_the_disk() {
        // Ops: 0 create, 1 append, 2 sync, 3 dir-sync.
        let vfs = FaultVfs::new(FaultPlan::crash_at(5, 2));
        let mut file = vfs.create_new(&path("/d/a")).unwrap();
        file.append(b"data\n").unwrap();
        let err = file.sync_data().unwrap_err();
        assert!(err.to_string().contains("simulated crash"), "{err}");
        assert!(vfs.crashed());
        // Everything after the crash fails too.
        assert!(vfs.read(&path("/d/a")).is_err());
        assert!(vfs.create_new(&path("/d/b")).is_err());
    }

    #[test]
    fn crash_during_append_tears_the_write() {
        // Ops: 0 create, 1 append(sync'd next)… crash at the second
        // append (op 4).
        let vfs = FaultVfs::new(FaultPlan::crash_at(11, 4));
        let mut file = vfs.create_new(&path("/d/a")).unwrap();
        file.append(b"first\n").unwrap();
        file.sync_data().unwrap();
        vfs.sync_parent_dir(&path("/d/a")).unwrap();
        assert!(file.append(b"0123456789\n").is_err());
        let disk = vfs.reboot();
        let data = disk.read(&path("/d/a")).unwrap();
        assert!(data.starts_with(b"first\n"));
        assert!(data.len() <= b"first\n0123456789\n".len());
        let log = vfs.fault_log().join("\n");
        assert!(log.contains("CRASH during append"), "{log}");
    }

    #[test]
    fn injected_torn_write_reports_an_error_but_lands_a_prefix() {
        let plan = FaultPlan {
            torn_write_probability: 1.0,
            ..FaultPlan::reliable(9)
        };
        let vfs = FaultVfs::new(plan);
        let mut file = vfs.create_new(&path("/d/a")).unwrap();
        let err = file.append(b"0123456789\n").unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        let data = vfs.live_contents(&path("/d/a")).unwrap();
        assert!(data.len() < b"0123456789\n".len());
    }

    #[test]
    fn injected_sync_errors_leave_nothing_durable() {
        let plan = FaultPlan {
            sync_error_probability: 1.0,
            ..FaultPlan::reliable(4)
        };
        let vfs = FaultVfs::new(plan);
        let mut file = vfs.create_new(&path("/d/a")).unwrap();
        file.append(b"data\n").unwrap();
        assert!(file.sync_data().is_err());
        assert!(vfs.sync_parent_dir(&path("/d/a")).is_err());
    }
}
