//! Differential property tests for the matching engine.
//!
//! Random instances (via the deterministic generator in `good_core::gen`)
//! and random small patterns are thrown at five independent engines —
//! the sequential planned search, the morsel-parallel planned search
//! (forced onto the parallel path with `parallel_threshold: 0`), the
//! naive cross-product enumerator, the worst-case-optimal generic
//! join, and the materializing binary join — which must agree bit for
//! bit. A second suite drives random GOOD operations and audits every
//! instance invariant (including adjacency-index/graph agreement and
//! incremental-planner-statistics/rebuild agreement) afterwards.

use good_core::gen::{random_instance, GenConfig};
use good_core::matching::{find_matchings_naive, find_matchings_with, MatchConfig};
use good_core::ops::{EdgeDeletion, NodeDeletion};
use good_core::pattern::Pattern;
use good_core::planner::find_matchings_binary;
use good_core::value::Value;
use good_core::wcoj::find_matchings_wcoj;
use good_graph::NodeId;
use proptest::prelude::*;

/// Blueprint for a random pattern over `bench_scheme`: up to three Info
/// nodes, random `links-to` edges among them (some negated), optional
/// exact-name anchors, optional `created`-date nodes, and optionally a
/// negated satellite node.
#[derive(Debug, Clone)]
struct PatternSpec {
    info_nodes: usize,
    links: Vec<(usize, usize, bool)>,
    name_anchor: Option<(usize, u8)>,
    date_probe: Option<usize>,
    negated_satellite: bool,
}

fn arb_pattern_spec() -> impl Strategy<Value = PatternSpec> {
    (
        1usize..=3,
        proptest::collection::vec((any::<usize>(), any::<usize>(), any::<bool>()), 0..3),
        any::<bool>(),
        (any::<usize>(), 0u8..30),
        any::<bool>(),
        any::<usize>(),
        any::<bool>(),
    )
        .prop_map(
            |(info_nodes, links, has_name, name, has_date, date_node, negated_satellite)| {
                PatternSpec {
                    info_nodes,
                    links,
                    name_anchor: has_name.then_some((name.0, name.1)),
                    date_probe: has_date.then_some(date_node),
                    negated_satellite,
                }
            },
        )
}

fn build_pattern(spec: &PatternSpec) -> Pattern {
    let mut pattern = Pattern::new();
    let infos: Vec<NodeId> = (0..spec.info_nodes).map(|_| pattern.node("Info")).collect();
    for (src, dst, negated) in &spec.links {
        let src = infos[src % infos.len()];
        let dst = infos[dst % infos.len()];
        if *negated {
            pattern.negated_edge(src, "links-to", dst);
        } else {
            pattern.edge(src, "links-to", dst);
        }
    }
    if let Some((node, index)) = &spec.name_anchor {
        let name = pattern.printable("String", Value::str(format!("info-{index}")));
        pattern.edge(infos[node % infos.len()], "name", name);
    }
    if let Some(node) = &spec.date_probe {
        let date = pattern.node("Date");
        pattern.edge(infos[node % infos.len()], "created", date);
    }
    if spec.negated_satellite {
        let satellite = pattern.negated_node("Info");
        pattern.edge(infos[0], "links-to", satellite);
    }
    pattern
}

fn arb_gen_config() -> impl Strategy<Value = GenConfig> {
    (1usize..=24, 0u64..1_000_000, 1usize..=5).prop_map(|(infos, seed, distinct_dates)| GenConfig {
        infos,
        avg_links: 2.0,
        distinct_dates,
        seed,
    })
}

proptest! {
    /// Sequential ≡ parallel ≡ naive on random instances and patterns.
    #[test]
    fn engines_agree(config in arb_gen_config(), spec in arb_pattern_spec()) {
        let db = random_instance(&config);
        let pattern = build_pattern(&spec);
        let sequential =
            find_matchings_with(&pattern, &db, MatchConfig::sequential()).expect("valid pattern");
        let parallel = find_matchings_with(
            &pattern,
            &db,
            MatchConfig { threads: 4, parallel_threshold: 0 },
        )
        .expect("valid pattern");
        let naive = find_matchings_naive(&pattern, &db).expect("valid pattern");
        let wcoj = find_matchings_wcoj(&pattern, &db).expect("valid pattern");
        let binary = find_matchings_binary(&pattern, &db).expect("valid pattern");
        prop_assert_eq!(&sequential, &parallel, "sequential vs parallel");
        prop_assert_eq!(&sequential, &naive, "planned vs naive");
        prop_assert_eq!(&sequential, &wcoj, "planned vs generic join");
        prop_assert_eq!(&sequential, &binary, "planned vs binary join");
    }

    /// Deleting random nodes and edges through the batched operation
    /// paths preserves every instance invariant, including exact
    /// agreement of the incrementally maintained adjacency index with a
    /// fresh rebuild (checked inside `validate`).
    #[test]
    fn batched_deletions_preserve_invariants(
        config in arb_gen_config(),
        name_index in 0u8..30,
        delete_sources in any::<bool>(),
    ) {
        let mut db = random_instance(&config);

        // ED: unlink every links-to edge matched by a 2-node pattern.
        let mut p = Pattern::new();
        let src = p.node("Info");
        let dst = p.node("Info");
        p.edge(src, "links-to", dst);
        let target = if delete_sources { src } else { dst };
        EdgeDeletion::single(p.clone(), src, "links-to", dst)
            .apply(&mut db)
            .expect("edge deletion applies");
        db.validate().expect("invariants after edge deletion");

        // ND: delete one named info (if the name exists) with all
        // incident edges.
        let mut p2 = Pattern::new();
        let info = p2.node("Info");
        let name = p2.printable("String", Value::str(format!("info-{name_index}")));
        p2.edge(info, "name", name);
        NodeDeletion::new(p2, info).apply(&mut db).expect("node deletion applies");
        db.validate().expect("invariants after node deletion");

        // ND over the (now edgeless) links pattern is a no-op but must
        // still keep every index coherent.
        NodeDeletion::new(p, target).apply(&mut db).expect("no-op deletion applies");
        db.validate().expect("invariants after no-op deletion");
    }
}
