//! Pattern matching — the engine every GOOD operation is driven by.
//!
//! Section 3 of the paper: "a matching of J in I is a total mapping
//! `i : M → N` satisfying (1) labels are preserved, (2) print labels are
//! preserved, (3) edges are preserved." Matchings are graph
//! homomorphisms — *not* required to be injective.
//!
//! Two engines are provided:
//!
//! * [`find_matchings`] — the production engine: backtracking search
//!   with dynamic most-constrained-node selection, candidate derivation
//!   from the instance's label/printable indexes and from edges to
//!   already-bound neighbours. Handles crossed (negated) parts by the
//!   paper's extension semantics and printable predicates.
//! * [`find_matchings_naive`] — candidate cross-product enumeration with
//!   a post-hoc edge filter. Exponential; kept as differential-testing
//!   ground truth and as the baseline of benchmark E1.
//!
//! Both return matchings in a canonical deterministic order so that the
//! set-oriented operations of Section 3 are reproducible run to run.

use crate::error::{GoodError, Result};
use crate::instance::Instance;
use crate::pattern::{Pattern, PatternNode, PatternNodeKind};
use good_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A matching: a total mapping from pattern nodes to instance nodes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Matching(BTreeMap<NodeId, NodeId>);

impl Matching {
    /// The image of a pattern node.
    ///
    /// # Panics
    /// Panics if `pattern_node` is not in the matching's domain — GOOD
    /// operations only ever ask for nodes of their own source pattern.
    pub fn image(&self, pattern_node: NodeId) -> NodeId {
        self.0[&pattern_node]
    }

    /// The image, or `None` when outside the domain.
    pub fn get(&self, pattern_node: NodeId) -> Option<NodeId> {
        self.0.get(&pattern_node).copied()
    }

    /// Iterate over `(pattern node, instance node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.0.iter().map(|(p, i)| (*p, *i))
    }

    /// Number of bound pattern nodes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty matching (of the empty pattern).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Build from pairs (for tests).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        Matching(pairs.into_iter().collect())
    }
}

/// Does the instance node `candidate` satisfy `node`'s local constraints
/// (label, print value, predicate)?
fn node_compatible(instance: &Instance, node: &PatternNode, candidate: NodeId) -> bool {
    let PatternNodeKind::Class(label) = &node.kind else {
        return false;
    };
    if instance.node_label(candidate) != Some(label) {
        return false;
    }
    if let Some(required) = &node.print {
        if instance.print_value(candidate) != Some(required) {
            return false;
        }
    }
    if let Some(predicate) = &node.predicate {
        match instance.print_value(candidate) {
            Some(value) if predicate.matches(value) => {}
            _ => return false,
        }
    }
    true
}

/// The backtracking core: extend `binding` to cover all of `order`,
/// invoking `on_match` for each complete assignment. Returns `false`
/// from `on_match` to stop the search early.
struct Search<'a> {
    pattern: &'a Pattern,
    instance: &'a Instance,
    nodes: Vec<NodeId>,
}

impl<'a> Search<'a> {
    /// Candidate instance nodes for `pnode` given the current partial
    /// `binding`, cheapest source first.
    fn candidates(&self, pnode: NodeId, binding: &BTreeMap<NodeId, NodeId>) -> Vec<NodeId> {
        let data = self.pattern.graph().node(pnode).expect("live pattern node");
        let PatternNodeKind::Class(label) = &data.kind else {
            return Vec::new();
        };
        // Exact printable value: at most one candidate via the index.
        if let Some(value) = &data.print {
            return match self.instance.find_printable(label, value) {
                Some(node) => vec![node],
                None => Vec::new(),
            };
        }
        // Prefer deriving candidates from a bound neighbour: follow the
        // connecting edge in the instance.
        let mut best: Option<Vec<NodeId>> = None;
        for edge in self.pattern.graph().out_edges(pnode) {
            if edge.payload.negated {
                continue;
            }
            if let Some(&bound) = binding.get(&edge.dst) {
                let cands: Vec<NodeId> = self
                    .instance
                    .sources(bound, &edge.payload.label)
                    .filter(|c| node_compatible(self.instance, data, *c))
                    .collect();
                if best.as_ref().is_none_or(|b| cands.len() < b.len()) {
                    best = Some(cands);
                }
            }
        }
        for edge in self.pattern.graph().in_edges(pnode) {
            if edge.payload.negated {
                continue;
            }
            if let Some(&bound) = binding.get(&edge.src) {
                let cands: Vec<NodeId> = self
                    .instance
                    .targets(bound, &edge.payload.label)
                    .filter(|c| node_compatible(self.instance, data, *c))
                    .collect();
                if best.as_ref().is_none_or(|b| cands.len() < b.len()) {
                    best = Some(cands);
                }
            }
        }
        if let Some(cands) = best {
            let mut cands = cands;
            cands.sort();
            cands.dedup();
            return cands;
        }
        // Fall back to the label index.
        self.instance
            .nodes_with_label(label)
            .filter(|c| node_compatible(self.instance, data, *c))
            .collect()
    }

    /// All (non-negated) pattern edges between bound nodes must exist in
    /// the instance once both endpoints are bound. We check edges
    /// incident to the node just bound.
    fn edges_consistent(&self, pnode: NodeId, binding: &BTreeMap<NodeId, NodeId>) -> bool {
        let image = binding[&pnode];
        for edge in self.pattern.graph().out_edges(pnode) {
            if edge.payload.negated {
                continue;
            }
            if let Some(&dst) = binding.get(&edge.dst) {
                if !self.instance.has_edge(image, &edge.payload.label, dst) {
                    return false;
                }
            }
        }
        for edge in self.pattern.graph().in_edges(pnode) {
            if edge.payload.negated {
                continue;
            }
            // Self-loops were handled by the out_edges pass.
            if edge.src == pnode {
                continue;
            }
            if let Some(&src) = binding.get(&edge.src) {
                if !self.instance.has_edge(src, &edge.payload.label, image) {
                    return false;
                }
            }
        }
        true
    }

    /// A cheap upper-bound estimate of `pnode`'s candidate count under
    /// the current binding, without materializing the list. Used for
    /// most-constrained-node selection: full lists are built only for
    /// the node actually chosen, which keeps a k-node pattern on an
    /// n-node instance near O(n·dᵏ⁻¹) instead of O(k·n) *per step*.
    fn candidate_estimate(&self, pnode: NodeId, binding: &BTreeMap<NodeId, NodeId>) -> usize {
        let data = self.pattern.graph().node(pnode).expect("live pattern node");
        let PatternNodeKind::Class(label) = &data.kind else {
            return 0;
        };
        if data.print.is_some() {
            return 1;
        }
        let mut best = self.instance.label_count(label);
        for edge in self.pattern.graph().out_edges(pnode) {
            if edge.payload.negated {
                continue;
            }
            if let Some(&bound) = binding.get(&edge.dst) {
                best = best.min(self.instance.sources(bound, &edge.payload.label).count());
            }
        }
        for edge in self.pattern.graph().in_edges(pnode) {
            if edge.payload.negated {
                continue;
            }
            if let Some(&bound) = binding.get(&edge.src) {
                best = best.min(self.instance.targets(bound, &edge.payload.label).count());
            }
        }
        best
    }

    fn solve(
        &self,
        binding: &mut BTreeMap<NodeId, NodeId>,
        on_match: &mut impl FnMut(&BTreeMap<NodeId, NodeId>) -> bool,
    ) -> bool {
        if binding.len() == self.nodes.len() {
            return on_match(binding);
        }
        // Most-constrained-node selection on cheap estimates; only the
        // winner's candidate list is materialized.
        let next = self
            .nodes
            .iter()
            .filter(|n| !binding.contains_key(n))
            .map(|&n| (self.candidate_estimate(n, binding), n))
            .min()
            .map(|(_, n)| n)
            .expect("at least one unbound node");
        let candidates = self.candidates(next, binding);
        for candidate in candidates {
            binding.insert(next, candidate);
            if self.edges_consistent(next, binding) && !self.solve(binding, on_match) {
                return false;
            }
            binding.remove(&next);
        }
        true
    }
}

/// Can `matching` (over the positive part) be extended to a matching of
/// the complete (unnegated) pattern?
fn extends_to_full(pattern: &Pattern, instance: &Instance, matching: &Matching) -> bool {
    let full = pattern.unnegated();
    let nodes: Vec<NodeId> = full.graph().node_ids().collect();
    let mut binding: BTreeMap<NodeId, NodeId> = matching.0.clone();
    // Pre-bound part must already satisfy the full pattern's edges among
    // bound nodes (crossed edges between positive nodes).
    for &node in matching.0.keys() {
        let search = Search {
            pattern: &full,
            instance,
            nodes: nodes.clone(),
        };
        if !search.edges_consistent(node, &binding) {
            return false;
        }
    }
    let search = Search {
        pattern: &full,
        instance,
        nodes,
    };
    let mut found = false;
    search.solve(&mut binding, &mut |_| {
        found = true;
        false // stop at first witness
    });
    found
}

/// Find all matchings of `pattern` in `instance`, in canonical order.
///
/// Crossed parts are evaluated with the paper's semantics: a matching of
/// the positive part survives iff it *cannot* be enlarged to the
/// complete pattern (Section 4.1, Figure 27).
/// # Example
///
/// ```
/// use good_core::prelude::*;
///
/// let scheme = SchemeBuilder::new()
///     .object("Info")
///     .multivalued("Info", "links-to", "Info")
///     .build();
/// let mut db = Instance::new(scheme);
/// let a = db.add_object("Info")?;
/// let b = db.add_object("Info")?;
/// db.add_edge(a, "links-to", b)?;
///
/// let mut pattern = Pattern::new();
/// let src = pattern.node("Info");
/// let dst = pattern.node("Info");
/// pattern.edge(src, "links-to", dst);
///
/// let matchings = find_matchings(&pattern, &db)?;
/// assert_eq!(matchings.len(), 1);
/// assert_eq!(matchings[0].image(src), a);
/// assert_eq!(matchings[0].image(dst), b);
/// # Ok::<(), GoodError>(())
/// ```
pub fn find_matchings(pattern: &Pattern, instance: &Instance) -> Result<Vec<Matching>> {
    if pattern.has_method_head() {
        return Err(GoodError::InvalidPattern(
            "patterns with method-head nodes must be rewritten by a method call before matching"
                .into(),
        ));
    }
    pattern.validate(instance.scheme())?;

    let positive = pattern.positive_part();
    let nodes: Vec<NodeId> = positive.graph().node_ids().collect();
    let search = Search {
        pattern: &positive,
        instance,
        nodes,
    };
    let mut results = Vec::new();
    let mut binding = BTreeMap::new();
    search.solve(&mut binding, &mut |complete| {
        results.push(Matching(complete.clone()));
        true
    });
    results.sort();
    results.dedup();

    if pattern.has_negation() {
        results.retain(|m| !extends_to_full(pattern, instance, m));
    }
    Ok(results)
}

/// True if the pattern matches at least once (early-exit variant).
pub fn matches_once(pattern: &Pattern, instance: &Instance) -> Result<bool> {
    // Negation requires full enumeration of the positive part anyway
    // only per-matching; reuse find_matchings for simplicity there.
    if pattern.has_negation() {
        return Ok(!find_matchings(pattern, instance)?.is_empty());
    }
    if pattern.has_method_head() {
        return Err(GoodError::InvalidPattern(
            "patterns with method-head nodes must be rewritten before matching".into(),
        ));
    }
    pattern.validate(instance.scheme())?;
    let nodes: Vec<NodeId> = pattern.graph().node_ids().collect();
    let search = Search {
        pattern,
        instance,
        nodes,
    };
    let mut found = false;
    let mut binding = BTreeMap::new();
    search.solve(&mut binding, &mut |_| {
        found = true;
        false
    });
    Ok(found)
}

/// Ablation variant of [`find_matchings`]: backtracking with the same
/// candidate derivation but a *static* node order (pattern-node id
/// order) instead of dynamic most-constrained-node selection. Exists to
/// quantify, in benchmark E1, how much the selection heuristic buys.
pub fn find_matchings_static_order(
    pattern: &Pattern,
    instance: &Instance,
) -> Result<Vec<Matching>> {
    if pattern.has_method_head() {
        return Err(GoodError::InvalidPattern(
            "patterns with method-head nodes must be rewritten before matching".into(),
        ));
    }
    pattern.validate(instance.scheme())?;
    let positive = pattern.positive_part();
    let mut order: Vec<NodeId> = positive.graph().node_ids().collect();
    order.sort();
    let search = Search {
        pattern: &positive,
        instance,
        nodes: order.clone(),
    };

    fn solve_static(
        search: &Search<'_>,
        order: &[NodeId],
        depth: usize,
        binding: &mut BTreeMap<NodeId, NodeId>,
        results: &mut Vec<Matching>,
    ) {
        if depth == order.len() {
            results.push(Matching(binding.clone()));
            return;
        }
        let next = order[depth];
        for candidate in search.candidates(next, binding) {
            binding.insert(next, candidate);
            if search.edges_consistent(next, binding) {
                solve_static(search, order, depth + 1, binding, results);
            }
            binding.remove(&next);
        }
    }

    let mut results = Vec::new();
    solve_static(&search, &order, 0, &mut BTreeMap::new(), &mut results);
    results.sort();
    results.dedup();
    if pattern.has_negation() {
        results.retain(|m| !extends_to_full(pattern, instance, m));
    }
    Ok(results)
}

/// Naive enumeration: per-node candidate lists, full cross product,
/// post-hoc edge check. Ground truth for differential tests and the
/// baseline of benchmark E1. Negation is evaluated the same way as the
/// planned engine.
pub fn find_matchings_naive(pattern: &Pattern, instance: &Instance) -> Result<Vec<Matching>> {
    if pattern.has_method_head() {
        return Err(GoodError::InvalidPattern(
            "patterns with method-head nodes must be rewritten before matching".into(),
        ));
    }
    pattern.validate(instance.scheme())?;
    let positive = pattern.positive_part();
    let nodes: Vec<NodeId> = positive.graph().node_ids().collect();

    let mut candidate_lists: Vec<Vec<NodeId>> = Vec::with_capacity(nodes.len());
    for &node in &nodes {
        let data = positive.graph().node(node).expect("live");
        let PatternNodeKind::Class(label) = &data.kind else {
            return Err(GoodError::InvalidPattern(
                "method head in positive part".into(),
            ));
        };
        let cands: Vec<NodeId> = instance
            .nodes_with_label(label)
            .filter(|c| node_compatible(instance, data, *c))
            .collect();
        candidate_lists.push(cands);
    }

    let mut results = Vec::new();
    let mut assignment: Vec<usize> = vec![0; nodes.len()];
    'outer: loop {
        // Build the binding for the current assignment.
        if candidate_lists.iter().all(|c| !c.is_empty()) || nodes.is_empty() {
            let binding: BTreeMap<NodeId, NodeId> = nodes
                .iter()
                .enumerate()
                .map(|(k, &n)| (n, candidate_lists[k][assignment[k]]))
                .collect();
            let ok = positive.graph().edges().all(|edge| {
                edge.payload.negated
                    || instance.has_edge(
                        binding[&edge.src],
                        &edge.payload.label,
                        binding[&edge.dst],
                    )
            });
            if ok {
                results.push(Matching(binding));
            }
        } else {
            break;
        }
        // Advance the odometer.
        if nodes.is_empty() {
            break;
        }
        let mut k = nodes.len();
        loop {
            if k == 0 {
                break 'outer;
            }
            k -= 1;
            assignment[k] += 1;
            if assignment[k] < candidate_lists[k].len() {
                break;
            }
            assignment[k] = 0;
        }
    }
    results.sort();
    results.dedup();
    if pattern.has_negation() {
        results.retain(|m| !extends_to_full(pattern, instance, m));
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::ValuePredicate;
    use crate::scheme::{Scheme, SchemeBuilder};
    use crate::value::{Value, ValueType};

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .printable("Date", ValueType::Date)
            .functional("Info", "name", "String")
            .functional("Info", "created", "Date")
            .functional("Info", "modified", "Date")
            .multivalued("Info", "links-to", "Info")
            .build()
    }

    /// A small slice of the paper's instance: Rock links to The Doors
    /// and Pinkfloyd; Jazz links to nothing.
    fn small_instance() -> (Instance, [NodeId; 4]) {
        let mut db = Instance::new(scheme());
        let rock = db.add_object("Info").unwrap();
        let doors = db.add_object("Info").unwrap();
        let floyd = db.add_object("Info").unwrap();
        let jazz = db.add_object("Info").unwrap();
        let names = [
            ("Rock", rock),
            ("The Doors", doors),
            ("Pinkfloyd", floyd),
            ("Jazz", jazz),
        ];
        for (name, node) in names {
            let s = db.add_printable("String", name).unwrap();
            db.add_edge(node, "name", s).unwrap();
        }
        let d14 = db.add_printable("Date", Value::date(1990, 1, 14)).unwrap();
        let d12 = db.add_printable("Date", Value::date(1990, 1, 12)).unwrap();
        db.add_edge(rock, "created", d14).unwrap();
        db.add_edge(doors, "created", d12).unwrap();
        db.add_edge(floyd, "created", d14).unwrap();
        db.add_edge(jazz, "created", d12).unwrap();
        db.add_edge(rock, "links-to", doors).unwrap();
        db.add_edge(rock, "links-to", floyd).unwrap();
        (db, [rock, doors, floyd, jazz])
    }

    /// The paper's Figure 4 pattern: Info named Rock created Jan 14 1990
    /// linking to another Info.
    fn figure4() -> (Pattern, NodeId, NodeId) {
        let mut p = Pattern::new();
        let info = p.node("Info");
        let date = p.printable("Date", Value::date(1990, 1, 14));
        let name = p.printable("String", "Rock");
        let other = p.node("Info");
        p.edge(info, "created", date);
        p.edge(info, "name", name);
        p.edge(info, "links-to", other);
        (p, info, other)
    }

    #[test]
    fn figure4_has_exactly_two_matchings() {
        let (db, [rock, doors, floyd, _]) = small_instance();
        let (pattern, info, other) = figure4();
        let matchings = find_matchings(&pattern, &db).unwrap();
        assert_eq!(matchings.len(), 2);
        for m in &matchings {
            assert_eq!(m.image(info), rock);
        }
        let others: Vec<NodeId> = matchings.iter().map(|m| m.image(other)).collect();
        assert!(others.contains(&doors) && others.contains(&floyd));
    }

    #[test]
    fn planned_equals_naive_equals_static() {
        let (db, _) = small_instance();
        let (pattern, _, _) = figure4();
        let a = find_matchings(&pattern, &db).unwrap();
        let b = find_matchings_naive(&pattern, &db).unwrap();
        let c = find_matchings_static_order(&pattern, &db).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn static_order_handles_negation() {
        let (db, [rock, ..]) = small_instance();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let other = p.negated_node("Info");
        p.edge(info, "links-to", other);
        let planned = find_matchings(&p, &db).unwrap();
        let fixed = find_matchings_static_order(&p, &db).unwrap();
        assert_eq!(planned, fixed);
        assert!(fixed.iter().all(|m| m.image(info) != rock));
    }

    #[test]
    fn empty_pattern_has_one_empty_matching() {
        let (db, _) = small_instance();
        let matchings = find_matchings(&Pattern::new(), &db).unwrap();
        assert_eq!(matchings.len(), 1);
        assert!(matchings[0].is_empty());
        let naive = find_matchings_naive(&Pattern::new(), &db).unwrap();
        assert_eq!(naive, matchings);
    }

    #[test]
    fn matchings_are_homomorphisms_not_injections() {
        // Pattern: Info -links-to-> Info, both unconstrained. A self-link
        // would match with both nodes equal. Build one.
        let mut db = Instance::new(scheme());
        let a = db.add_object("Info").unwrap();
        db.add_edge(a, "links-to", a).unwrap();
        let mut p = Pattern::new();
        let x = p.node("Info");
        let y = p.node("Info");
        p.edge(x, "links-to", y);
        let matchings = find_matchings(&p, &db).unwrap();
        assert_eq!(matchings.len(), 1);
        assert_eq!(matchings[0].image(x), matchings[0].image(y));
        assert_eq!(find_matchings_naive(&p, &db).unwrap(), matchings);
    }

    #[test]
    fn unmatched_pattern_yields_nothing() {
        let (db, _) = small_instance();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let name = p.printable("String", "Mozart");
        p.edge(info, "name", name);
        assert!(find_matchings(&p, &db).unwrap().is_empty());
        assert!(!matches_once(&p, &db).unwrap());
    }

    #[test]
    fn disconnected_pattern_takes_cross_product() {
        let (db, _) = small_instance();
        let mut p = Pattern::new();
        p.node("Info");
        p.node("Info");
        let matchings = find_matchings(&p, &db).unwrap();
        assert_eq!(matchings.len(), 16); // 4 × 4
        assert_eq!(find_matchings_naive(&p, &db).unwrap(), matchings);
    }

    #[test]
    fn negated_edge_filters_matchings() {
        // Figure 26 in miniature: infos whose created date has no
        // modified edge from the same info.
        let (mut db, [rock, ..]) = small_instance();
        let d14 = db
            .find_printable(&"Date".into(), &Value::date(1990, 1, 14))
            .unwrap();
        db.add_edge(rock, "modified", d14).unwrap();

        let mut p = Pattern::new();
        let info = p.node("Info");
        let date = p.node("Date");
        p.edge(info, "created", date);
        p.negated_edge(info, "modified", date);

        let matchings = find_matchings(&p, &db).unwrap();
        // rock's created==modified date, so rock is excluded; doors,
        // floyd, jazz survive.
        assert_eq!(matchings.len(), 3);
        assert!(matchings.iter().all(|m| m.image(info) != rock));
        assert_eq!(find_matchings_naive(&p, &db).unwrap(), matchings);
    }

    #[test]
    fn negated_node_filters_matchings() {
        // Infos that do not link to anything.
        let (db, [rock, doors, floyd, jazz]) = small_instance();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let other = p.negated_node("Info");
        p.edge(info, "links-to", other);
        let matchings = find_matchings(&p, &db).unwrap();
        let images: Vec<NodeId> = matchings.iter().map(|m| m.image(info)).collect();
        assert!(!images.contains(&rock));
        assert!(images.contains(&doors) && images.contains(&floyd) && images.contains(&jazz));
        assert_eq!(find_matchings_naive(&p, &db).unwrap(), matchings);
    }

    #[test]
    fn predicate_ranges() {
        let (db, [rock, doors, floyd, jazz]) = small_instance();
        // Infos created in the window Jan 13–31, 1990.
        let mut p = Pattern::new();
        let info = p.node("Info");
        let date = p.predicate_node(
            "Date",
            ValuePredicate::Between(Value::date(1990, 1, 13), Value::date(1990, 1, 31)),
        );
        p.edge(info, "created", date);
        let matchings = find_matchings(&p, &db).unwrap();
        let images: Vec<NodeId> = matchings.iter().map(|m| m.image(info)).collect();
        assert_eq!(images.len(), 2);
        assert!(images.contains(&rock) && images.contains(&floyd));
        assert!(!images.contains(&doors) && !images.contains(&jazz));
        assert_eq!(find_matchings_naive(&p, &db).unwrap(), matchings);
    }

    #[test]
    fn matchings_are_deterministic_and_sorted() {
        let (db, _) = small_instance();
        let mut p = Pattern::new();
        p.node("Info");
        let a = find_matchings(&p, &db).unwrap();
        let b = find_matchings(&p, &db).unwrap();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(a, sorted);
    }

    #[test]
    fn method_head_patterns_rejected() {
        let (db, _) = small_instance();
        let mut p = Pattern::new();
        p.method_head("M");
        assert!(matches!(
            find_matchings(&p, &db),
            Err(GoodError::InvalidPattern(_))
        ));
    }

    #[test]
    fn invalid_pattern_is_an_error() {
        let (db, _) = small_instance();
        let mut p = Pattern::new();
        p.node("Nope");
        assert!(find_matchings(&p, &db).is_err());
    }

    #[test]
    fn matches_once_early_exit() {
        let (db, _) = small_instance();
        let mut p = Pattern::new();
        p.node("Info");
        assert!(matches_once(&p, &db).unwrap());
    }
}
