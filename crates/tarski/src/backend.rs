//! Pattern matching over the Tarski store.
//!
//! Every pattern edge `m —λ→ n` compiles to the Tarski expression
//! `class:λ(m) ; [print coreflexive]? ; edge:λ ; [print]? ; class:λ(n)`,
//! which evaluates to exactly the instance edges this pattern edge may
//! map onto. The pattern's conjunctive query over those per-edge
//! relations is then solved by a variable-elimination join.
//!
//! Path expressions — the paper's Section 1 point that "the same and
//! even greater functionality of path expressions can also be expressed
//! graphically" — get a direct compilation: a chain pattern becomes one
//! composition chain, evaluated entirely inside the algebra
//! ([`TarskiBackend::eval_path`]).

use crate::algebra::TarskiExpr;
use crate::binrel::BinRel;
use crate::store::{class_rel, edge_rel, print_rel, TarskiStore};
use good_core::error::{GoodError, Result};
use good_core::instance::Instance;
use good_core::label::Label;
use good_core::matching::Matching;
use good_core::pattern::{Pattern, PatternNodeKind};
use good_graph::NodeId;
use std::collections::BTreeMap;

/// A pattern evaluator over a [`TarskiStore`].
#[derive(Debug, Clone)]
pub struct TarskiBackend {
    store: TarskiStore,
}

impl TarskiBackend {
    /// Load an instance.
    pub fn from_instance(db: &Instance) -> Self {
        TarskiBackend {
            store: TarskiStore::from_instance(db),
        }
    }

    /// Access the underlying store.
    pub fn store(&self) -> &TarskiStore {
        &self.store
    }

    /// The coreflexive expression constraining one pattern node.
    fn node_expr(pattern: &Pattern, node: NodeId) -> Result<TarskiExpr> {
        let data = pattern.graph().node(node).expect("live pattern node");
        let PatternNodeKind::Class(label) = &data.kind else {
            return Err(GoodError::InvalidPattern(
                "method heads are not evaluable by the Tarski backend".into(),
            ));
        };
        let mut expr = TarskiExpr::base(class_rel(label));
        if let Some(value) = &data.print {
            expr = expr.then(TarskiExpr::base(print_rel(label, value)));
        }
        Ok(expr)
    }

    /// The binary relation of instance edges a pattern edge may map to.
    fn edge_relation(
        &self,
        pattern: &Pattern,
        src: NodeId,
        label: &Label,
        dst: NodeId,
    ) -> Result<BinRel<NodeId>> {
        let expr = Self::node_expr(pattern, src)?
            .then(TarskiExpr::base(edge_rel(label)))
            .then(Self::node_expr(pattern, dst)?);
        expr.eval_lenient(self.store.catalog())
    }

    /// Candidate coreflexive for an isolated pattern node.
    fn node_candidates(&self, pattern: &Pattern, node: NodeId) -> Result<Vec<NodeId>> {
        let expr = Self::node_expr(pattern, node)?;
        let coreflexive = expr.eval_lenient(self.store.catalog())?;
        Ok(coreflexive.iter().map(|(a, _)| *a).collect())
    }

    /// Evaluate a positive pattern: compile each edge to a Tarski
    /// expression, then join on shared variables.
    pub fn match_pattern(&self, pattern: &Pattern) -> Result<Vec<Matching>> {
        if pattern.has_negation() || pattern.has_method_head() {
            return Err(GoodError::InvalidPattern(
                "the Tarski backend evaluates positive patterns only".into(),
            ));
        }
        // Value predicates need a value column the binary decomposition
        // does not keep; the native matcher covers them.
        if pattern
            .graph()
            .nodes()
            .any(|node| node.payload.predicate.is_some())
        {
            return Err(GoodError::InvalidPattern(
                "the Tarski backend does not evaluate printable predicates".into(),
            ));
        }
        // Per-edge relations.
        struct EdgeRel {
            src: NodeId,
            dst: NodeId,
            relation: BinRel<NodeId>,
        }
        let mut edge_rels = Vec::new();
        for edge in pattern.graph().edges() {
            edge_rels.push(EdgeRel {
                src: edge.src,
                dst: edge.dst,
                relation: self.edge_relation(pattern, edge.src, &edge.payload.label, edge.dst)?,
            });
        }

        // Join: extend partial bindings edge by edge (cheapest relation
        // first), then sweep up isolated nodes.
        edge_rels.sort_by_key(|e| e.relation.len());
        let mut rows: Vec<BTreeMap<NodeId, NodeId>> = vec![BTreeMap::new()];
        for edge in &edge_rels {
            let mut next = Vec::new();
            for row in &rows {
                let bound_src = row.get(&edge.src).copied();
                let bound_dst = row.get(&edge.dst).copied();
                for (a, b) in edge.relation.iter() {
                    if bound_src.is_some_and(|s| s != *a) {
                        continue;
                    }
                    if bound_dst.is_some_and(|d| d != *b) {
                        continue;
                    }
                    if edge.src == edge.dst && a != b {
                        continue;
                    }
                    let mut extended = row.clone();
                    extended.insert(edge.src, *a);
                    extended.insert(edge.dst, *b);
                    next.push(extended);
                }
            }
            rows = next;
            if rows.is_empty() {
                break;
            }
        }
        // Isolated nodes (no incident edges).
        let mut isolated: Vec<NodeId> = pattern
            .graph()
            .node_ids()
            .filter(|node| {
                pattern.graph().out_degree(*node) == 0 && pattern.graph().in_degree(*node) == 0
            })
            .collect();
        isolated.sort();
        for node in isolated {
            let candidates = self.node_candidates(pattern, node)?;
            let mut next = Vec::with_capacity(rows.len() * candidates.len());
            for row in &rows {
                for candidate in &candidates {
                    let mut extended = row.clone();
                    extended.insert(node, *candidate);
                    next.push(extended);
                }
            }
            rows = next;
        }

        let mut out: Vec<Matching> = rows.into_iter().map(Matching::from_pairs).collect();
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Evaluate a *path expression* `A1 —λ1→ A2 —λ2→ ... —λk→ Ak+1`
    /// entirely inside the algebra: returns the relation of
    /// (first, last) node pairs connected by the path.
    pub fn eval_path(&self, classes: &[Label], edges: &[Label]) -> Result<BinRel<NodeId>> {
        if classes.len() != edges.len() + 1 || edges.is_empty() {
            return Err(GoodError::InvalidPattern(
                "a path needs k edges and k+1 classes".into(),
            ));
        }
        let mut expr = TarskiExpr::base(class_rel(&classes[0]));
        for (index, edge) in edges.iter().enumerate() {
            expr = expr
                .then(TarskiExpr::base(edge_rel(edge)))
                .then(TarskiExpr::base(class_rel(&classes[index + 1])));
        }
        expr.eval_lenient(self.store.catalog())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use good_core::gen::{random_instance, GenConfig};
    use good_core::matching::find_matchings;

    fn sample(seed: u64) -> Instance {
        random_instance(&GenConfig {
            infos: 30,
            avg_links: 2.0,
            distinct_dates: 4,
            seed,
        })
    }

    fn agree(pattern: &Pattern, db: &Instance) {
        let native = find_matchings(pattern, db).unwrap();
        let tarski = TarskiBackend::from_instance(db)
            .match_pattern(pattern)
            .unwrap();
        assert_eq!(native, tarski);
    }

    #[test]
    fn single_edge_pattern() {
        let db = sample(1);
        let mut p = Pattern::new();
        let a = p.node("Info");
        let b = p.node("Info");
        p.edge(a, "links-to", b);
        agree(&p, &db);
    }

    #[test]
    fn chain_pattern() {
        let db = sample(2);
        let mut p = Pattern::new();
        let a = p.node("Info");
        let b = p.node("Info");
        let c = p.node("Info");
        p.edge(a, "links-to", b);
        p.edge(b, "links-to", c);
        agree(&p, &db);
    }

    #[test]
    fn printable_constraint() {
        let db = sample(3);
        let mut p = Pattern::new();
        let info = p.node("Info");
        let name = p.printable("String", "info-4");
        p.edge(info, "name", name);
        agree(&p, &db);
    }

    #[test]
    fn isolated_nodes_cross_product() {
        let db = random_instance(&GenConfig {
            infos: 5,
            avg_links: 0.5,
            distinct_dates: 2,
            seed: 4,
        });
        let mut p = Pattern::new();
        p.node("Info");
        p.node("Info");
        agree(&p, &db);
    }

    #[test]
    fn self_loop() {
        let db = {
            let mut db = sample(5);
            let info = db.nodes_with_label(&"Info".into()).next().unwrap();
            db.add_edge(info, "links-to", info).unwrap();
            db
        };
        let mut p = Pattern::new();
        let n = p.node("Info");
        p.edge(n, "links-to", n);
        agree(&p, &db);
    }

    #[test]
    fn negation_rejected() {
        let db = sample(6);
        let mut p = Pattern::new();
        let a = p.node("Info");
        let b = p.negated_node("Info");
        p.edge(a, "links-to", b);
        assert!(TarskiBackend::from_instance(&db).match_pattern(&p).is_err());
    }

    #[test]
    fn random_differential_sweep() {
        for seed in 0..6 {
            let db = sample(100 + seed);
            let mut p = Pattern::new();
            let a = p.node("Info");
            let b = p.node("Info");
            let d = p.node("Date");
            p.edge(a, "links-to", b);
            p.edge(b, "created", d);
            agree(&p, &db);
        }
    }

    #[test]
    fn path_expression_equals_chain_pattern_endpoints() {
        let db = sample(7);
        let backend = TarskiBackend::from_instance(&db);
        let path = backend
            .eval_path(
                &[Label::new("Info"), Label::new("Info"), Label::new("Info")],
                &[Label::new("links-to"), Label::new("links-to")],
            )
            .unwrap();
        // Ground truth: endpoints of chain-pattern matchings.
        let mut p = Pattern::new();
        let a = p.node("Info");
        let b = p.node("Info");
        let c = p.node("Info");
        p.edge(a, "links-to", b);
        p.edge(b, "links-to", c);
        let matchings = find_matchings(&p, &db).unwrap();
        let expected = BinRel::from_pairs(matchings.iter().map(|m| (m.image(a), m.image(c))));
        assert_eq!(path, expected);
    }

    #[test]
    fn path_expression_validation() {
        let db = sample(8);
        let backend = TarskiBackend::from_instance(&db);
        assert!(backend.eval_path(&[Label::new("Info")], &[]).is_err());
        assert!(backend
            .eval_path(&[Label::new("Info")], &[Label::new("links-to")])
            .is_err());
    }

    #[test]
    fn predicates_rejected() {
        let db = sample(9);
        let mut p = Pattern::new();
        let info = p.node("Info");
        let name = p.predicate_node(
            "String",
            good_core::pattern::ValuePredicate::StartsWith("info".into()),
        );
        p.edge(info, "name", name);
        assert!(TarskiBackend::from_instance(&db).match_pattern(&p).is_err());
    }
}
