//! Quickstart: build a scheme, populate an instance, run a pattern
//! query, and apply a node addition — the five-minute tour of GOOD.
//!
//! Run with `cargo run --example quickstart`.

use good::model::prelude::*;

fn main() -> Result<()> {
    // ---- 1. An object base scheme (Section 2) -------------------------
    // Object classes are drawn as rectangles, printable classes as
    // ovals; functional edges are single-arrowed, multivalued edges
    // double-arrowed.
    let scheme = SchemeBuilder::new()
        .object("Document")
        .printable("String", ValueType::Str)
        .printable("Date", ValueType::Date)
        .functional("Document", "title", "String")
        .functional("Document", "created", "Date")
        .multivalued("Document", "cites", "Document")
        .build();
    println!("--- scheme ---\n{}", scheme.to_dot("quickstart"));

    // ---- 2. An instance -------------------------------------------------
    let mut db = Instance::new(scheme);
    let document = |db: &mut Instance, title: &str, date: Date| -> Result<_> {
        let doc = db.add_object("Document")?;
        let title = db.add_printable("String", title)?;
        db.add_edge(doc, "title", title)?;
        let date = db.add_printable("Date", date)?;
        db.add_edge(doc, "created", date)?;
        Ok(doc)
    };
    let survey = document(&mut db, "A Survey of Graph Models", Date::new(1990, 1, 12))?;
    let good_paper = document(
        &mut db,
        "A Graph-Oriented Object Database Model",
        Date::new(1990, 4, 2),
    )?;
    let qbe = document(&mut db, "Query-by-Example", Date::new(1977, 11, 1))?;
    db.add_edge(survey, "cites", good_paper)?;
    db.add_edge(survey, "cites", qbe)?;
    db.add_edge(good_paper, "cites", qbe)?;
    println!(
        "instance: {} nodes, {} edges (printables are deduplicated)",
        db.node_count(),
        db.edge_count()
    );

    // ---- 3. A pattern query (Section 3) ---------------------------------
    // "Documents from 1990 that cite something" — a pattern is itself a
    // small instance; matchings are label/print/edge-preserving maps.
    let mut pattern = Pattern::new();
    let doc = pattern.node("Document");
    let date = pattern.predicate_node(
        "Date",
        ValuePredicate::Between(Value::date(1990, 1, 1), Value::date(1990, 12, 31)),
    );
    let cited = pattern.node("Document");
    pattern.edge(doc, "created", date);
    pattern.edge(doc, "cites", cited);

    let matchings = find_matchings(&pattern, &db)?;
    println!("\n--- query: 1990 documents citing something ---");
    for matching in &matchings {
        let title_of = |node| {
            db.functional_target(node, &"title".into())
                .and_then(|t| db.print_value(t).cloned())
                .expect("documents have titles")
        };
        println!(
            "  {} cites {}",
            title_of(matching.image(doc)),
            title_of(matching.image(cited))
        );
    }

    // ---- 4. A node addition (Section 3.1) --------------------------------
    // Materialize the query: one `Citation` object per (citer, cited)
    // pair, with functional edges to both.
    let na = NodeAddition::new(
        pattern,
        "Citation",
        [(Label::new("from"), doc), (Label::new("to"), cited)],
    );
    let report = na.apply(&mut db)?;
    println!(
        "\nnode addition: {} matchings, {} Citation objects created",
        report.matchings,
        report.created_nodes.len()
    );

    db.validate()?;
    println!(
        "\ninstance validates; final DOT below\n{}",
        db.to_dot("final")
    );
    Ok(())
}
