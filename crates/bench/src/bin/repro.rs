//! `repro` — regenerate every figure of the paper and check every
//! Section 4.3 theorem, printing a report and emitting DOT renderings.
//!
//! Usage:
//!   repro [out-dir]     # default out-dir: ./repro-out
//!
//! The report lines double as the "measured" column of EXPERIMENTS.md.

use good_core::label::Label;
use good_core::matching::find_matchings;
use good_core::program::Env;
use good_core::value::Value;
use good_hypermedia::{build_instance, build_scheme, build_versions_instance, figures};
use std::fmt::Write as _;
use std::path::Path;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "repro-out".to_string());
    let out = Path::new(&out_dir);
    std::fs::create_dir_all(out).expect("create output directory");
    let mut report = String::new();

    macro_rules! line {
        ($($arg:tt)*) => {{
            let text = format!($($arg)*);
            println!("{text}");
            writeln!(report, "{text}").expect("write report");
        }};
    }

    // All figure DOT renderings come from the same generator the
    // golden tests diff (see crates/bench/tests/figures.rs).
    for (name, contents) in good_bench::figure_dots() {
        std::fs::write(out.join(name), contents).expect("write dot file");
    }

    line!("# GOOD figure reproduction report");
    line!("");

    // ---- Figures 1–3 -----------------------------------------------------
    let scheme = build_scheme();
    line!(
        "F1   scheme: {} object classes, {} printable classes, {} triples -> fig1-scheme.dot",
        scheme.object_labels().count(),
        scheme.printable_labels().count(),
        scheme.triples().count()
    );

    let (db0, h) = build_instance();
    line!(
        "F2-3 instance: {} nodes, {} edges; Jan 12 1990 is one shared node with {} created-sources",
        db0.node_count(),
        db0.edge_count(),
        db0.sources(
            db0.find_printable(&"Date".into(), &Value::date(1990, 1, 12))
                .expect("date"),
            &Label::new("created")
        )
        .count()
    );

    // ---- Figures 4–5 -------------------------------------------------------
    let (pattern, _) = figures::fig4_pattern();
    let matchings = find_matchings(&pattern, &db0).expect("fig4 matches");
    line!("F4-5 pattern matchings: {} (paper: 2)", matchings.len());

    // ---- Figure 6–7 ----------------------------------------------------------
    let mut db = db0.clone();
    let report6 = figures::fig6_node_addition().apply(&mut db).expect("fig6");
    line!(
        "F6-7 node addition: {} matchings, {} tag nodes added (paper: 2)",
        report6.matchings,
        report6.created_nodes.len()
    );

    // ---- Figure 8 ---------------------------------------------------------------
    let mut db = db0.clone();
    let report8 = figures::fig8_node_addition().apply(&mut db).expect("fig8");
    line!(
        "F8   aggregates: {} matchings, {} Pair nodes (paper: four matchings, four pairs)",
        report8.matchings,
        report8.created_nodes.len()
    );

    // ---- Figures 10–11 --------------------------------------------------------------
    let mut db = db0.clone();
    let report10 = figures::fig10_edge_addition()
        .apply(&mut db)
        .expect("fig10");
    line!(
        "F10-11 edge addition: {} data-creation edges (paper: 2)",
        report10.edges_added
    );

    // ---- Figures 12–13 ----------------------------------------------------------------
    let mut db = db0.clone();
    let set = figures::figs12_13_build_set(&mut db, &mut Env::new()).expect("figs12-13");
    line!(
        "F12-13 set building: Created-Jan-14-1990 contains {} infos (paper: the Jan 14 infos)",
        db.targets(set, &Label::new("contains")).count()
    );

    // ---- Figures 14–15 ------------------------------------------------------------------
    let mut db = db0.clone();
    figures::fig14_node_deletion()
        .apply(&mut db)
        .expect("fig14");
    line!(
        "F14-15 node deletion: Classical Music gone={}, Mozart isolated={} (paper: both)",
        !db.contains_node(h.classical),
        db.graph().in_degree(h.mozart) == 0 && db.contains_node(h.mozart)
    );

    // ---- Figure 16 ----------------------------------------------------------------------
    let mut db = db0.clone();
    figures::fig16_update(&mut db, &mut Env::new()).expect("fig16");
    let modified = db
        .functional_target(h.music_history, &Label::new("modified"))
        .and_then(|d| db.print_value(d).cloned());
    line!(
        "F16  update: Music History modified = {} (paper: Jan 16, 1990)",
        modified.expect("date")
    );

    // ---- Figures 17–19 ---------------------------------------------------------------------
    let (mut vdb, vh) = build_versions_instance();
    for ab in figures::fig18_abstractions() {
        ab.apply(&mut vdb).expect("fig18");
    }
    let same_group = {
        let contains = Label::new("contains");
        let g0: Vec<_> = vdb.sources(vh.documents[0], &contains).collect();
        let g1: Vec<_> = vdb.sources(vh.documents[1], &contains).collect();
        g0 == g1 && g0.len() == 1
    };
    line!(
        "F17-19 abstraction: {} Same-Info groups; equal-link-set documents share one group={} ",
        vdb.label_count(&Label::new("Same-Info")),
        same_group
    );

    // ---- Figures 20–21 -----------------------------------------------------------------------
    let mut db = db0.clone();
    db.add_printable("Date", Value::date(1990, 1, 16))
        .expect("date");
    let mut env = Env::new();
    env.register(figures::fig20_update_method());
    good_core::method::execute_call(&figures::fig21_update_call(), &mut db, &mut env)
        .expect("fig21");
    let updated = db
        .functional_target(h.music_history, &Label::new("modified"))
        .and_then(|d| db.print_value(d).cloned());
    line!(
        "F20-21 Update method: modified = {}, scheme restored = {}",
        updated.expect("date"),
        db.scheme() == &build_scheme()
    );

    // ---- Figure 22 -------------------------------------------------------------------------------
    let mut db = db0.clone();
    let mut env = Env::new();
    figures::remove_rock_old_versions(&mut db, &mut env, &h).expect("fig22");
    line!(
        "F22  R-O-V: old version deleted={}, version node deleted={}, receiver kept={}",
        !db.contains_node(h.rock_old),
        !db.contains_node(h.version),
        db.contains_node(h.rock_new)
    );

    // ---- Figures 23–25 -----------------------------------------------------------------------------
    let mut db = db0.clone();
    figures::method_e_apply(&mut db, &mut Env::new()).expect("fig23-25");
    let days = db
        .functional_target(h.music_history, &Label::new("days-unmod"))
        .and_then(|d| db.print_value(d).cloned());
    line!(
        "F23-25 Elapsed method: days-unmod(Music History) = {}, Elapsed temporaries left = {}",
        days.expect("number"),
        db.label_count(&Label::new("Elapsed"))
    );

    // ---- Figures 26–27 -------------------------------------------------------------------------------
    let mut db = db0.clone();
    let (pattern26, _, _) = figures::fig26_pattern();
    let direct = find_matchings(&pattern26, &db).expect("fig26");
    let via_macro = figures::fig27_expansion()
        .evaluate(&mut db, &mut Env::new())
        .expect("fig27");
    line!(
        "F26-27 negation: direct = {} matchings, Figure-27 macro = {} (must agree: {})",
        direct.len(),
        via_macro.len(),
        direct == via_macro
    );

    // ---- Figures 28–29 ---------------------------------------------------------------------------------
    let mut db = db0.clone();
    let (method, call) = figures::figs28_29_closure();
    let mut env = Env::new();
    env.register(method);
    good_core::method::execute_call(&call, &mut db, &mut env).expect("fig28-29");
    let rec = Label::new("rec-links-to");
    let closure_size = db
        .graph()
        .edges()
        .filter(|e| e.payload.label == rec)
        .count();
    let links = Label::new("links-to");
    let expected: usize = good_graph::algo::transitive_closure_by(db.graph(), |e| e.label == links)
        .values()
        .map(|set| set.len())
        .sum();
    line!(
        "F28-29 transitive closure: {} rec-links-to edges, graph-theoretic closure = {} (equal: {})",
        closure_size,
        expected,
        closure_size == expected
    );

    // ---- Figures 30–31 -----------------------------------------------------------------------------------
    let results = figures::fig30_query(&db0).expect("fig30");
    line!(
        "F30-31 inheritance: {} reference(s) to Jazz found, name = {}",
        results.len(),
        db0.print_value(results[0].1).expect("name")
    );

    // ---- Theorems -------------------------------------------------------------------------------------------
    line!("");
    line!("# Section 4.3 theorems");
    t1(&mut report);
    t2(&mut report);
    t3(&mut report);

    std::fs::write(out.join("report.md"), &report).expect("write report.md");
    println!("\nDOT files and report.md written to {out_dir}/");
}

fn t1(report: &mut String) {
    use good_core::value::ValueType;
    use good_relational::algebra::{Predicate, RelExpr};
    use good_relational::compile::Compiler;
    use good_relational::encode::{decode, encode};
    use good_relational::relation::{RelDatabase, RelSchema, Relation};

    let mut emp = Relation::new(RelSchema::new([
        ("name", ValueType::Str),
        ("dept", ValueType::Str),
    ]));
    for (name, dept) in [("ann", "db"), ("bob", "os"), ("cal", "db"), ("dee", "pl")] {
        emp.insert(vec![Value::str(name), Value::str(dept)])
            .expect("row");
    }
    let mut db = RelDatabase::new();
    db.add("emp", emp);
    let expr = RelExpr::base("emp")
        .select(Predicate::AttrEqConst("dept".into(), Value::str("db")))
        .project(["name"])
        .union(
            RelExpr::base("emp")
                .project(["name"])
                .difference(RelExpr::base("emp").project(["name"])),
        );
    let expected = expr.eval(&db).expect("native");
    let mut instance = encode(&db).expect("encode");
    let compiled = Compiler::new().compile(&expr, &db).expect("compile");
    compiled
        .program
        .apply(&mut instance, &mut Env::new())
        .expect("run");
    let actual = decode(&instance, &compiled.class, &compiled.schema).expect("decode");
    let text = format!(
        "T1   relational completeness: native = {} rows, GOOD simulation = {} rows, equal = {}",
        expected.len(),
        actual.len(),
        expected == actual
    );
    println!("{text}");
    report.push_str(&text);
    report.push('\n');
}

fn t2(report: &mut String) {
    use good_core::value::ValueType;
    use good_relational::encode::{class_label, encode};
    use good_relational::nested::{decode_nest, nest, nest_in_good};
    use good_relational::relation::{RelDatabase, RelSchema, Relation};

    let mut flat = Relation::new(RelSchema::new([
        ("k", ValueType::Str),
        ("v", ValueType::Str),
    ]));
    for (k, v) in [("a", "x"), ("a", "y"), ("b", "x"), ("c", "x"), ("c", "y")] {
        flat.insert(vec![Value::str(k), Value::str(v)])
            .expect("row");
    }
    let mut db = RelDatabase::new();
    db.add("t", flat.clone());
    let mut instance = encode(&db).expect("encode");
    let good_nest = nest_in_good(
        &mut instance,
        &mut Env::new(),
        &class_label("t"),
        flat.schema(),
        &["k"],
        "n",
    )
    .expect("nest in good");
    let expected = nest(&flat, &["k"], "vs").expect("nest");
    let decoded = decode_nest(
        &instance,
        &good_nest,
        &RelSchema::new([("k".to_string(), ValueType::Str)]),
        &RelSchema::new([("v".to_string(), ValueType::Str)]),
        "vs",
    )
    .expect("decode");
    let groups = instance.label_count(&good_nest.group_class);
    let text = format!(
        "T2   nested algebra: nest agrees = {}, abstraction found {} distinct relation values (a and c share one)",
        decoded.rows == expected.rows,
        groups
    );
    println!("{text}");
    report.push_str(&text);
    report.push('\n');
}

fn t3(report: &mut String) {
    use good_turing::machine::{binary_increment, Outcome};
    use good_turing::run_in_good;
    let machine = binary_increment();
    let mut all_agree = true;
    for input in ["0", "1", "1011"] {
        let expected = match machine.run(input, 100_000) {
            Outcome::Halted { config, .. } => config,
            Outcome::OutOfSteps(_) => unreachable!(),
        };
        let actual = run_in_good(&machine, input, 1_000_000).expect("halts");
        all_agree &= actual == expected;
    }
    let text = format!(
        "T3   Turing completeness: binary increment via recursive GOOD method agrees on all inputs = {all_agree}"
    );
    println!("{text}");
    report.push_str(&text);
    report.push('\n');
}
