//! The GOODQL parser: hand-rolled recursive descent, like
//! `good_core::textual` but for the MATCH/WHERE/RETURN surface.
//!
//! Errors carry the byte offset where parsing stopped;
//! [`crate::QueryError::render`] turns that into a caret-annotated
//! message. The parser never panics on arbitrary input (property-tested
//! in `tests/parser_props.rs`) and refuses query strings longer than
//! [`MAX_QUERY_LEN`] outright so a hostile client cannot feed the
//! server megabytes of text to tokenize.

use crate::ast::{Chain, CmpOp, Link, NodePattern, PathSpec, Predicate, Query};
use crate::QueryError;
use good_core::value::{Date, Value};

/// The hard cap on query-text length, in bytes.
pub const MAX_QUERY_LEN: usize = 4096;

/// Reserved words that cannot be used as variable names.
const RESERVED: &[&str] = &[
    "MATCH", "WHERE", "RETURN", "DISTINCT", "LIMIT", "AND", "NOT", "CONTAINS", "STARTS", "WITH",
    "BETWEEN", "IN", "TRUE", "FALSE", "DATE",
];

/// Parse a GOODQL query string.
pub fn parse_query(text: &str) -> Result<Query, QueryError> {
    if text.len() > MAX_QUERY_LEN {
        return Err(QueryError::Parse {
            pos: MAX_QUERY_LEN,
            message: format!(
                "query too long: {} bytes (limit {MAX_QUERY_LEN})",
                text.len()
            ),
        });
    }
    let mut parser = Parser { text, pos: 0 };
    let query = parser.query()?;
    parser.skip_ws();
    if !parser.at_end() {
        return Err(parser.error("unexpected trailing input"));
    }
    Ok(query)
}

/// Gregorian month length (proleptic, same rule as `good_core`'s
/// civil-date arithmetic).
fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        _ => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
    }
}

struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.text.len()
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn skip_ws(&mut self) {
        let rest = self.rest();
        let trimmed = rest.trim_start();
        self.pos += rest.len() - trimmed.len();
    }

    fn eat_char(&mut self, expected: char) -> Result<(), QueryError> {
        self.skip_ws();
        match self.peek() {
            Some(c) if c == expected => {
                self.pos += c.len_utf8();
                Ok(())
            }
            _ => Err(self.error(format!("expected `{expected}`"))),
        }
    }

    /// Try to consume a literal punctuation sequence (no whitespace
    /// allowed inside it). Restores the position on failure.
    fn try_punct(&mut self, punct: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(punct) {
            self.pos += punct.len();
            true
        } else {
            false
        }
    }

    /// Scan an identifier-shaped word without consuming it.
    fn peek_word(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let rest = self.rest();
        let mut end = 0;
        for (index, c) in rest.char_indices() {
            let ok = if index == 0 {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || c == '_'
            };
            if !ok {
                break;
            }
            end = index + c.len_utf8();
        }
        if end == 0 {
            None
        } else {
            Some(&rest[..end])
        }
    }

    /// Consume `keyword` (case-insensitive, whole word). Restores the
    /// position on failure.
    fn try_keyword(&mut self, keyword: &str) -> bool {
        match self.peek_word() {
            Some(word) if word.eq_ignore_ascii_case(keyword) => {
                self.pos += word.len();
                true
            }
            _ => false,
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), QueryError> {
        if self.try_keyword(keyword) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{keyword}`")))
        }
    }

    /// A variable name: an identifier that is not a reserved word.
    fn variable(&mut self) -> Result<String, QueryError> {
        let Some(word) = self.peek_word() else {
            return Err(self.error("expected a variable name"));
        };
        if RESERVED.iter().any(|kw| word.eq_ignore_ascii_case(kw)) {
            return Err(self.error(format!("`{word}` is a reserved word")));
        }
        self.pos += word.len();
        Ok(word.to_string())
    }

    /// A label: like an identifier but hyphens are allowed after the
    /// first character (`links-to`).
    fn label(&mut self) -> Result<String, QueryError> {
        self.skip_ws();
        let rest = self.rest();
        let mut end = 0;
        for (index, c) in rest.char_indices() {
            let ok = if index == 0 {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || c == '_' || c == '-'
            };
            if !ok {
                break;
            }
            end = index + c.len_utf8();
        }
        if end == 0 {
            return Err(self.error("expected a label"));
        }
        // A trailing hyphen belongs to the arrow (`-[:e]->`), not the label.
        let word = rest[..end].trim_end_matches('-');
        if word.is_empty() {
            return Err(self.error("expected a label"));
        }
        self.pos += word.len();
        Ok(word.to_string())
    }

    fn integer<T: std::str::FromStr>(&mut self, what: &str) -> Result<T, QueryError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !c.is_ascii_digit())
            .map(|(index, _)| index)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.error(format!("expected {what}")));
        }
        let literal = &rest[..end];
        let value = literal
            .parse()
            .map_err(|_| self.error(format!("bad {what} `{literal}`")))?;
        self.pos += end;
        Ok(value)
    }

    /// A literal: string, int, real, `date(YYYY-MM-DD)`, `true`/`false`.
    fn literal(&mut self) -> Result<Value, QueryError> {
        self.skip_ws();
        let Some(first) = self.peek() else {
            return Err(self.error("expected a literal"));
        };
        if first == '"' {
            return self.string_literal().map(Value::str);
        }
        if first.is_ascii_digit() || first == '-' || first == '+' {
            return self.number_literal();
        }
        if self.try_keyword("true") {
            return Ok(Value::Bool(true));
        }
        if self.try_keyword("false") {
            return Ok(Value::Bool(false));
        }
        if self.try_keyword("date") {
            self.eat_char('(')?;
            let year: i32 = self.integer("a year")?;
            self.eat_char('-')?;
            let month: u8 = self.integer("a month")?;
            self.eat_char('-')?;
            let day: u8 = self.integer("a day")?;
            self.eat_char(')')?;
            // Full calendar validation here: `Date::new` treats an
            // impossible date as a programming error and panics, but
            // this one came over the wire.
            if month == 0 || month > 12 || day == 0 || day > days_in_month(year, month) {
                return Err(self.error(format!("bad date {year:04}-{month:02}-{day:02}")));
            }
            return Ok(Value::Date(Date::new(year, month, day)));
        }
        Err(self.error("expected a literal"))
    }

    fn string_literal(&mut self) -> Result<String, QueryError> {
        self.eat_char('"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string literal"));
            };
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(escaped) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += escaped.len_utf8();
                    match escaped {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        other => return Err(self.error(format!("unknown escape `\\{other}`"))),
                    }
                }
                other => out.push(other),
            }
        }
    }

    fn number_literal(&mut self) -> Result<Value, QueryError> {
        let rest = self.rest();
        let mut end = 0;
        for (index, c) in rest.char_indices() {
            let ok = c.is_ascii_digit() || c == '.' || ((c == '-' || c == '+') && index == 0);
            if !ok {
                break;
            }
            end = index + c.len_utf8();
        }
        let literal = &rest[..end];
        if literal.is_empty() || literal == "-" || literal == "+" {
            return Err(self.error("expected a number"));
        }
        if literal.contains('.') {
            let value: f64 = literal
                .parse()
                .map_err(|_| self.error(format!("bad real literal `{literal}`")))?;
            self.pos += end;
            Ok(Value::real(value))
        } else {
            let value: i64 = literal
                .parse()
                .map_err(|_| self.error(format!("bad integer literal `{literal}`")))?;
            self.pos += end;
            Ok(Value::Int(value))
        }
    }

    // ---- grammar ------------------------------------------------------

    fn query(&mut self) -> Result<Query, QueryError> {
        self.skip_ws();
        self.expect_keyword("MATCH")?;
        let mut chains = vec![self.chain()?];
        while self.try_punct(",") {
            chains.push(self.chain()?);
        }
        let mut predicates = Vec::new();
        if self.try_keyword("WHERE") {
            predicates.push(self.predicate()?);
            while self.try_keyword("AND") {
                predicates.push(self.predicate()?);
            }
        }
        self.expect_keyword("RETURN")?;
        let distinct = self.try_keyword("DISTINCT");
        let mut returns = vec![self.variable()?];
        while self.try_punct(",") {
            returns.push(self.variable()?);
        }
        let limit = if self.try_keyword("LIMIT") {
            Some(self.integer("a limit")?)
        } else {
            None
        };
        Ok(Query {
            chains,
            predicates,
            distinct,
            returns,
            limit,
        })
    }

    fn chain(&mut self) -> Result<Chain, QueryError> {
        let head = self.node_pattern()?;
        let mut links = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() != Some('-') {
                break;
            }
            let link = self.link()?;
            let node = self.node_pattern()?;
            links.push((link, node));
        }
        Ok(Chain { head, links })
    }

    fn node_pattern(&mut self) -> Result<NodePattern, QueryError> {
        self.skip_ws();
        let pos = self.pos;
        self.eat_char('(')?;
        let var = self.variable()?;
        let label = if self.try_punct(":") {
            Some(self.label()?)
        } else {
            None
        };
        let value = if self.try_punct("=") {
            Some(self.literal()?)
        } else {
            None
        };
        self.eat_char(')')?;
        Ok(NodePattern {
            var,
            label,
            value,
            pos,
        })
    }

    fn link(&mut self) -> Result<Link, QueryError> {
        self.skip_ws();
        let pos = self.pos;
        if !self.try_punct("-[") {
            return Err(self.error("expected a link like `-[:edge]->`"));
        }
        self.eat_char(':')?;
        let edge = self.label()?;
        let path = if self.try_punct("*") {
            Some(self.path_spec()?)
        } else {
            None
        };
        if !self.try_punct("]->") {
            return Err(self.error("expected `]->`"));
        }
        Ok(Link { edge, path, pos })
    }

    /// After the `*`: empty (`1..`), `m`, `m..`, `m..M`, or `..M`.
    fn path_spec(&mut self) -> Result<PathSpec, QueryError> {
        self.skip_ws();
        let has_min = self.peek().is_some_and(|c| c.is_ascii_digit());
        let min: u32 = if has_min { self.integer("a bound")? } else { 1 };
        if self.try_punct("..") {
            self.skip_ws();
            let has_max = self.peek().is_some_and(|c| c.is_ascii_digit());
            let max = if has_max {
                Some(self.integer("a bound")?)
            } else {
                None
            };
            Ok(PathSpec { min, max })
        } else if has_min {
            Ok(PathSpec {
                min,
                max: Some(min),
            })
        } else {
            Ok(PathSpec { min: 1, max: None })
        }
    }

    fn predicate(&mut self) -> Result<Predicate, QueryError> {
        self.skip_ws();
        let pos = self.pos;
        if self.try_keyword("NOT") {
            self.eat_char('(')?;
            let src = self.variable()?;
            self.eat_char(')')?;
            let link = self.link()?;
            if link.path.is_some() {
                return Err(QueryError::Parse {
                    pos: link.pos,
                    message: "property paths are not allowed under NOT".into(),
                });
            }
            self.eat_char('(')?;
            let dst = self.variable()?;
            self.eat_char(')')?;
            return Ok(Predicate::NoEdge {
                src,
                edge: link.edge,
                dst,
                pos,
            });
        }
        let var = self.variable()?;
        if self.try_keyword("CONTAINS") {
            self.skip_ws();
            let needle = self.string_literal()?;
            return Ok(Predicate::Contains { var, needle, pos });
        }
        if self.try_keyword("STARTS") {
            self.expect_keyword("WITH")?;
            self.skip_ws();
            let prefix = self.string_literal()?;
            return Ok(Predicate::StartsWith { var, prefix, pos });
        }
        if self.try_keyword("BETWEEN") {
            let lo = self.literal()?;
            self.expect_keyword("AND")?;
            let hi = self.literal()?;
            return Ok(Predicate::Between { var, lo, hi, pos });
        }
        if self.try_keyword("IN") {
            self.eat_char('[')?;
            let mut values = vec![self.literal()?];
            while self.try_punct(",") {
                values.push(self.literal()?);
            }
            self.eat_char(']')?;
            return Ok(Predicate::OneOf { var, values, pos });
        }
        // Longest symbols first: `<=` before `<`, `<>` before `<`.
        let op = if self.try_punct("<=") {
            CmpOp::Le
        } else if self.try_punct(">=") {
            CmpOp::Ge
        } else if self.try_punct("<>") {
            CmpOp::Ne
        } else if self.try_punct("<") {
            CmpOp::Lt
        } else if self.try_punct(">") {
            CmpOp::Gt
        } else if self.try_punct("=") {
            CmpOp::Eq
        } else {
            return Err(self.error("expected a comparison, CONTAINS, STARTS WITH, BETWEEN or IN"));
        };
        let value = self.literal()?;
        Ok(Predicate::Cmp {
            var,
            op,
            value,
            pos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> Query {
        let query = parse_query(text).expect("parse");
        let printed = query.to_string();
        let again = parse_query(&printed).expect("reparse");
        assert_eq!(query.normalized(), again.normalized(), "text: {printed}");
        query
    }

    #[test]
    fn minimal_query() {
        let q = roundtrip("MATCH (a:Info) RETURN a");
        assert_eq!(q.chains.len(), 1);
        assert_eq!(q.returns, vec!["a"]);
        assert!(!q.distinct);
    }

    #[test]
    fn chain_with_links() {
        let q = roundtrip("MATCH (a:Info)-[:links-to]->(b:Info)-[:name]->(n:String) RETURN a, n");
        assert_eq!(q.chains[0].links.len(), 2);
        assert_eq!(q.chains[0].links[0].0.edge, "links-to");
    }

    #[test]
    fn path_specs() {
        let star = roundtrip("MATCH (a:Info)-[:links-to*]->(b:Info) RETURN a, b");
        assert_eq!(
            star.chains[0].links[0].0.path,
            Some(PathSpec { min: 1, max: None })
        );
        let bounded = roundtrip("MATCH (a:Info)-[:links-to*2..4]->(b:Info) RETURN a");
        assert_eq!(
            bounded.chains[0].links[0].0.path,
            Some(PathSpec {
                min: 2,
                max: Some(4)
            })
        );
        let zero = roundtrip("MATCH (a:Info)-[:links-to*0..]->(b:Info) RETURN b");
        assert_eq!(
            zero.chains[0].links[0].0.path,
            Some(PathSpec { min: 0, max: None })
        );
        let exact = roundtrip("MATCH (a:Info)-[:links-to*3]->(b:Info) RETURN a");
        assert_eq!(
            exact.chains[0].links[0].0.path,
            Some(PathSpec {
                min: 3,
                max: Some(3)
            })
        );
        let open_min = parse_query("MATCH (a:Info)-[:links-to*..3]->(b:Info) RETURN a").unwrap();
        assert_eq!(
            open_min.chains[0].links[0].0.path,
            Some(PathSpec {
                min: 1,
                max: Some(3)
            })
        );
    }

    #[test]
    fn where_clause() {
        let q = roundtrip(
            "MATCH (a:Info)-[:name]->(n:String) WHERE n STARTS WITH \"info\" AND n <> \"info-3\" \
             RETURN a",
        );
        assert_eq!(q.predicates.len(), 2);
        let q = roundtrip(
            "MATCH (a:Info)-[:created]->(d:Date) WHERE d BETWEEN date(1990-01-01) AND \
             date(1990-01-05) RETURN a",
        );
        assert!(matches!(q.predicates[0], Predicate::Between { .. }));
        let q = roundtrip("MATCH (n:String) WHERE n IN [\"x\", \"y\"] RETURN n");
        assert!(matches!(q.predicates[0], Predicate::OneOf { .. }));
    }

    #[test]
    fn not_edge() {
        let q = roundtrip("MATCH (a:Info), (b:Info) WHERE NOT (a)-[:links-to]->(b) RETURN a, b");
        assert!(matches!(q.predicates[0], Predicate::NoEdge { .. }));
    }

    #[test]
    fn distinct_and_limit() {
        let q = roundtrip("MATCH (a:Info)-[:links-to]->(b:Info) RETURN DISTINCT b LIMIT 5");
        assert!(q.distinct);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn value_constraint() {
        let q = roundtrip("MATCH (a:Info)-[:name]->(n:String = \"info-1\") RETURN a");
        assert_eq!(q.chains[0].links[0].1.value, Some(Value::str("info-1")));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let lower = parse_query("match (a:Info) return a").unwrap();
        let upper = parse_query("MATCH (a:Info) RETURN a").unwrap();
        assert_eq!(lower.normalized(), upper.normalized());
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_query("MATCH (a:Info RETURN a").unwrap_err();
        let QueryError::Parse { pos, message } = &err else {
            panic!("expected parse error, got {err:?}");
        };
        assert!(*pos > 0);
        assert!(message.contains("expected"), "message: {message}");
    }

    #[test]
    fn reserved_words_rejected_as_variables() {
        assert!(parse_query("MATCH (match:Info) RETURN match").is_err());
    }

    #[test]
    fn oversized_query_rejected() {
        let long = format!("MATCH (a:Info) RETURN a{}", " ".repeat(MAX_QUERY_LEN));
        let err = parse_query(&long).unwrap_err();
        let QueryError::Parse { message, .. } = &err else {
            panic!("expected parse error");
        };
        assert!(message.contains("query too long"), "message: {message}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("MATCH (a:Info) RETURN a garbage!").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let q = roundtrip("MATCH (n:String = \"a\\\"b\\\\c\\nd\") RETURN n");
        assert_eq!(q.chains[0].head.value, Some(Value::str("a\"b\\c\nd")));
    }
}
