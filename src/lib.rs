//! `good` — facade crate for the GOOD reproduction.
//!
//! Re-exports the whole workspace under one roof:
//!
//! * [`graph`] — generic labeled multigraph substrate;
//! * [`model`] (from `good-core`) — schemes, instances, patterns, the five
//!   basic operations, programs, methods and macros;
//! * [`hypermedia`] — the paper's running example (Figures 1–31);
//! * [`relational`] — relational & nested relational algebra plus the
//!   completeness compilers (Section 4.3);
//! * [`tarski`] — the Tarski binary-relation backend (Section 5);
//! * [`query`] — GOODQL, a declarative MATCH/WHERE/RETURN language
//!   compiled to GOOD programs, with property paths and a
//!   three-backend differential oracle;
//! * [`turing`] — Turing machines and their GOOD simulation (Section 4.3);
//! * [`store`] — journaled durable storage with crash recovery.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use good_core as model;
pub use good_graph as graph;
pub use good_hypermedia as hypermedia;
pub use good_query as query;
pub use good_relational as relational;
pub use good_store as store;
pub use good_tarski as tarski;
pub use good_turing as turing;

/// Commonly used types, for `use good::prelude::*`.
pub mod prelude {
    pub use good_core::prelude::*;
}

// Compile-test the README's code examples as part of `cargo test`.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;
