//! The Figure 17 sub-instance: "a sequence of versions of related
//! information".
//!
//! Four info documents form a version chain (three `Version` nodes link
//! consecutive pairs via `old`/`new`). Each document links to some of
//! four target documents; the first two share exactly the same link set,
//! which is what the Figure 18 abstraction groups by.

use crate::scheme::build_scheme;
use good_core::instance::Instance;
use good_graph::NodeId;

/// Handles into the Figure 17 instance.
#[derive(Debug, Clone)]
pub struct VersionHandles {
    /// The four versioned documents, oldest first.
    pub documents: [NodeId; 4],
    /// The three version nodes chaining them.
    pub versions: [NodeId; 3],
    /// The four target documents.
    pub targets: [NodeId; 4],
}

/// Build the Figure 17 instance.
pub fn build_versions_instance() -> (Instance, VersionHandles) {
    let mut db = Instance::new(build_scheme());
    let targets: [NodeId; 4] = std::array::from_fn(|_| db.add_object("Info").expect("Info"));
    // documents[0] and documents[1] link to {t0, t1}; documents[2] to
    // {t1, t2}; documents[3] to {t2, t3}.
    let link_sets: [&[usize]; 4] = [&[0, 1], &[0, 1], &[1, 2], &[2, 3]];
    let documents: [NodeId; 4] = std::array::from_fn(|index| {
        let info = db.add_object("Info").expect("Info");
        for &target in link_sets[index] {
            db.add_edge(info, "links-to", targets[target])
                .expect("link");
        }
        info
    });
    let versions: [NodeId; 3] = std::array::from_fn(|index| {
        let version = db.add_object("Version").expect("Version");
        db.add_edge(version, "old", documents[index]).expect("old");
        db.add_edge(version, "new", documents[index + 1])
            .expect("new");
        version
    });
    (
        db,
        VersionHandles {
            documents,
            versions,
            targets,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates() {
        let (db, _) = build_versions_instance();
        db.validate().unwrap();
    }

    #[test]
    fn chain_structure() {
        let (db, h) = build_versions_instance();
        for (index, version) in h.versions.iter().enumerate() {
            assert_eq!(
                db.functional_target(*version, &"old".into()),
                Some(h.documents[index])
            );
            assert_eq!(
                db.functional_target(*version, &"new".into()),
                Some(h.documents[index + 1])
            );
        }
    }

    #[test]
    fn first_two_documents_share_link_sets() {
        let (db, h) = build_versions_instance();
        let links = |doc| db.target_set(doc, &"links-to".into());
        assert_eq!(links(h.documents[0]), links(h.documents[1]));
        assert_ne!(links(h.documents[1]), links(h.documents[2]));
        assert_ne!(links(h.documents[2]), links(h.documents[3]));
    }
}
