//! Inheritance (Section 4.2).
//!
//! The paper marks some functional scheme edges as subclass (`isa`)
//! edges and gives them macro semantics: "using inheritance in
//! formulating GOOD queries comes down to working in a virtual instance
//! obtained by explicitly adding the properties of the target nodes of
//! an isa-link to the source nodes as well. Clearly, this
//! transformation can be computed by a number of consecutive edge
//! additions."
//!
//! Two equivalent routes are provided, and tested against each other:
//!
//! * [`virtual_instance`] — materialize the virtual view: every node
//!   inherits the outgoing properties of its (transitive) `isa` targets;
//! * [`rewrite_pattern`] — the Figure 30 → Figure 31 rewriting: an edge
//!   using an inherited property is re-routed through an explicit chain
//!   of `isa` edges to a superclass node. [`find_matchings_with_inheritance`]
//!   runs a rewritten pattern and projects the matchings back onto the
//!   original pattern nodes.

use crate::error::{GoodError, Result};
use crate::instance::Instance;
use crate::label::Label;
use crate::matching::{find_matchings, Matching};
use crate::pattern::{Pattern, PatternNodeKind};
use crate::scheme::Scheme;
use good_graph::NodeId;
use std::collections::{HashMap, VecDeque};

/// Map from a re-rooted pattern edge `(original src, λ, dst)` to the
/// chain node that now carries the property.
pub type RerouteMap = HashMap<(NodeId, Label, NodeId), NodeId>;

/// Materialize the inheritance view: a clone of `db` in which every
/// object additionally carries the outgoing edges of all objects
/// reachable from it via marked `isa` edges.
///
/// Functional properties already present on the subclass object win
/// over inherited ones (overriding). Two *different* inherited values
/// for the same functional property with no own value is the ambiguity
/// the paper warns about ("the user must be very careful to define the
/// isa-links unambiguously") and is reported as an error.
pub fn virtual_instance(db: &Instance) -> Result<Instance> {
    let mut out = db.clone();
    let subclass: Vec<(Label, Label, Label)> = db.scheme().subclass_triples().cloned().collect();
    if subclass.is_empty() {
        return Ok(out);
    }
    let isa_labels: Vec<Label> = {
        let mut labels: Vec<Label> = subclass.iter().map(|(_, edge, _)| edge.clone()).collect();
        labels.sort();
        labels.dedup();
        labels
    };

    // Extend the scheme: for every subclass triple (Sub, isa, Sup) and
    // every (Sup, λ, T) ∈ P with λ not itself a subclass edge, allow
    // (Sub, λ, T). Iterate to a fixpoint for multi-level hierarchies.
    loop {
        let mut additions: Vec<(Label, Label, Label)> = Vec::new();
        for (sub, _, sup) in &subclass {
            for (src, edge, dst) in out.scheme().triples() {
                if src == sup
                    && !out
                        .scheme()
                        .subclass_triples()
                        .any(|(s, e, _)| s == src && e == edge)
                    && !out.scheme().allows(sub, edge, dst)
                {
                    additions.push((sub.clone(), edge.clone(), dst.clone()));
                }
            }
        }
        if additions.is_empty() {
            break;
        }
        for (src, edge, dst) in additions {
            out.scheme_mut().add_triple(src, edge, dst)?;
        }
    }

    // Instance level: BFS along instance isa edges, collecting each
    // node's (transitive) superclass objects, then copying their
    // non-isa outgoing edges down.
    let nodes: Vec<NodeId> = out.graph().node_ids().collect();
    for node in nodes {
        // Collect ancestor objects.
        let mut ancestors = Vec::new();
        let mut queue = VecDeque::from([node]);
        let mut seen = vec![node];
        while let Some(current) = queue.pop_front() {
            for isa in &isa_labels {
                for target in out.targets(current, isa).collect::<Vec<_>>() {
                    if !seen.contains(&target) {
                        seen.push(target);
                        ancestors.push(target);
                        queue.push_back(target);
                    }
                }
            }
        }
        // Copy their properties (closest ancestor first — `ancestors`
        // is in BFS order).
        let mut functional_sources: HashMap<Label, NodeId> = HashMap::new();
        for ancestor in ancestors {
            for edge in out
                .graph()
                .out_edges(ancestor)
                .map(|e| (e.payload.label.clone(), e.dst))
                .collect::<Vec<_>>()
            {
                let (label, target) = edge;
                if isa_labels.contains(&label) {
                    continue;
                }
                match out.scheme().edge_kind(&label) {
                    Some(crate::label::EdgeKind::Functional) => {
                        if let Some(own) = out.functional_target(node, &label) {
                            if own != target {
                                if let Some(&origin) = functional_sources.get(&label) {
                                    // Two distinct inherited values.
                                    if origin != ancestor {
                                        return Err(GoodError::InvariantViolation(format!(
                                            "ambiguous inheritance of functional property {label}"
                                        )));
                                    }
                                }
                                // Own value (or closest ancestor) wins.
                                continue;
                            }
                        } else {
                            out.add_edge(node, label.clone(), target)?;
                            functional_sources.insert(label, ancestor);
                        }
                    }
                    Some(crate::label::EdgeKind::Multivalued) => {
                        out.add_edge(node, label.clone(), target)?;
                    }
                    None => {
                        return Err(GoodError::UnknownEdgeLabel(label));
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Rewrite a pattern that uses inherited properties (Figure 30) into an
/// explicit pattern over the base scheme (Figure 31): for every pattern
/// edge `(m, λ, t)` not licensed from `λ(m)`, insert the shortest chain
/// of `isa` edges from `m` to an ancestor class that *does* license
/// `λ`, and re-root the edge there.
pub fn rewrite_pattern(pattern: &Pattern, scheme: &Scheme) -> Result<Pattern> {
    rewrite_pattern_with_map(pattern, scheme).map(|(rewritten, _)| rewritten)
}

/// Like [`rewrite_pattern`], additionally returning, for every re-rooted
/// edge, the mapping `(original src, λ, dst) → new src` — the chain node
/// that now carries the property. Operation compilers (the method
/// machinery's subclass dispatch) use this to retarget their edge
/// specifications.
pub fn rewrite_pattern_with_map(
    pattern: &Pattern,
    scheme: &Scheme,
) -> Result<(Pattern, RerouteMap)> {
    let mut reroutes = HashMap::new();
    let mut out = pattern.clone();
    let edges: Vec<(good_graph::EdgeId, NodeId, NodeId, Label, bool)> = out
        .graph()
        .edges()
        .map(|e| {
            (
                e.id,
                e.src,
                e.dst,
                e.payload.label.clone(),
                e.payload.negated,
            )
        })
        .collect();
    // Cache of inserted superclass chain nodes per (pattern node, class).
    let mut chain_nodes: HashMap<(NodeId, Label), NodeId> = HashMap::new();

    for (edge_id, src, dst, label, negated) in edges {
        let src_data = out.graph().node(src).expect("live").clone();
        let PatternNodeKind::Class(src_label) = &src_data.kind else {
            continue; // method-head edges are not rewritten
        };
        let Some(dst_label) = out.node_label(dst).cloned() else {
            continue;
        };
        if scheme.allows(src_label, &label, &dst_label) {
            continue;
        }
        // Find the shortest isa path from src_label to a class licensing
        // (class, λ, dst_label).
        let path = isa_path_to_licensor(scheme, src_label, &label, &dst_label)?;
        // Re-root: walk the path, inserting (or reusing) chain nodes.
        let mut current = src;
        let mut current_label = src_label.clone();
        for (isa_edge, super_label) in path {
            let key = (current, super_label.clone());
            let super_node = *chain_nodes
                .entry(key)
                .or_insert_with(|| out.node(super_label.clone()));
            // Add the isa edge if we just created the node (entry API
            // can't tell us, so check for an existing edge).
            let already = out
                .graph()
                .out_edges(current)
                .any(|e| e.dst == super_node && e.payload.label == isa_edge);
            if !already {
                out.edge(current, isa_edge, super_node);
            }
            current = super_node;
            current_label = super_label;
        }
        let _ = current_label;
        // Move the property edge to the final chain node.
        out.graph_mut().remove_edge(edge_id);
        reroutes.insert((src, label.clone(), dst), current);
        if negated {
            out.negated_edge(current, label, dst);
        } else {
            out.edge(current, label, dst);
        }
    }
    Ok((out, reroutes))
}

/// Shortest `isa`-path from `from` to a class that licenses
/// `(class, edge, dst)`, as a list of `(isa edge label, superclass)`.
pub(crate) fn isa_path_to_licensor(
    scheme: &Scheme,
    from: &Label,
    edge: &Label,
    dst: &Label,
) -> Result<Vec<(Label, Label)>> {
    let mut queue = VecDeque::from([from.clone()]);
    let mut parent: HashMap<Label, (Label, Label)> = HashMap::new(); // class -> (via isa, from class)
    let mut seen = vec![from.clone()];
    while let Some(current) = queue.pop_front() {
        if &current != from && scheme.allows(&current, edge, dst) {
            // Reconstruct the path.
            let mut path = Vec::new();
            let mut cursor = current.clone();
            while cursor != *from {
                let (via, prev) = parent[&cursor].clone();
                path.push((via, cursor.clone()));
                cursor = prev;
            }
            path.reverse();
            return Ok(path);
        }
        for (src, via, sup) in scheme.subclass_triples() {
            if src == &current && !seen.contains(sup) {
                seen.push(sup.clone());
                parent.insert(sup.clone(), (via.clone(), current.clone()));
                queue.push_back(sup.clone());
            }
        }
    }
    Err(GoodError::EdgeNotInScheme {
        src: from.clone(),
        edge: edge.clone(),
        dst: dst.clone(),
    })
}

/// Match `pattern` with inheritance semantics: rewrite it over the
/// scheme's `isa` hierarchy, run the matcher, and project the matchings
/// back onto the original pattern's nodes (the rewriting preserves the
/// original node ids).
pub fn find_matchings_with_inheritance(pattern: &Pattern, db: &Instance) -> Result<Vec<Matching>> {
    let rewritten = rewrite_pattern(pattern, db.scheme())?;
    let original_nodes = pattern.positive_nodes();
    let mut projected: Vec<Matching> = find_matchings(&rewritten, db)?
        .into_iter()
        .map(|m| {
            Matching::from_pairs(
                original_nodes
                    .iter()
                    .filter_map(|node| m.get(*node).map(|image| (*node, image))),
            )
        })
        .collect();
    projected.sort();
    projected.dedup();
    Ok(projected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SchemeBuilder;
    use crate::value::{Value, ValueType};

    /// Info with name; Reference isa Info; References occur `in` Infos.
    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .object("Reference")
            .printable("String", ValueType::Str)
            .functional("Info", "name", "String")
            .subclass("Reference", "isa", "Info")
            .multivalued("Reference", "in", "Info")
            .build()
    }

    /// A Jazz info containing a reference whose underlying info is named
    /// "The Beatles" (the Figure 2 situation behind Figure 30).
    fn instance() -> (Instance, NodeId, NodeId) {
        let mut db = Instance::new(scheme());
        let jazz = db.add_object("Info").unwrap();
        let jazz_name = db.add_printable("String", "Jazz").unwrap();
        db.add_edge(jazz, "name", jazz_name).unwrap();
        let beatles = db.add_object("Info").unwrap();
        let beatles_name = db.add_printable("String", "The Beatles").unwrap();
        db.add_edge(beatles, "name", beatles_name).unwrap();
        let reference = db.add_object("Reference").unwrap();
        db.add_edge(reference, "isa", beatles).unwrap();
        db.add_edge(reference, "in", jazz).unwrap();
        (db, reference, beatles)
    }

    /// Figure 30: the user asks for names of references in Jazz —
    /// `name` is an Info property used directly on a Reference node.
    fn figure30() -> (Pattern, NodeId, NodeId) {
        let mut p = Pattern::new();
        let reference = p.node("Reference");
        let jazz = p.node("Info");
        let jazz_name = p.printable("String", "Jazz");
        let ref_name = p.node("String");
        p.edge(jazz, "name", jazz_name);
        p.edge(reference, "in", jazz);
        p.edge(reference, "name", ref_name); // inherited property!
        (p, reference, ref_name)
    }

    #[test]
    fn figure30_is_invalid_without_inheritance() {
        let (db, _, _) = instance();
        let (pattern, _, _) = figure30();
        assert!(find_matchings(&pattern, &db).is_err());
    }

    #[test]
    fn rewrite_produces_figure31() {
        let (pattern, reference, _) = figure30();
        let rewritten = rewrite_pattern(&pattern, &scheme()).unwrap();
        // One extra Info node, reached from Reference via isa, now
        // carries the name edge.
        assert_eq!(rewritten.node_count(), pattern.node_count() + 1);
        rewritten.validate(&scheme()).unwrap();
        let has_isa = rewritten
            .graph()
            .out_edges(reference)
            .any(|e| e.payload.label.as_str() == "isa");
        assert!(has_isa);
    }

    #[test]
    fn inherited_query_finds_the_beatles() {
        let (db, reference, _) = instance();
        let (pattern, pref, pname) = figure30();
        let matchings = find_matchings_with_inheritance(&pattern, &db).unwrap();
        assert_eq!(matchings.len(), 1);
        assert_eq!(matchings[0].image(pref), reference);
        let name_node = matchings[0].image(pname);
        assert_eq!(db.print_value(name_node), Some(&Value::str("The Beatles")));
    }

    #[test]
    fn virtual_instance_attaches_inherited_properties() {
        let (db, reference, _) = instance();
        let view = virtual_instance(&db).unwrap();
        // In the view the reference itself carries the name edge.
        let name = view.functional_target(reference, &"name".into()).unwrap();
        assert_eq!(view.print_value(name), Some(&Value::str("The Beatles")));
        view.validate().unwrap();
        // The original is untouched.
        assert!(db.functional_target(reference, &"name".into()).is_none());
    }

    #[test]
    fn virtual_instance_agrees_with_rewriting() {
        let (db, _, _) = instance();
        let (pattern, pref, pname) = figure30();
        let via_rewrite = find_matchings_with_inheritance(&pattern, &db).unwrap();
        let view = virtual_instance(&db).unwrap();
        let via_view = find_matchings(&pattern, &view).unwrap();
        // Projected onto (reference, name) images, the two agree.
        let project = |ms: &[Matching]| -> Vec<(NodeId, NodeId)> {
            let mut v: Vec<_> = ms.iter().map(|m| (m.image(pref), m.image(pname))).collect();
            v.sort();
            v.dedup();
            v
        };
        assert_eq!(project(&via_rewrite), project(&via_view));
    }

    #[test]
    fn multi_level_hierarchies() {
        let scheme = SchemeBuilder::new()
            .object("A")
            .object("B")
            .object("C")
            .printable("String", ValueType::Str)
            .functional("C", "prop", "String")
            .subclass("A", "isa", "B")
            .subclass("B", "isa", "C")
            .build();
        let mut db = Instance::new(scheme);
        let a = db.add_object("A").unwrap();
        let b = db.add_object("B").unwrap();
        let c = db.add_object("C").unwrap();
        let value = db.add_printable("String", "v").unwrap();
        db.add_edge(a, "isa", b).unwrap();
        db.add_edge(b, "isa", c).unwrap();
        db.add_edge(c, "prop", value).unwrap();

        let view = virtual_instance(&db).unwrap();
        assert_eq!(view.functional_target(a, &"prop".into()), Some(value));
        assert_eq!(view.functional_target(b, &"prop".into()), Some(value));

        // Pattern using prop directly on A rewrites through two hops.
        let mut p = Pattern::new();
        let pa = p.node("A");
        let pv = p.printable("String", "v");
        p.edge(pa, "prop", pv);
        let matchings = find_matchings_with_inheritance(&p, &db).unwrap();
        assert_eq!(matchings.len(), 1);
        assert_eq!(matchings[0].image(pa), a);
    }

    #[test]
    fn own_property_overrides_inherited() {
        let scheme = SchemeBuilder::new()
            .object("Sub")
            .object("Sup")
            .printable("String", ValueType::Str)
            .functional("Sup", "p", "String")
            .functional("Sub", "p", "String")
            .subclass("Sub", "isa", "Sup")
            .build();
        let mut db = Instance::new(scheme);
        let sub = db.add_object("Sub").unwrap();
        let sup = db.add_object("Sup").unwrap();
        let own = db.add_printable("String", "own").unwrap();
        let inherited = db.add_printable("String", "inherited").unwrap();
        db.add_edge(sub, "isa", sup).unwrap();
        db.add_edge(sub, "p", own).unwrap();
        db.add_edge(sup, "p", inherited).unwrap();
        let view = virtual_instance(&db).unwrap();
        assert_eq!(view.functional_target(sub, &"p".into()), Some(own));
    }

    #[test]
    fn unresolvable_property_stays_an_error() {
        let (db, _, _) = instance();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let other = p.node("Info");
        p.edge(info, "in", other); // `in` belongs to Reference, Info has no isa
        assert!(matches!(
            find_matchings_with_inheritance(&p, &db),
            Err(GoodError::EdgeNotInScheme { .. })
        ));
    }
}
