//! End-to-end tests of the compiled `good-db` binary: `-c` mode,
//! script-file mode, and the interactive REPL via piped stdin.

use std::io::Write;
use std::process::{Command, Stdio};

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_good-db"))
}

const SETUP: &str = "class Info; printable String string; functional Info name String; \
                     multivalued Info links-to Info; init";

#[test]
fn dash_c_mode_runs_commands() {
    let output = binary()
        .arg("-c")
        .arg(format!(
            "{SETUP}; insert Info as a; insert Info as b; edge a links-to b; stats"
        ))
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("2 nodes, 1 edges"), "{stdout}");
}

#[test]
fn dash_c_mode_handles_patterns_with_semicolons() {
    let output = binary()
        .arg("-c")
        .arg(format!(
            "{SETUP}; insert Info as a; value String \"x\" as n; edge a name n; \
             match {{ i: Info; s: String; i -name-> s; }}"
        ))
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("1 matching(s)"), "{stdout}");
}

#[test]
fn script_file_mode() {
    let mut path = std::env::temp_dir();
    path.push(format!("good-cli-script-{}.gdb", std::process::id()));
    std::fs::write(
        &path,
        "# build a tiny base\n\
         class Info\n\
         printable String string\n\
         functional Info name String\n\
         init\n\
         insert Info as a\n\
         value String \"hello\" as n\n\
         edge a name n\n\
         match {\n  i: Info;\n  s: String = \"hello\";\n  i -name-> s;\n}\n\
         validate\n",
    )
    .expect("write script");
    let output = binary().arg(&path).output().expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("1 matching(s)"), "{stdout}");
    assert!(stdout.contains("all invariants hold"), "{stdout}");
    std::fs::remove_file(path).expect("cleanup");
}

#[test]
fn script_errors_exit_nonzero() {
    let output = binary()
        .arg("-c")
        .arg("complete nonsense")
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown command"), "{stderr}");
}

#[test]
fn save_and_load_round_trip() {
    let mut path = std::env::temp_dir();
    path.push(format!("good-cli-save-{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf8 temp path");
    let output = binary()
        .arg("-c")
        .arg(format!(
            "{SETUP}; insert Info as a; insert Info as b; edge a links-to b; \
             save {path_str}; load {path_str}; stats"
        ))
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains(&format!("saved to {path_str}")), "{stdout}");
    assert!(stdout.contains(&format!("loaded {path_str}")), "{stdout}");
    assert!(stdout.contains("2 nodes, 1 edges"), "{stdout}");
    std::fs::remove_file(path).expect("cleanup");
}

#[test]
fn load_missing_file_exits_nonzero_with_message() {
    let output = binary()
        .arg("-c")
        .arg("load /nonexistent/good-db-missing.json")
        .output()
        .expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(
        stderr.contains("No such file") || stderr.contains("not found"),
        "{stderr}"
    );
}

#[test]
fn load_corrupt_file_exits_nonzero_with_parse_error() {
    let mut path = std::env::temp_dir();
    path.push(format!("good-cli-corrupt-{}.json", std::process::id()));
    std::fs::write(&path, "{\"nodes\": [truncated").expect("write corrupt file");
    let output = binary()
        .arg("-c")
        .arg(format!("load {}", path.display()))
        .output()
        .expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
    std::fs::remove_file(path).expect("cleanup");
}

#[test]
fn save_without_an_open_base_exits_nonzero() {
    let output = binary()
        .arg("-c")
        .arg("save /tmp/good-db-never-written.json")
        .output()
        .expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("no open object base"), "{stderr}");
}

#[test]
fn save_to_unwritable_path_exits_nonzero() {
    let output = binary()
        .arg("-c")
        .arg(format!(
            "{SETUP}; insert Info as a; save /nonexistent-dir/out.json"
        ))
        .output()
        .expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
}

#[test]
fn load_over_an_existing_session_invalidates_handles() {
    let mut path = std::env::temp_dir();
    path.push(format!("good-cli-handles-{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf8 temp path");
    // `load` replaces the instance, so handles created before it must
    // not silently point at nodes of the new base.
    let output = binary()
        .arg("-c")
        .arg(format!(
            "{SETUP}; insert Info as a; save {path_str}; load {path_str}; \
             edge a links-to a"
        ))
        .output()
        .expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown handle a"), "{stderr}");
    std::fs::remove_file(path).expect("cleanup");
}

#[test]
fn fault_seed_flag_runs_a_crash_sweep() {
    let output = binary()
        .arg("--fault-seed")
        .arg("11")
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("crash schedules recovered to a committed prefix"),
        "{stdout}"
    );
}

#[test]
fn fault_crash_at_flag_replays_one_schedule_with_its_log() {
    let output = binary()
        .args(["--fault-seed", "11", "--fault-crash-at", "5"])
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("CRASH"), "{stdout}");
    assert!(stdout.contains("crash at op 5"), "{stdout}");
}

#[test]
fn fault_crash_at_out_of_range_exits_nonzero() {
    let output = binary()
        .args(["--fault-seed", "11", "--fault-crash-at", "999999"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success(), "{output:?}");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("out of range"), "{stderr}");
}

#[test]
fn repl_reads_multiline_patterns_from_stdin() {
    let mut child = binary()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    let stdin = child.stdin.as_mut().expect("stdin");
    stdin
        .write_all(
            b"class Info\nprintable String string\nfunctional Info name String\ninit\n\
              insert Info as a\nvalue String \"hi\" as n\nedge a name n\n\
              match {\n i: Info;\n s: String;\n i -name-> s;\n}\nquit\n",
        )
        .expect("write stdin");
    let output = child.wait_with_output().expect("binary finishes");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("good-db"), "{stdout}");
    assert!(stdout.contains("1 matching(s)"), "{stdout}");
}
