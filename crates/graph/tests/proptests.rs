//! Property tests for the graph substrate: model-based testing of the
//! generational arena, structural invariants of the multigraph under
//! random mutation, and metamorphic tests of the isomorphism checker.

use good_graph::{algo, iso, Arena, Graph, NodeId};
use proptest::prelude::*;
use std::collections::BTreeMap;

// ---- arena: model-based against a BTreeMap --------------------------------

#[derive(Debug, Clone)]
enum ArenaOp {
    Insert(u16),
    RemoveNth(usize),
    RemoveStale,
}

fn arb_arena_ops() -> impl Strategy<Value = Vec<ArenaOp>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u16>().prop_map(ArenaOp::Insert),
            any::<usize>().prop_map(ArenaOp::RemoveNth),
            Just(ArenaOp::RemoveStale),
        ],
        0..60,
    )
}

proptest! {
    #[test]
    fn arena_behaves_like_a_map(ops in arb_arena_ops()) {
        let mut arena = Arena::new();
        let mut model: BTreeMap<good_graph::ArenaId, u16> = BTreeMap::new();
        let mut stale: Vec<good_graph::ArenaId> = Vec::new();
        for op in ops {
            match op {
                ArenaOp::Insert(value) => {
                    let id = arena.insert(value);
                    prop_assert!(model.insert(id, value).is_none(), "id reuse!");
                }
                ArenaOp::RemoveNth(raw) => {
                    if model.is_empty() {
                        continue;
                    }
                    let key = *model.keys().nth(raw % model.len()).expect("nonempty");
                    let expected = model.remove(&key);
                    prop_assert_eq!(arena.remove(key), expected);
                    stale.push(key);
                }
                ArenaOp::RemoveStale => {
                    for id in &stale {
                        prop_assert_eq!(arena.get(*id), None, "stale id resolved");
                        prop_assert_eq!(arena.remove(*id), None);
                    }
                }
            }
            prop_assert_eq!(arena.len(), model.len());
        }
        // Final coherence sweep.
        for (id, value) in &model {
            prop_assert_eq!(arena.get(*id), Some(value));
        }
        let live: Vec<_> = arena.iter().map(|(id, v)| (id, *v)).collect();
        prop_assert_eq!(live.len(), model.len());
    }
}

// ---- graph structural invariants --------------------------------------------

#[derive(Debug, Clone)]
enum GraphOp {
    AddNode(u8),
    AddEdge(usize, usize, u8),
    RemoveNode(usize),
    RemoveEdge(usize),
}

fn arb_graph_ops() -> impl Strategy<Value = Vec<GraphOp>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(GraphOp::AddNode),
            (any::<usize>(), any::<usize>(), any::<u8>())
                .prop_map(|(a, b, l)| GraphOp::AddEdge(a, b, l)),
            any::<usize>().prop_map(GraphOp::RemoveNode),
            any::<usize>().prop_map(GraphOp::RemoveEdge),
        ],
        0..80,
    )
}

proptest! {
    #[test]
    fn graph_degree_bookkeeping_is_consistent(ops in arb_graph_ops()) {
        let mut graph: Graph<u8, u8> = Graph::new();
        for op in ops {
            match op {
                GraphOp::AddNode(label) => {
                    graph.add_node(label);
                }
                GraphOp::AddEdge(a, b, label) => {
                    let nodes: Vec<NodeId> = graph.node_ids().collect();
                    if nodes.is_empty() {
                        continue;
                    }
                    let src = nodes[a % nodes.len()];
                    let dst = nodes[b % nodes.len()];
                    graph.add_edge(src, dst, label);
                }
                GraphOp::RemoveNode(raw) => {
                    let nodes: Vec<NodeId> = graph.node_ids().collect();
                    if nodes.is_empty() {
                        continue;
                    }
                    graph.remove_node(nodes[raw % nodes.len()]);
                }
                GraphOp::RemoveEdge(raw) => {
                    let edges: Vec<_> = graph.edge_ids().collect();
                    if edges.is_empty() {
                        continue;
                    }
                    graph.remove_edge(edges[raw % edges.len()]);
                }
            }
            // Invariants after every step:
            let out_sum: usize = graph.node_ids().map(|n| graph.out_degree(n)).sum();
            let in_sum: usize = graph.node_ids().map(|n| graph.in_degree(n)).sum();
            prop_assert_eq!(out_sum, graph.edge_count());
            prop_assert_eq!(in_sum, graph.edge_count());
            for edge in graph.edges() {
                prop_assert!(graph.contains_node(edge.src), "dangling src");
                prop_assert!(graph.contains_node(edge.dst), "dangling dst");
            }
        }
    }
}

// ---- isomorphism metamorphics ---------------------------------------------------

fn arb_labeled_graph() -> impl Strategy<Value = Graph<u8, u8>> {
    (
        proptest::collection::vec(0u8..4, 1..8),
        proptest::collection::vec((any::<usize>(), any::<usize>(), 0u8..3), 0..14),
    )
        .prop_map(|(labels, edges)| {
            let mut graph = Graph::new();
            let ids: Vec<NodeId> = labels.into_iter().map(|l| graph.add_node(l)).collect();
            for (a, b, label) in edges {
                graph.add_edge(ids[a % ids.len()], ids[b % ids.len()], label);
            }
            graph
        })
}

/// Rebuild `graph` with nodes inserted in a rotated order.
fn rotate(graph: &Graph<u8, u8>, by: usize) -> Graph<u8, u8> {
    let mut out = Graph::new();
    let mut nodes: Vec<_> = graph.node_ids().collect();
    if nodes.is_empty() {
        return out;
    }
    let len = nodes.len();
    nodes.rotate_left(by % len);
    let mut map = BTreeMap::new();
    for node in &nodes {
        map.insert(*node, out.add_node(*graph.node(*node).expect("live")));
    }
    for edge in graph.edges() {
        out.add_edge(map[&edge.src], map[&edge.dst], *edge.payload);
    }
    out
}

proptest! {
    #[test]
    fn rotation_preserves_isomorphism(graph in arb_labeled_graph(), by in 0usize..8) {
        let rotated = rotate(&graph, by);
        prop_assert!(iso::isomorphic(
            &graph, &rotated,
            |n| *n, |n| *n, |e| *e, |e| *e,
        ));
    }

    #[test]
    fn adding_a_uniquely_labeled_node_breaks_isomorphism(graph in arb_labeled_graph()) {
        let mut bigger = rotate(&graph, 1);
        bigger.add_node(250); // label outside the generated range
        prop_assert!(!iso::isomorphic(
            &graph, &bigger,
            |n| *n, |n| *n, |e| *e, |e| *e,
        ));
    }

    #[test]
    fn relabeling_an_edge_breaks_isomorphism(graph in arb_labeled_graph()) {
        let mut changed = rotate(&graph, 0);
        let Some(edge) = changed.edge_ids().next() else {
            return Ok(()); // no edges to perturb
        };
        *changed.edge_mut(edge).expect("live") = 99;
        prop_assert!(!iso::isomorphic(
            &graph, &changed,
            |n| *n, |n| *n, |e| *e, |e| *e,
        ));
    }

    #[test]
    fn transitive_closure_is_monotone_and_transitive(graph in arb_labeled_graph()) {
        let closure = algo::transitive_closure_by(&graph, |_| true);
        // Every direct edge is in the closure.
        for edge in graph.edges() {
            prop_assert!(closure[&edge.src].contains(&edge.dst));
        }
        // Transitivity.
        for (node, reachable) in &closure {
            for mid in reachable {
                for far in &closure[mid] {
                    prop_assert!(
                        closure[node].contains(far),
                        "transitivity broken: {node:?} -> {mid:?} -> {far:?}"
                    );
                }
            }
        }
    }
}
