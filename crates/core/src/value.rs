//! Printable constants.
//!
//! The paper assumes "a function associating to each printable object
//! label the appropriate set of constants (e.g., characters, strings,
//! numbers, booleans, but also drawings, graphics, sound, etc)". This
//! module supplies those constant domains:
//!
//! * [`Value`] — the constants themselves. `Eq + Ord + Hash` so instances
//!   can enforce the paper's printable-node uniqueness invariant
//!   (`print(n1) = print(n2) ⇒ n1 = n2`);
//! * [`ValueType`] — the domain tags a scheme attaches to each printable
//!   label (`String`, `Number`, `Date`, `Longstring`, `Bitmap`, ...).
//!
//! Dates get real calendar arithmetic ([`Date::to_days`]) because the
//! paper's method example `D` (Figure 23) computes the number of days
//! elapsed between two dates.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The domain of constants a printable label ranges over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ValueType {
    /// Character strings (the paper's `String` and `Longstring`).
    Str,
    /// Integers (the paper's `Number` where counts are stored).
    Int,
    /// Reals (e.g. frequencies).
    Real,
    /// Booleans.
    Bool,
    /// Calendar dates (the paper's `Date`).
    Date,
    /// Raw binary payloads (the paper's `Bitmap` / `Bitstream`).
    Bytes,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ValueType::Str => "string",
            ValueType::Int => "int",
            ValueType::Real => "real",
            ValueType::Bool => "bool",
            ValueType::Date => "date",
            ValueType::Bytes => "bytes",
        };
        f.write_str(name)
    }
}

/// A calendar date (proleptic Gregorian).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Date {
    /// Year (astronomical numbering; 1990 is 1990).
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day of month, 1–31.
    pub day: u8,
}

const MONTH_NAMES: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

impl Date {
    /// Construct a date, validating month and day ranges.
    ///
    /// # Panics
    /// Panics on an impossible calendar date; dates come from schema
    /// designers and test fixtures, so this is a programming error.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day out of range for {year}-{month}: {day}"
        );
        Date { year, month, day }
    }

    /// Days since the civil epoch 1970-01-01 (negative before it).
    ///
    /// Uses Howard Hinnant's `days_from_civil` algorithm.
    pub fn to_days(self) -> i64 {
        let year = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if year >= 0 { year } else { year - 399 } / 400;
        let yoe = year - era * 400; // [0, 399]
        let month = i64::from(self.month);
        let day = i64::from(self.day);
        let doy = (153 * (if month > 2 { month - 3 } else { month + 9 }) + 2) / 5 + day - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Inverse of [`Date::to_days`].
    pub fn from_days(days: i64) -> Self {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let year = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let day = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let month = (if mp < 10 { mp + 3 } else { mp - 9 }) as u8;
        Date {
            year: (year + i64::from(month <= 2)) as i32,
            month,
            day,
        }
    }

    /// Signed number of days from `self` to `other`.
    pub fn days_until(self, other: Date) -> i64 {
        other.to_days() - self.to_days()
    }
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => unreachable!("validated month"),
    }
}

impl fmt::Display for Date {
    /// Renders in the paper's figure style: `Jan 12, 1990`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}, {}",
            MONTH_NAMES[(self.month - 1) as usize],
            self.day,
            self.year
        )
    }
}

/// A totally ordered, hashable wrapper for `f64` (NaN is rejected at
/// construction, so `Eq`/`Ord` are sound).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Real(f64);

impl Real {
    /// Wrap a finite float.
    ///
    /// # Panics
    /// Panics if `value` is NaN — NaN has no place in a printable
    /// constant domain (equality of printable values is load-bearing).
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "printable real values cannot be NaN");
        Real(value)
    }

    /// The wrapped float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for Real {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits() || self.0 == other.0
    }
}
impl Eq for Real {}

impl PartialOrd for Real {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Real {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("NaN rejected at construction")
    }
}
impl std::hash::Hash for Real {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Normalize -0.0 and 0.0 to hash identically, matching ==.
        let bits = if self.0 == 0.0 {
            0u64
        } else {
            self.0.to_bits()
        };
        bits.hash(state);
    }
}

/// A printable constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// A character string.
    Str(Arc<str>),
    /// An integer.
    Int(i64),
    /// A finite real.
    Real(Real),
    /// A boolean.
    Bool(bool),
    /// A calendar date.
    Date(Date),
    /// Raw bytes (bitmaps, bit streams).
    Bytes(Bytes),
}

impl Value {
    /// Shorthand string constructor.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Shorthand integer constructor.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Shorthand real constructor (panics on NaN).
    pub fn real(r: f64) -> Self {
        Value::Real(Real::new(r))
    }

    /// Shorthand date constructor (panics on invalid dates).
    pub fn date(year: i32, month: u8, day: u8) -> Self {
        Value::Date(Date::new(year, month, day))
    }

    /// Shorthand bytes constructor.
    pub fn bytes(data: impl Into<Bytes>) -> Self {
        Value::Bytes(data.into())
    }

    /// The domain this constant belongs to.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Str(_) => ValueType::Str,
            Value::Int(_) => ValueType::Int,
            Value::Real(_) => ValueType::Real,
            Value::Bool(_) => ValueType::Bool,
            Value::Date(_) => ValueType::Date,
            Value::Bytes(_) => ValueType::Bytes,
        }
    }

    /// Borrow as `&str` when this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract the integer when this is an int value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract the date when this is a date value.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{}", r.get()),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Bytes(b) => {
                write!(f, "0x")?;
                for byte in b.iter().take(8) {
                    write!(f, "{byte:02x}")?;
                }
                if b.len() > 8 {
                    write!(f, "… ({} bytes)", b.len())?;
                }
                Ok(())
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<Date> for Value {
    fn from(d: Date) -> Self {
        Value::Date(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_display_matches_paper_style() {
        assert_eq!(Date::new(1990, 1, 12).to_string(), "Jan 12, 1990");
        assert_eq!(Date::new(1990, 1, 14).to_string(), "Jan 14, 1990");
    }

    #[test]
    fn date_day_arithmetic() {
        let epoch = Date::new(1970, 1, 1);
        assert_eq!(epoch.to_days(), 0);
        assert_eq!(Date::new(1970, 1, 2).to_days(), 1);
        assert_eq!(Date::new(1969, 12, 31).to_days(), -1);
        // The paper's Elapsed example: Jan 12 -> Jan 14, 1990 is 2 days.
        assert_eq!(Date::new(1990, 1, 12).days_until(Date::new(1990, 1, 14)), 2);
    }

    #[test]
    fn date_roundtrip_over_a_wide_range() {
        for days in (-200_000..200_000).step_by(997) {
            let date = Date::from_days(days);
            assert_eq!(date.to_days(), days, "roundtrip failed for {date}");
        }
    }

    #[test]
    fn leap_years() {
        assert_eq!(Date::new(2000, 2, 29).days_until(Date::new(2000, 3, 1)), 1);
        assert_eq!(Date::new(1900, 2, 28).days_until(Date::new(1900, 3, 1)), 1);
        // 1900 not leap
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn invalid_date_rejected() {
        Date::new(1990, 2, 30);
    }

    #[test]
    fn values_equal_by_content() {
        assert_eq!(Value::str("Rock"), Value::str("Rock"));
        assert_ne!(Value::str("Rock"), Value::str("Jazz"));
        assert_ne!(Value::int(1), Value::str("1"));
    }

    #[test]
    fn real_total_order_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::real(1.5));
        assert!(set.contains(&Value::real(1.5)));
        assert!(!set.contains(&Value::real(2.5)));
        assert_eq!(Value::real(0.0), Value::real(-0.0));
        let mut with_zero = HashSet::new();
        with_zero.insert(Value::real(0.0));
        assert!(with_zero.contains(&Value::real(-0.0)));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Value::real(f64::NAN);
    }

    #[test]
    fn value_types() {
        assert_eq!(Value::str("x").value_type(), ValueType::Str);
        assert_eq!(Value::int(3).value_type(), ValueType::Int);
        assert_eq!(Value::date(1990, 1, 12).value_type(), ValueType::Date);
        assert_eq!(Value::bytes(vec![1, 2]).value_type(), ValueType::Bytes);
        assert_eq!(Value::from(true).value_type(), ValueType::Bool);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::str("Pinkfloyd").to_string(), "Pinkfloyd");
        assert_eq!(Value::int(15000).to_string(), "15000");
        assert_eq!(Value::bytes(vec![0x01, 0x02]).to_string(), "0x0102");
        let long = Value::bytes(vec![0u8; 12]);
        assert!(long.to_string().contains("(12 bytes)"));
    }

    #[test]
    fn serde_roundtrip() {
        let values = vec![
            Value::str("a"),
            Value::int(-3),
            Value::real(2.75),
            Value::from(false),
            Value::date(1990, 12, 31),
            Value::bytes(vec![1, 2, 3]),
        ];
        let json = serde_json::to_string(&values).unwrap();
        let back: Vec<Value> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, values);
    }
}
