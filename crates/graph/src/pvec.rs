//! A persistent, structurally shared vector.
//!
//! [`PVec`] is the storage layer that makes graph snapshots O(delta): a
//! 64-way radix trie of `Arc`-shared nodes. `clone()` is one `Arc`
//! bump; mutation path-copies only the O(log₆₄ n) nodes between the
//! root and the touched slot (via [`Arc::make_mut`], so a vector that
//! is *not* currently shared mutates fully in place and pays nothing).
//!
//! The generational [`Arena`](crate::arena::Arena) keeps its slots in a
//! `PVec`, which is what lets the instance layer above publish
//! whole-database snapshots by reference instead of by deep copy (see
//! `good_core::snapshot`). Only the operations an arena needs are
//! provided: `push`, indexed `get`/`get_mut`, iteration, `clear`.
//!
//! Std-only by design (the "persistent data structures" crates are
//! unavailable offline, and the subset needed here is small).

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// log₂ of the branching factor: 64-way nodes keep the trie at depth
/// ≤ 3 for a quarter-million slots, so indexed access stays a short
/// pointer chase (the matcher hits it in its innermost loops), while a
/// path copy touches at most `depth × 64` pointers.
const BITS: usize = 6;
/// Branching factor (and leaf capacity).
const WIDTH: usize = 1 << BITS;
/// Index mask for one trie level.
const MASK: usize = WIDTH - 1;

#[derive(Debug, Clone)]
enum Node<T> {
    /// Up to [`WIDTH`] values.
    Leaf(Vec<T>),
    /// Up to [`WIDTH`] children, all subtrees full except the last.
    Branch(Vec<Arc<Node<T>>>),
}

impl<T: Clone> Node<T> {
    /// A minimal path of branches down to a one-element leaf, for an
    /// index whose prefix is all zeros below `shift`.
    fn spine(shift: usize, value: T) -> Node<T> {
        if shift == 0 {
            Node::Leaf(vec![value])
        } else {
            Node::Branch(vec![Arc::new(Node::spine(shift - BITS, value))])
        }
    }
}

/// A persistent vector: `clone` is O(1), element mutation is
/// O(log₆₄ n) shared-node copies (amortized O(1) when unshared).
///
/// ```
/// use good_graph::pvec::PVec;
///
/// let mut v: PVec<u32> = PVec::new();
/// for i in 0..1_000 {
///     v.push(i);
/// }
/// let snapshot = v.clone();          // one Arc bump
/// *v.get_mut(17).unwrap() = 999;     // path-copies ~2 nodes
/// assert_eq!(snapshot.get(17), Some(&17));
/// assert_eq!(v.get(17), Some(&999));
/// ```
#[derive(Debug, Clone)]
pub struct PVec<T> {
    root: Option<Arc<Node<T>>>,
    /// Bits consumed by the root level (`depth - 1` × [`BITS`]).
    shift: usize,
    len: usize,
}

impl<T> Default for PVec<T> {
    fn default() -> Self {
        PVec::new()
    }
}

impl<T> PVec<T> {
    /// An empty vector.
    pub fn new() -> Self {
        PVec {
            root: None,
            shift: 0,
            len: 0,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shared access to the element at `index`.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            return None;
        }
        let mut node = self.root.as_ref().expect("non-empty");
        let mut shift = self.shift;
        loop {
            match node.as_ref() {
                Node::Leaf(items) => return items.get(index & MASK),
                Node::Branch(children) => {
                    node = &children[(index >> shift) & MASK];
                    shift -= BITS;
                }
            }
        }
    }

    /// Drop all elements.
    pub fn clear(&mut self) {
        self.root = None;
        self.shift = 0;
        self.len = 0;
    }

    /// Iterate over the elements in index order. Leaves are yielded
    /// chunk by chunk, so full iteration is O(n) with no per-element
    /// trie descent.
    pub fn iter(&self) -> Iter<'_, T> {
        let mut iter = Iter {
            stack: [None; MAX_DEPTH],
            depth: 0,
            leaf: [].iter(),
        };
        if let Some(root) = &self.root {
            iter.stack[0] = Some((root.as_ref(), 0));
            iter.depth = 1;
        }
        iter
    }

    /// Approximate heap footprint of the trie in bytes, counting every
    /// node once (i.e. the *unshared* size; shared nodes are not
    /// deduplicated). Used by snapshot retention estimates.
    pub fn approx_bytes(&self) -> usize {
        fn node_bytes<T>(node: &Node<T>) -> usize {
            match node {
                Node::Leaf(items) => items.capacity() * std::mem::size_of::<T>() + 32,
                Node::Branch(children) => {
                    children.capacity() * std::mem::size_of::<usize>()
                        + 32
                        + children.iter().map(|c| node_bytes(c)).sum::<usize>()
                }
            }
        }
        self.root.as_ref().map_or(0, |root| node_bytes(root))
    }
}

impl<T: Clone> PVec<T> {
    /// Mutable access to the element at `index`, path-copying any
    /// shared trie nodes on the way down.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        if index >= self.len {
            return None;
        }
        fn descend<T: Clone>(node: &mut Arc<Node<T>>, shift: usize, index: usize) -> &mut T {
            match Arc::make_mut(node) {
                Node::Leaf(items) => &mut items[index & MASK],
                Node::Branch(children) => {
                    descend(&mut children[(index >> shift) & MASK], shift - BITS, index)
                }
            }
        }
        Some(descend(
            self.root.as_mut().expect("non-empty"),
            self.shift,
            index,
        ))
    }

    /// Append an element.
    pub fn push(&mut self, value: T) {
        let index = self.len;
        match self.root.as_mut() {
            None => {
                self.root = Some(Arc::new(Node::Leaf(vec![value])));
            }
            Some(root) => {
                // A full root grows the trie by one level: the old root
                // becomes child 0 of a new root and the value goes into
                // a fresh spine as child 1.
                if index == WIDTH << self.shift {
                    let old = self.root.take().expect("non-empty");
                    let spine = Arc::new(Node::spine(self.shift, value));
                    self.root = Some(Arc::new(Node::Branch(vec![old, spine])));
                    self.shift += BITS;
                } else {
                    Self::push_into(root, self.shift, index, value);
                }
            }
        }
        self.len += 1;
    }

    fn push_into(node: &mut Arc<Node<T>>, shift: usize, index: usize, value: T) {
        match Arc::make_mut(node) {
            Node::Leaf(items) => {
                debug_assert!(items.len() < WIDTH);
                items.push(value);
            }
            Node::Branch(children) => {
                let child = (index >> shift) & MASK;
                if child == children.len() {
                    children.push(Arc::new(Node::spine(shift - BITS, value)));
                } else {
                    Self::push_into(&mut children[child], shift - BITS, index, value);
                }
            }
        }
    }

    /// A fully unshared copy: every trie node is rebuilt, sharing
    /// nothing with `self`. This is the cost model of a pre-persistent
    /// deep clone; benches use it as the baseline that `clone()` is
    /// measured against.
    pub fn deep_clone(&self) -> PVec<T> {
        let mut out = PVec::new();
        for item in self.iter() {
            out.push(item.clone());
        }
        out
    }
}

/// Upper bound on trie depth: the shift grows by `BITS` per root
/// growth, and a 64-bit index is exhausted after `64 / BITS + 1`
/// levels — so 12 frames can never overflow even at the theoretical
/// maximum length.
const MAX_DEPTH: usize = 12;

/// Iterator over a [`PVec`], chunked by leaf.
///
/// The descent stack is a fixed inline array (see [`MAX_DEPTH`]):
/// creating and draining an iterator never heap-allocates.
pub struct Iter<'v, T> {
    /// Branch nodes with the index of the next child to visit.
    stack: [Option<(&'v Node<T>, usize)>; MAX_DEPTH],
    depth: usize,
    leaf: std::slice::Iter<'v, T>,
}

impl<'v, T> Iterator for Iter<'v, T> {
    type Item = &'v T;

    fn next(&mut self) -> Option<&'v T> {
        loop {
            if let Some(item) = self.leaf.next() {
                return Some(item);
            }
            if self.depth == 0 {
                return None;
            }
            self.depth -= 1;
            let (node, child) = self.stack[self.depth].take().expect("frame below depth");
            match node {
                Node::Leaf(items) => {
                    self.leaf = items.iter();
                }
                Node::Branch(children) => {
                    if let Some(next) = children.get(child) {
                        self.stack[self.depth] = Some((node, child + 1));
                        self.stack[self.depth + 1] = Some((next.as_ref(), 0));
                        self.depth += 2;
                    }
                }
            }
        }
    }
}

impl<T: Clone> FromIterator<T> for PVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = PVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T: PartialEq> PartialEq for PVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Eq> Eq for PVec<T> {}

/// Serializes exactly like a `Vec<T>` (a plain sequence), so switching
/// the arena's slot storage to `PVec` left the journal/snapshot format
/// byte-identical.
impl<T: Serialize> Serialize for PVec<T> {
    fn to_content(&self) -> serde::Content {
        serde::Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Clone + Deserialize> Deserialize for PVec<T> {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        match content {
            serde::Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(serde::Error::custom(format!(
                "invalid type: expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip_across_level_growth() {
        let mut v = PVec::new();
        // Crosses leaf (64), depth-2 (4096) boundaries.
        for i in 0..5_000usize {
            v.push(i);
            assert_eq!(v.len(), i + 1);
        }
        for i in 0..5_000 {
            assert_eq!(v.get(i), Some(&i));
        }
        assert_eq!(v.get(5_000), None);
    }

    #[test]
    fn clone_shares_until_written() {
        let mut v: PVec<u32> = (0..10_000).collect();
        let snapshot = v.clone();
        for i in (0..10_000).step_by(97) {
            *v.get_mut(i as usize).unwrap() = i + 1_000_000;
        }
        for i in (0..10_000).step_by(97) {
            assert_eq!(snapshot.get(i as usize), Some(&i));
            assert_eq!(v.get(i as usize), Some(&(i + 1_000_000)));
        }
        // Untouched slots are still shared and equal.
        assert_eq!(v.get(1), Some(&1));
    }

    #[test]
    fn pushes_after_clone_do_not_disturb_the_snapshot() {
        let mut v: PVec<usize> = (0..100).collect();
        let snapshot = v.clone();
        for i in 100..300 {
            v.push(i);
        }
        assert_eq!(snapshot.len(), 100);
        assert_eq!(snapshot.iter().count(), 100);
        assert_eq!(v.len(), 300);
        assert_eq!(v.get(299), Some(&299));
    }

    #[test]
    fn iteration_matches_index_order() {
        let v: PVec<usize> = (0..4_200).collect();
        let collected: Vec<usize> = v.iter().copied().collect();
        assert_eq!(collected, (0..4_200).collect::<Vec<_>>());
    }

    #[test]
    fn deep_clone_is_equal_but_unshared() {
        let v: PVec<u32> = (0..1_000).collect();
        let mut deep = v.deep_clone();
        assert_eq!(v, deep);
        *deep.get_mut(0).unwrap() = 77;
        assert_eq!(v.get(0), Some(&0));
    }

    #[test]
    fn clear_resets() {
        let mut v: PVec<u32> = (0..100).collect();
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.iter().count(), 0);
        v.push(1);
        assert_eq!(v.get(0), Some(&1));
    }

    #[test]
    fn serde_matches_vec_format() {
        let v: PVec<u32> = (0..200).collect();
        let json = serde_json::to_string(&v).unwrap();
        let as_vec: Vec<u32> = (0..200).collect();
        assert_eq!(json, serde_json::to_string(&as_vec).unwrap());
        let back: PVec<u32> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
