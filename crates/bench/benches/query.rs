//! E20 — GOODQL query throughput: the text front end end to end
//! (EXPERIMENTS.md §E20).
//!
//! Two query shapes over the deterministic `instance_of` workloads:
//!
//! * **filter** — a two-hop predicate query (name lookup joined
//!   through `links-to`), the point-ish shape interactive sessions
//!   run, at 400 Infos.
//! * **closure** — a transitive-closure property path
//!   (`-[:links-to*]->`), the shape that exercises the starred
//!   edge-addition fixpoint, at 100 Infos.
//!
//! Each shape runs on all three execution lanes (core pattern matcher,
//! relational encoding, Tarski algebra), plus one lane measuring
//! parse + compile alone — the front-end overhead a cached program
//! would save.
//!
//! Prints criterion-style lines and emits machine-readable results to
//! `BENCH_query.json` in the workspace root. Doubles as the CI query
//! smoke: `--check <baseline.json>` re-measures the core-lane and
//! compile medians and fails on regression past the tolerance; the
//! three lanes are also asserted row-identical on both shapes before
//! anything is timed.

use good_bench::instance_of;
use good_core::instance::Instance;
use good_query::{compile, parse_query, Backend};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

const SAMPLES: usize = 7;
const TARGET_SAMPLE_NANOS: u128 = 40_000_000; // ~40ms per sample
                                              // Full query execution medians are noisier than the pure matcher
                                              // medians E18 gates (three lanes, allocation-heavy materialization),
                                              // so the tolerance is wider and the floor higher.
const CHECK_TOLERANCE: f64 = 1.25;
const CHECK_SLACK_NANOS: u128 = 20_000;

const FILTER_QUERY: &str = "MATCH (a:Info)-[:links-to]->(b:Info), \
                            (b)-[:name]->(n:String) \
                            WHERE n STARTS WITH \"info-1\" RETURN a, n";
const CLOSURE_QUERY: &str = "MATCH (a:Info)-[:links-to*]->(b:Info) RETURN DISTINCT a, b";

struct Measurement {
    name: String,
    ns: u128,
    rows: usize,
}

fn format_nanos(nanos: u128) -> String {
    let nanos = nanos as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// Median per-iteration time of `routine` over `SAMPLES` samples, each
/// sized to roughly `TARGET_SAMPLE_NANOS`.
fn measure(mut routine: impl FnMut()) -> u128 {
    let start = Instant::now();
    routine();
    let once = start.elapsed().as_nanos().max(1);
    let iterations = (TARGET_SAMPLE_NANOS / once).clamp(1, 10_000);
    let mut samples: Vec<u128> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iterations {
            routine();
        }
        samples.push(start.elapsed().as_nanos() / iterations);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn workspace_path(file: &str) -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop(); // crates/
    path.pop(); // workspace root
    path.push(file);
    path
}

fn json_num_field(line: &str, key: &str) -> Option<u128> {
    let start = line.find(key)? + key.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extract `(name, ns)` pairs from a previously emitted
/// `BENCH_query.json` (flat hand-formatted JSON, one result per line —
/// no parser dependency needed).
fn parse_baseline(text: &str) -> Vec<(String, u128)> {
    text.lines()
        .filter_map(|line| {
            let start = line.find("\"name\": \"")? + "\"name\": \"".len();
            let end = start + line[start..].find('"')?;
            let ns = json_num_field(line, "\"ns\": ")?;
            Some((line[start..end].to_string(), ns))
        })
        .collect()
}

/// Measure one query shape on all three lanes (after asserting they
/// agree), tagging results `{shape}@{infos}/{lane}`.
fn measure_shape(db: &Instance, shape: &str, infos: usize, text: &str) -> Vec<Measurement> {
    let rows_by_lane: Vec<usize> = Backend::ALL
        .iter()
        .map(|&backend| {
            good_query::run(db, text, backend)
                .unwrap_or_else(|err| panic!("{shape}/{}: {err}", backend.name()))
                .rows
                .len()
        })
        .collect();
    assert!(
        rows_by_lane.windows(2).all(|pair| pair[0] == pair[1]),
        "{shape}: lanes disagree on row count: {rows_by_lane:?}"
    );
    Backend::ALL
        .iter()
        .map(|&backend| {
            let ns = measure(|| {
                good_query::run(db, text, backend).expect("query");
            });
            Measurement {
                name: format!("{shape}@{infos}/{}", backend.name()),
                ns,
                rows: rows_by_lane[0],
            }
        })
        .collect()
}

fn measure_all() -> Vec<Measurement> {
    let filter_db = instance_of(400);
    let closure_db = instance_of(100);

    // Front-end overhead: parse + compile, no execution.
    let compile_ns = measure(|| {
        let query = parse_query(FILTER_QUERY).expect("parse");
        compile(&query, filter_db.scheme()).expect("compile");
    });
    let mut measurements = vec![Measurement {
        name: "compile/filter".into(),
        ns: compile_ns,
        rows: 0,
    }];
    measurements.extend(measure_shape(&filter_db, "filter", 400, FILTER_QUERY));
    measurements.extend(measure_shape(&closure_db, "closure", 100, CLOSURE_QUERY));
    measurements
}

/// CI smoke: re-measure the compile and core-lane medians, fail past
/// tolerance against the recorded baseline.
fn run_check(baseline_arg: &str) -> ! {
    let path = if std::path::Path::new(baseline_arg).is_absolute() {
        PathBuf::from(baseline_arg)
    } else {
        workspace_path(baseline_arg)
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read baseline {}: {err}", path.display());
            std::process::exit(1);
        }
    };
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        eprintln!("no results found in baseline {}", path.display());
        std::process::exit(1);
    }
    println!("E20 query smoke — medians vs {}", path.display());

    // Only the deterministic-cost lanes gate CI (the relational and
    // Tarski lanes are reference implementations, tracked but not
    // gated).
    let gated = ["compile/filter", "filter@400/core", "closure@100/core"];
    let current = measure_all();
    let mut failed = false;
    for m in current.iter().filter(|m| gated.contains(&m.name.as_str())) {
        match baseline.iter().find(|(name, _)| *name == m.name) {
            Some((_, base_ns)) => {
                let ratio = m.ns as f64 / *base_ns as f64;
                let allowed = (*base_ns as f64 * CHECK_TOLERANCE) as u128 + CHECK_SLACK_NANOS;
                let verdict = if m.ns > allowed {
                    failed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "{:<22} {:>12}  baseline {:>12}  ratio {ratio:.3}  {verdict}",
                    m.name,
                    format_nanos(m.ns),
                    format_nanos(*base_ns),
                );
            }
            None => {
                failed = true;
                println!("{:<22} missing from baseline", m.name);
            }
        }
    }
    if failed {
        eprintln!("query medians regressed more than 25% vs baseline");
        std::process::exit(1);
    }
    println!("query medians within tolerance of baseline");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(position) = args.iter().position(|a| a == "--check") {
        let Some(baseline) = args.get(position + 1) else {
            eprintln!("error: --check requires a baseline path");
            std::process::exit(1);
        };
        run_check(baseline);
    }

    println!("E20 GOODQL query throughput — three lanes, text to rows");
    let measurements = measure_all();
    for m in &measurements {
        println!(
            "E20-query/{:<20} [median {:>12}]  ({} rows)",
            m.name,
            format_nanos(m.ns),
            m.rows,
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"E20-query\",");
    json.push_str("  \"results\": [\n");
    for (index, m) in measurements.iter().enumerate() {
        let comma = if index + 1 == measurements.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ns\": {}, \"rows\": {}}}{comma}",
            m.name, m.ns, m.rows
        );
    }
    json.push_str("  ]\n}\n");

    let path = workspace_path("BENCH_query.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
