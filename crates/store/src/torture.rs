//! The deterministic crash-recovery torture harness.
//!
//! The crate's durability claims ("a torn final record is detected and
//! ignored", "checkpoint is atomic") are only worth anything if they
//! hold under real fault schedules. This module enumerates them:
//!
//! * [`crash_sweep`] — run a seeded random workload once against a
//!   fault-free [`FaultVfs`] to build an **oracle** (the committed
//!   state after every acknowledged program) and count the I/O
//!   operations; then re-run the workload once *per operation*,
//!   crashing hard at that operation, rebooting the frozen disk image
//!   (durable namespace only, un-synced tails torn at seed-chosen
//!   offsets), reopening the store, and checking **prefix
//!   consistency**: the recovered instance must be graph-isomorphic
//!   (via `good-graph`'s labeled isomorphism, through
//!   [`Instance::isomorphic_to`]) to `history[j]` for some `j` between
//!   the acknowledged count and the attempted count at the moment of
//!   the crash. The recovered store must then accept a probe append
//!   and survive one more reopen, which catches truncation bugs that
//!   only corrupt the *next* record.
//! * [`fault_soak`] — run a workload under seeded random *non-fatal*
//!   faults (torn writes, fsync failures, rename failures) and check
//!   that every failure either leaves the store consistent or poisons
//!   it, and that reopening always recovers a state consistent with an
//!   online oracle.
//!
//! Everything is deterministic in the seed: equal configs produce
//! byte-identical fault logs and equal reports, so any failure is
//! reproducible from its seed and crash point alone (see the
//! `--fault-seed` flag on `good-db`).

use crate::vfs::{FaultPlan, FaultVfs, Vfs};
use crate::{Store, StoreError};
use good_core::gen::{bench_scheme, random_workload};
use good_core::instance::Instance;
use good_core::label::Label;
use good_core::method::{Method, MethodCall, MethodSpec};
use good_core::ops::NodeAddition;
use good_core::pattern::Pattern;
use good_core::program::{Env, Operation, Program, DEFAULT_FUEL};
use good_core::scheme::Scheme;
use std::fmt;
use std::sync::Arc;

/// The journal path inside the simulated filesystem.
pub const JOURNAL_PATH: &str = "/torture/db.journal";

/// Configuration for one torture sweep.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// Seed for the workload and every fault decision.
    pub seed: u64,
    /// Number of workload programs.
    pub programs: usize,
    /// Checkpoint before every `n`-th program (0 disables).
    pub checkpoint_every: usize,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            seed: 42,
            programs: 16,
            checkpoint_every: 6,
        }
    }
}

/// One crash schedule's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleOutcome {
    /// The I/O operation index the crash fired at.
    pub crash_at: u64,
    /// Programs acknowledged before the crash.
    pub acked: usize,
    /// `acked`, plus one if the crash interrupted an append whose
    /// record may have partially reached the disk.
    pub attempted: usize,
    /// The oracle history index the recovered state matched, or `None`
    /// when the crash predated a durable store creation (no journal
    /// survives, legitimately).
    pub recovered_to: Option<usize>,
    /// The full deterministic fault log of the schedule.
    pub fault_log: Vec<String>,
}

/// The verdicts of a full crash sweep. Equal configs produce equal
/// reports — the determinism contract torture tests assert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TortureReport {
    /// Number of crash points enumerated (= I/O ops in the workload).
    pub crash_points: u64,
    /// Per-schedule outcomes, in crash-point order.
    pub outcomes: Vec<ScheduleOutcome>,
}

impl TortureReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        let torn = self
            .outcomes
            .iter()
            .filter(|o| o.fault_log.iter().any(|l| l.contains("tore at")))
            .count();
        format!(
            "{} crash schedules recovered to a committed prefix ({} with torn appends)",
            self.crash_points, torn
        )
    }
}

/// A torture failure: a schedule whose recovery broke the contract.
#[derive(Debug)]
pub struct TortureFailure {
    /// The workload/fault seed.
    pub seed: u64,
    /// The crash point, if the failing run had one.
    pub crash_at: Option<u64>,
    /// What went wrong.
    pub message: String,
    /// The deterministic fault log up to the failure.
    pub fault_log: Vec<String>,
}

impl fmt::Display for TortureFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "torture schedule failed: {}", self.message)?;
        match self.crash_at {
            Some(op) => writeln!(
                f,
                "reproduce with: good-db --fault-seed {} --fault-crash-at {op}",
                self.seed
            )?,
            None => writeln!(f, "reproduce with: good-db --fault-seed {}", self.seed)?,
        }
        writeln!(f, "fault log:")?;
        for line in &self.fault_log {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

impl std::error::Error for TortureFailure {}

/// Result alias for torture runs.
pub type TortureResult<T> = std::result::Result<T, TortureFailure>;

/// A fixed method registered mid-workload so RegisterMethod records and
/// checkpoint re-logging are on the torture path.
fn mark_method() -> Method {
    let mut pattern = Pattern::new();
    let head = pattern.method_head("Mark");
    let receiver = pattern.node("Info");
    pattern.edge(head, good_core::label::receiver_label(), receiver);
    let na = NodeAddition::new(pattern, "Mark", [(Label::new("on"), receiver)]);
    let mut interface = Scheme::new();
    interface.add_object_label("Mark").expect("fresh scheme");
    interface.add_functional_label("on").expect("fresh scheme");
    interface.add_object_label("Info").expect("fresh scheme");
    interface
        .add_triple("Mark", "on", "Info")
        .expect("fresh scheme");
    Method::new(
        MethodSpec::new("Mark", "Info", []),
        vec![Operation::NodeAdd(na)],
        interface,
    )
}

/// A program calling [`mark_method`] on every `Info` object, spliced
/// into the workload right after the registration so method execution
/// (K-frame construction, fuel accounting, method spans) is on the
/// torture path, not just the RegisterMethod record.
fn mark_call_program() -> Program {
    let mut pattern = Pattern::new();
    let receiver = pattern.node("Info");
    let call = MethodCall::new("Mark", pattern, receiver, []);
    Program::from_ops([Operation::Call(call)])
}

/// An unconditional append used to prove a recovered journal accepts
/// new records cleanly.
fn probe_program() -> Program {
    Program::from_ops([Operation::NodeAdd(NodeAddition::new(
        Pattern::new(),
        "Probe",
        [],
    ))])
}

struct RunOutcome {
    /// `Store::create` returned Ok (the journal must then survive).
    created: bool,
    acked: usize,
    attempted: usize,
}

fn failure_with_seed(
    seed: u64,
    crash_at: Option<u64>,
    message: String,
    vfs: &FaultVfs,
) -> TortureFailure {
    TortureFailure {
        seed,
        crash_at,
        message,
        fault_log: vfs.fault_log(),
    }
}

fn failure(
    config: &TortureConfig,
    crash_at: Option<u64>,
    message: String,
    vfs: &FaultVfs,
) -> TortureFailure {
    failure_with_seed(config.seed, crash_at, message, vfs)
}

/// Drive the deterministic workload against `vfs` until completion or
/// the first crash-induced error. `history`, when supplied, collects
/// the committed state after creation and after every acknowledged
/// program.
fn run_workload(
    vfs: &FaultVfs,
    config: &TortureConfig,
    mut history: Option<&mut Vec<Instance>>,
) -> TortureResult<RunOutcome> {
    let mut programs = random_workload(config.seed, config.programs);
    // Registration happens before executing program 1 (below), so the
    // call spliced in at index 1 runs immediately after it.
    programs.insert(1, mark_call_program());
    let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
    let crash_at = vfs.plan_crash_at();
    let mut store = match Store::create_with_vfs(arc, JOURNAL_PATH, bench_scheme()) {
        Ok(store) => store,
        Err(err) => {
            if vfs.crashed() {
                return Ok(RunOutcome {
                    created: false,
                    acked: 0,
                    attempted: 0,
                });
            }
            return Err(failure(
                config,
                crash_at,
                format!("store creation failed without a crash: {err}"),
                vfs,
            ));
        }
    };
    if let Some(history) = history.as_deref_mut() {
        history.push(store.instance().clone());
    }
    let mut acked = 0usize;
    for (step, program) in programs.iter().enumerate() {
        if config.checkpoint_every > 0 && step > 0 && step % config.checkpoint_every == 0 {
            if let Err(err) = store.checkpoint() {
                if vfs.crashed() {
                    return Ok(RunOutcome {
                        created: true,
                        acked,
                        attempted: acked,
                    });
                }
                return Err(failure(
                    config,
                    crash_at,
                    format!("checkpoint failed without a crash: {err}"),
                    vfs,
                ));
            }
        }
        if step == 1 {
            if let Err(err) = store.register_method(mark_method()) {
                if vfs.crashed() {
                    return Ok(RunOutcome {
                        created: true,
                        acked,
                        attempted: acked,
                    });
                }
                return Err(failure(
                    config,
                    crash_at,
                    format!("method registration failed without a crash: {err}"),
                    vfs,
                ));
            }
        }
        match store.execute(program) {
            Ok(_) => {
                acked += 1;
                if let Some(history) = history.as_deref_mut() {
                    history.push(store.instance().clone());
                }
            }
            Err(err) => {
                if vfs.crashed() {
                    // The crash interrupted this program's append: the
                    // record may have partially reached the disk.
                    return Ok(RunOutcome {
                        created: true,
                        acked,
                        attempted: acked + 1,
                    });
                }
                return Err(failure(
                    config,
                    crash_at,
                    format!("program {step} failed without a crash: {err}"),
                    vfs,
                ));
            }
        }
    }
    Ok(RunOutcome {
        created: true,
        acked,
        attempted: acked,
    })
}

/// The fault-free golden run: committed-state history plus the total
/// I/O operation count (= the crash-point space).
fn golden_run(config: &TortureConfig) -> TortureResult<(Vec<Instance>, u64)> {
    let vfs = FaultVfs::new(FaultPlan::reliable(config.seed));
    let mut history = Vec::with_capacity(config.programs + 1);
    let outcome = run_workload(&vfs, config, Some(&mut history))?;
    // The workload is `programs` random programs plus the spliced-in
    // method call.
    let expected = config.programs + 1;
    if outcome.acked != expected {
        return Err(failure(
            config,
            None,
            format!(
                "golden run acknowledged {} of {} programs",
                outcome.acked, expected
            ),
            &vfs,
        ));
    }
    Ok((history, vfs.op_count()))
}

/// Shared post-crash verification: reboot the frozen disk, reopen the
/// journal, and check prefix consistency — the recovered instance must
/// match `history[j]` for some `j` in `[acked, attempted]` (for the
/// plain sweep the history is per-program; for the group sweep it is
/// per-*batch*, so matching any entry **is** the batch-boundary
/// invariant). Then prove the recovered journal accepts a probe append
/// that survives one more reopen.
fn verify_prefix_recovery(
    seed: u64,
    crash_at: u64,
    history: &[Instance],
    outcome: &RunOutcome,
    vfs: &FaultVfs,
) -> TortureResult<ScheduleOutcome> {
    if !vfs.crashed() {
        return Err(failure_with_seed(
            seed,
            Some(crash_at),
            format!("crash point {crash_at} never fired"),
            vfs,
        ));
    }
    let disk = vfs.reboot();
    let arc: Arc<dyn Vfs> = Arc::new(disk.clone());
    let mut store = match Store::open_with_vfs(Arc::clone(&arc), JOURNAL_PATH) {
        Ok(store) => store,
        Err(StoreError::Io(err))
            if err.kind() == std::io::ErrorKind::NotFound && !outcome.created =>
        {
            // The crash predated a durable creation: losing the whole
            // journal is legal because nothing was ever acknowledged.
            return Ok(ScheduleOutcome {
                crash_at,
                acked: 0,
                attempted: 0,
                recovered_to: None,
                fault_log: vfs.fault_log(),
            });
        }
        Err(err) => {
            return Err(failure_with_seed(
                seed,
                Some(crash_at),
                format!(
                    "recovery failed after crash (acked {}): {err}",
                    outcome.acked
                ),
                vfs,
            ));
        }
    };
    let recovered_to =
        (outcome.acked..=outcome.attempted).find(|&j| store.instance().isomorphic_to(&history[j]));
    let Some(recovered_to) = recovered_to else {
        return Err(failure_with_seed(
            seed,
            Some(crash_at),
            format!(
                "recovered state ({} nodes) matches no committed prefix in [{}, {}]",
                store.instance().node_count(),
                outcome.acked,
                outcome.attempted
            ),
            vfs,
        ));
    };
    // A recovered journal must accept new appends and survive another
    // open — this is what catches torn tails that were replayed but not
    // truncated (the next record would concatenate onto them).
    if let Err(err) = store.execute(&probe_program()) {
        return Err(failure_with_seed(
            seed,
            Some(crash_at),
            format!("recovered store rejected a probe append: {err}"),
            vfs,
        ));
    }
    drop(store);
    match Store::open_with_vfs(arc, JOURNAL_PATH) {
        Ok(reopened) if reopened.instance().label_count(&Label::new("Probe")) == 1 => {}
        Ok(_) => {
            return Err(failure_with_seed(
                seed,
                Some(crash_at),
                "probe append did not survive a reopen".into(),
                vfs,
            ));
        }
        Err(err) => {
            return Err(failure_with_seed(
                seed,
                Some(crash_at),
                format!("reopen after probe append failed: {err}"),
                vfs,
            ));
        }
    }
    Ok(ScheduleOutcome {
        crash_at,
        acked: outcome.acked,
        attempted: outcome.attempted,
        recovered_to: Some(recovered_to),
        fault_log: vfs.fault_log(),
    })
}

/// Run one crash schedule and verify prefix-consistent recovery.
fn run_crash_schedule(
    config: &TortureConfig,
    history: &[Instance],
    crash_at: u64,
) -> TortureResult<ScheduleOutcome> {
    let vfs = FaultVfs::new(FaultPlan::crash_at(config.seed, crash_at));
    let outcome = run_workload(&vfs, config, None)?;
    verify_prefix_recovery(config.seed, crash_at, history, &outcome, &vfs)
}

/// Run a single crash schedule against the seeded workload's oracle —
/// the reproduction path behind `good-db --fault-seed N
/// --fault-crash-at K`.
pub fn crash_schedule(config: &TortureConfig, crash_at: u64) -> TortureResult<ScheduleOutcome> {
    let (history, total_ops) = golden_run(config)?;
    if crash_at >= total_ops {
        return Err(TortureFailure {
            seed: config.seed,
            crash_at: Some(crash_at),
            message: format!(
                "crash point {crash_at} out of range: the workload issues {total_ops} operations"
            ),
            fault_log: Vec::new(),
        });
    }
    run_crash_schedule(config, &history, crash_at)
}

/// Enumerate every crash point of the seeded workload and verify that
/// each one recovers to a committed prefix of the oracle history. See
/// the module docs for the exact contract.
pub fn crash_sweep(config: &TortureConfig) -> TortureResult<TortureReport> {
    let (history, total_ops) = golden_run(config)?;
    let mut outcomes = Vec::with_capacity(total_ops as usize);
    for crash_at in 0..total_ops {
        outcomes.push(run_crash_schedule(config, &history, crash_at)?);
    }
    Ok(TortureReport {
        crash_points: total_ops,
        outcomes,
    })
}

/// Configuration for [`group_crash_sweep`].
#[derive(Debug, Clone)]
pub struct GroupTortureConfig {
    /// Seed for the workload, the batch partition, and every fault
    /// decision.
    pub seed: u64,
    /// Number of workload programs (partitioned into batches).
    pub programs: usize,
    /// Maximum batch size; actual sizes are seed-drawn in
    /// `1..=max_batch`.
    pub max_batch: usize,
}

impl Default for GroupTortureConfig {
    fn default() -> Self {
        GroupTortureConfig {
            seed: 42,
            programs: 12,
            max_batch: 4,
        }
    }
}

/// Partition the seeded workload into seed-drawn batches — the same
/// partition for the golden run and every crash schedule.
fn group_batches(config: &GroupTortureConfig) -> Vec<Vec<Program>> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let programs = random_workload(config.seed, config.programs);
    // Decorrelate the partition from the workload's own seed stream.
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut batches = Vec::new();
    let mut rest = programs.as_slice();
    while !rest.is_empty() {
        let take = rng.gen_range(1..=config.max_batch.min(rest.len()));
        batches.push(rest[..take].to_vec());
        rest = &rest[take..];
    }
    batches
}

/// Drive the batched workload against `vfs` via [`Store::execute_group`]
/// until completion or the first crash-induced error. `history`, when
/// supplied, collects the committed state at every **batch boundary**
/// (creation counts as boundary 0) — deliberately *only* boundaries, so
/// prefix-consistency checks against it reject any mid-batch state.
fn run_group_workload(
    vfs: &FaultVfs,
    config: &GroupTortureConfig,
    mut history: Option<&mut Vec<Instance>>,
) -> TortureResult<RunOutcome> {
    let batches = group_batches(config);
    let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
    let crash_at = vfs.plan_crash_at();
    let mut store = match Store::create_with_vfs(arc, JOURNAL_PATH, bench_scheme()) {
        Ok(store) => store,
        Err(err) => {
            if vfs.crashed() {
                return Ok(RunOutcome {
                    created: false,
                    acked: 0,
                    attempted: 0,
                });
            }
            return Err(failure_with_seed(
                config.seed,
                crash_at,
                format!("store creation failed without a crash: {err}"),
                vfs,
            ));
        }
    };
    if let Some(history) = history.as_deref_mut() {
        history.push(store.instance().clone());
    }
    let mut acked = 0usize;
    for (index, batch) in batches.iter().enumerate() {
        match store.execute_group(batch) {
            Ok(_outcomes) => {
                acked += 1;
                if let Some(history) = history.as_deref_mut() {
                    history.push(store.instance().clone());
                }
            }
            Err(err) => {
                if vfs.crashed() {
                    // The crash interrupted this batch's record group:
                    // some or all of its records (and possibly the
                    // commit marker) may have reached the disk.
                    return Ok(RunOutcome {
                        created: true,
                        acked,
                        attempted: acked + 1,
                    });
                }
                return Err(failure_with_seed(
                    config.seed,
                    crash_at,
                    format!("batch {index} failed without a crash: {err}"),
                    vfs,
                ));
            }
        }
    }
    Ok(RunOutcome {
        created: true,
        acked,
        attempted: acked,
    })
}

/// Enumerate every crash point of the batched workload — including
/// every point *between the records of one group* — and verify that
/// recovery always lands on a **batch boundary**: graph-isomorphic to
/// the oracle state after batch `j` for `j` in `[acked, acked+1]`,
/// never a state in the middle of a group. `acked+1` is legal because
/// a crash in the commit fsync may still have made the whole group
/// durable; any proper subset of the group must be discarded by
/// recovery.
pub fn group_crash_sweep(config: &GroupTortureConfig) -> TortureResult<TortureReport> {
    // Golden run: batch-boundary history + the crash-point space.
    let vfs = FaultVfs::new(FaultPlan::reliable(config.seed));
    let mut history = Vec::with_capacity(config.programs + 1);
    let outcome = run_group_workload(&vfs, config, Some(&mut history))?;
    let batches = group_batches(config).len();
    if outcome.acked != batches {
        return Err(failure_with_seed(
            config.seed,
            None,
            format!(
                "golden run committed {} of {batches} batches",
                outcome.acked
            ),
            &vfs,
        ));
    }
    let total_ops = vfs.op_count();
    let mut outcomes = Vec::with_capacity(total_ops as usize);
    for crash_at in 0..total_ops {
        let vfs = FaultVfs::new(FaultPlan::crash_at(config.seed, crash_at));
        let outcome = run_group_workload(&vfs, config, None)?;
        outcomes.push(verify_prefix_recovery(
            config.seed,
            crash_at,
            &history,
            &outcome,
            &vfs,
        )?);
    }
    Ok(TortureReport {
        crash_points: total_ops,
        outcomes,
    })
}

/// Configuration for [`fault_soak`].
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Seed for the workload and every fault decision.
    pub seed: u64,
    /// Number of workload programs.
    pub programs: usize,
    /// Checkpoint before every `n`-th program (0 disables).
    pub checkpoint_every: usize,
    /// Per-append probability of a torn write.
    pub torn_write_probability: f64,
    /// Per-sync probability of an fsync failure.
    pub sync_error_probability: f64,
    /// Per-rename probability of a rename failure.
    pub rename_error_probability: f64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 42,
            programs: 24,
            checkpoint_every: 7,
            torn_write_probability: 0.1,
            sync_error_probability: 0.1,
            rename_error_probability: 0.25,
        }
    }
}

/// What a soak run survived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakReport {
    /// Programs the workload attempted.
    pub programs: usize,
    /// Programs that ended up applied (acknowledged, or ambiguous and
    /// resolved as applied on reopen).
    pub applied: usize,
    /// Times the store was poisoned and had to be reopened.
    pub reopens: usize,
    /// Checkpoint attempts that failed non-fatally (store stayed
    /// usable without a reopen).
    pub checkpoint_failures: usize,
}

/// Run the workload under seeded random non-fatal faults and verify
/// that every failure either leaves the store consistent or poisons it
/// into a reopen that recovers a state consistent with the oracle.
pub fn fault_soak(config: &SoakConfig) -> TortureResult<SoakReport> {
    let torture = TortureConfig {
        seed: config.seed,
        programs: config.programs,
        checkpoint_every: config.checkpoint_every,
    };
    let fail = |message: String, vfs: &FaultVfs| failure(&torture, None, message, vfs);

    let programs = random_workload(config.seed, config.programs);
    let vfs = FaultVfs::new(FaultPlan::reliable(config.seed));
    let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
    let mut store = Store::create_with_vfs(Arc::clone(&arc), JOURNAL_PATH, bench_scheme())
        .map_err(|err| fail(format!("fault-free creation failed: {err}"), &vfs))?;
    // Creation is kept fault-free so every schedule exercises the
    // interesting part: appends, syncs, checkpoints, and reopens.
    vfs.set_probabilities(
        config.torn_write_probability,
        config.sync_error_probability,
        config.rename_error_probability,
    );

    let mut oracle = store.instance().clone();
    let mut env = Env::with_fuel(DEFAULT_FUEL);
    let mut applied = 0usize;
    let mut reopens = 0usize;
    let mut checkpoint_failures = 0usize;

    // Reopen a poisoned store from the live (not crashed) filesystem,
    // resolving whether `ambiguous` — the program whose append failed —
    // made it into the journal. Faults pause during recovery: recovery
    // I/O failing is a different scenario than this one checks.
    let reopen = |oracle: &mut Instance,
                  env: &mut Env,
                  applied: &mut usize,
                  ambiguous: Option<&Program>|
     -> TortureResult<Store> {
        vfs.set_probabilities(0.0, 0.0, 0.0);
        let recovered = Store::open_with_vfs(Arc::clone(&arc), JOURNAL_PATH)
            .map_err(|err| fail(format!("reopen after poisoning failed: {err}"), &vfs))?;
        let mut resolved = false;
        if recovered.instance().isomorphic_to(oracle) {
            resolved = true;
        } else if let Some(program) = ambiguous {
            let mut with_ambiguous = oracle.clone();
            env.refuel();
            program
                .apply(&mut with_ambiguous, env)
                .map_err(|err| fail(format!("oracle replay failed: {err}"), &vfs))?;
            if recovered.instance().isomorphic_to(&with_ambiguous) {
                *oracle = with_ambiguous;
                *applied += 1;
                resolved = true;
            }
        }
        if !resolved {
            return Err(fail(
                "reopened state matches neither the oracle nor the ambiguous program".into(),
                &vfs,
            ));
        }
        vfs.set_probabilities(
            config.torn_write_probability,
            config.sync_error_probability,
            config.rename_error_probability,
        );
        Ok(recovered)
    };

    for (step, program) in programs.iter().enumerate() {
        if config.checkpoint_every > 0 && step > 0 && step % config.checkpoint_every == 0 {
            if let Err(err) = store.checkpoint() {
                if store.poisoned().is_some() {
                    reopens += 1;
                    store = reopen(&mut oracle, &mut env, &mut applied, None)?;
                } else if matches!(err, StoreError::Io(_)) {
                    // Pre-rename failure: old journal intact, no reopen
                    // needed — but the store must still work.
                    checkpoint_failures += 1;
                } else {
                    return Err(fail(format!("unexpected checkpoint error: {err}"), &vfs));
                }
            }
        }
        match store.execute(program) {
            Ok(_) => {
                env.refuel();
                program
                    .apply(&mut oracle, &mut env)
                    .map_err(|err| fail(format!("oracle apply failed: {err}"), &vfs))?;
                applied += 1;
            }
            Err(StoreError::Model(_)) => {
                // Legitimate rejection: an earlier fault may have
                // dropped the program that introduced this program's
                // labels. The oracle must reject it identically and
                // the store state must be untouched (clone-commit).
                let mut probe = oracle.clone();
                env.refuel();
                if program.apply(&mut probe, &mut env).is_ok() {
                    return Err(fail(
                        format!("store rejected a program the oracle accepts at step {step}"),
                        &vfs,
                    ));
                }
            }
            Err(StoreError::Io(_)) => {
                // An injected append fault must poison the store, and
                // the poisoned store must refuse further mutation with
                // the documented error.
                if store.poisoned().is_none() {
                    return Err(fail(
                        format!("append fault at step {step} did not poison the store"),
                        &vfs,
                    ));
                }
                match store.execute(program) {
                    Err(StoreError::Poisoned(_)) => {}
                    other => {
                        return Err(fail(
                            format!("poisoned store accepted a mutation: {other:?}"),
                            &vfs,
                        ));
                    }
                }
                reopens += 1;
                store = reopen(&mut oracle, &mut env, &mut applied, Some(program))?;
            }
            Err(err) => {
                return Err(fail(format!("unexpected execute error: {err}"), &vfs));
            }
        }
    }
    if !store.instance().isomorphic_to(&oracle) {
        return Err(fail(
            "final store state diverged from the oracle".into(),
            &vfs,
        ));
    }
    Ok(SoakReport {
        programs: config.programs,
        applied,
        reopens,
        checkpoint_failures,
    })
}
