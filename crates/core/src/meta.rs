//! Scheme manipulation (Section 3's list of "modes of interpretation").
//!
//! "The GOOD transformation language has indeed been designed in such a
//! way that it can as well be used for querying, updating, **scheme
//! manipulations, restructuring**, browsing, and visualizing…"
//!
//! Manipulating a scheme with the language requires the scheme to *be*
//! data: this module defines a fixed **meta-scheme** whose instances
//! encode object base schemes — one `MNode` object per node label, one
//! `MEdgeLabel` object per edge label, one `MTriple` object per triple
//! of `P` — plus the encoder and the (validating) decoder. A GOOD
//! program run against the meta-instance *is* a scheme transformation:
//! add an `MTriple` with a node addition, drop a class with a node
//! deletion, rename via the update macro.
//!
//! The decoder is tolerant exactly where graph deletion semantics
//! demands it: an `MTriple` whose endpoints were deleted simply
//! disappears from the decoded scheme (the same way node deletion drops
//! incident edges), while genuinely malformed encodings are errors.

use crate::error::{GoodError, Result};
use crate::instance::Instance;
use crate::label::Label;
use crate::scheme::{Scheme, SchemeBuilder};
use crate::value::{Value, ValueType};
use good_graph::NodeId;
use std::collections::HashMap;

/// The fixed meta-scheme: schemes as object bases.
pub fn meta_scheme() -> Scheme {
    SchemeBuilder::new()
        .object("MNode")
        .object("MEdgeLabel")
        .object("MTriple")
        .printable("MName", ValueType::Str)
        .printable("MKind", ValueType::Str)
        .functional("MNode", "mname", "MName")
        .functional("MNode", "mkind", "MKind")
        .functional("MEdgeLabel", "mename", "MName")
        .functional("MEdgeLabel", "mekind", "MKind")
        .functional("MTriple", "msrc", "MNode")
        .functional("MTriple", "medge", "MEdgeLabel")
        .functional("MTriple", "mdst", "MNode")
        .functional("MTriple", "msubclass", "MKind")
        .build()
}

fn node_kind_string(scheme: &Scheme, label: &Label) -> String {
    match scheme.printable_type(label) {
        Some(value_type) => format!("printable:{value_type}"),
        None => "object".to_string(),
    }
}

fn parse_value_type(text: &str) -> Result<ValueType> {
    Ok(match text {
        "string" => ValueType::Str,
        "int" => ValueType::Int,
        "real" => ValueType::Real,
        "bool" => ValueType::Bool,
        "date" => ValueType::Date,
        "bytes" => ValueType::Bytes,
        other => {
            return Err(GoodError::InvariantViolation(format!(
                "unknown printable domain {other} in meta-instance"
            )))
        }
    })
}

/// Encode `scheme` as an instance over [`meta_scheme`].
pub fn scheme_to_instance(scheme: &Scheme) -> Result<Instance> {
    let mut db = Instance::new(meta_scheme());
    let mut node_objects: HashMap<Label, NodeId> = HashMap::new();
    let mut edge_objects: HashMap<Label, NodeId> = HashMap::new();

    let all_node_labels = scheme
        .object_labels()
        .cloned()
        .chain(scheme.printable_labels().map(|(l, _)| l.clone()));
    for label in all_node_labels {
        let object = db.add_object("MNode")?;
        let name = db.add_printable("MName", label.as_str())?;
        db.add_edge(object, "mname", name)?;
        let kind = db.add_printable("MKind", node_kind_string(scheme, &label))?;
        db.add_edge(object, "mkind", kind)?;
        node_objects.insert(label, object);
    }
    let all_edge_labels = scheme
        .functional_labels()
        .map(|l| (l.clone(), "functional"))
        .chain(
            scheme
                .multivalued_labels()
                .map(|l| (l.clone(), "multivalued")),
        )
        .collect::<Vec<_>>();
    for (label, kind) in all_edge_labels {
        let object = db.add_object("MEdgeLabel")?;
        let name = db.add_printable("MName", label.as_str())?;
        db.add_edge(object, "mename", name)?;
        let kind_node = db.add_printable("MKind", kind)?;
        db.add_edge(object, "mekind", kind_node)?;
        edge_objects.insert(label, object);
    }
    for (src, edge, dst) in scheme.triples() {
        let object = db.add_object("MTriple")?;
        db.add_edge(object, "msrc", node_objects[src])?;
        db.add_edge(object, "medge", edge_objects[edge])?;
        db.add_edge(object, "mdst", node_objects[dst])?;
        let is_subclass = scheme
            .subclass_triples()
            .any(|triple| triple == &(src.clone(), edge.clone(), dst.clone()));
        let flag = db.add_printable("MKind", if is_subclass { "subclass" } else { "plain" })?;
        db.add_edge(object, "msubclass", flag)?;
    }
    Ok(db)
}

fn string_property(db: &Instance, object: NodeId, edge: &str) -> Result<String> {
    let target = db
        .functional_target(object, &Label::new(edge))
        .ok_or_else(|| {
            GoodError::InvariantViolation(format!(
                "meta object {object:?} lacks its {edge} property"
            ))
        })?;
    db.print_value(target)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| {
            GoodError::InvariantViolation(format!("{edge} of {object:?} is not a string"))
        })
}

/// Decode an instance over [`meta_scheme`] back into a [`Scheme`].
///
/// Tolerates `MTriple` objects with deleted endpoints (they decode to
/// nothing — the natural consequence of dropping a class with `ND`);
/// everything else malformed is an error. The decoded scheme is
/// validated before being returned.
pub fn instance_to_scheme(db: &Instance) -> Result<Scheme> {
    let mut scheme = Scheme::new();
    let mut node_names: HashMap<NodeId, Label> = HashMap::new();
    let mut edge_names: HashMap<NodeId, Label> = HashMap::new();

    for object in db.nodes_with_label(&Label::new("MNode")) {
        let name = Label::new(string_property(db, object, "mname")?);
        let kind = string_property(db, object, "mkind")?;
        if kind == "object" {
            scheme.add_object_label(name.clone())?;
        } else if let Some(domain) = kind.strip_prefix("printable:") {
            scheme.add_printable_label(name.clone(), parse_value_type(domain)?)?;
        } else {
            return Err(GoodError::InvariantViolation(format!(
                "unknown node kind {kind} in meta-instance"
            )));
        }
        node_names.insert(object, name);
    }
    for object in db.nodes_with_label(&Label::new("MEdgeLabel")) {
        let name = Label::new(string_property(db, object, "mename")?);
        match string_property(db, object, "mekind")?.as_str() {
            "functional" => scheme.add_functional_label(name.clone())?,
            "multivalued" => scheme.add_multivalued_label(name.clone())?,
            other => {
                return Err(GoodError::InvariantViolation(format!(
                    "unknown edge kind {other} in meta-instance"
                )))
            }
        };
        edge_names.insert(object, name);
    }
    let mut subclasses = Vec::new();
    for object in db.nodes_with_label(&Label::new("MTriple")) {
        let src = db.functional_target(object, &Label::new("msrc"));
        let edge = db.functional_target(object, &Label::new("medge"));
        let dst = db.functional_target(object, &Label::new("mdst"));
        let (Some(src), Some(edge), Some(dst)) = (src, edge, dst) else {
            continue; // an endpoint was deleted: the triple is gone too
        };
        let (Some(src), Some(edge), Some(dst)) = (
            node_names.get(&src),
            edge_names.get(&edge),
            node_names.get(&dst),
        ) else {
            continue;
        };
        scheme.add_triple(src.clone(), edge.clone(), dst.clone())?;
        if string_property(db, object, "msubclass")? == "subclass" {
            subclasses.push((src.clone(), edge.clone(), dst.clone()));
        }
    }
    for (src, edge, dst) in subclasses {
        scheme.mark_subclass(src, edge, dst)?;
    }
    scheme.validate()?;
    Ok(scheme)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{NodeAddition, NodeDeletion};
    use crate::pattern::Pattern;

    fn sample() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .object("Reference")
            .printable("String", ValueType::Str)
            .printable("Date", ValueType::Date)
            .functional("Info", "name", "String")
            .functional("Info", "created", "Date")
            .multivalued("Info", "links-to", "Info")
            .subclass("Reference", "isa", "Info")
            .build()
    }

    #[test]
    fn meta_scheme_validates() {
        meta_scheme().validate().unwrap();
    }

    #[test]
    fn scheme_roundtrips_through_the_meta_instance() {
        let original = sample();
        let meta = scheme_to_instance(&original).unwrap();
        meta.validate().unwrap();
        let decoded = instance_to_scheme(&meta).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn hypermedia_sized_schemes_roundtrip() {
        // The bench scheme exercises several printable domains.
        let original = crate::gen::bench_scheme();
        let meta = scheme_to_instance(&original).unwrap();
        let decoded = instance_to_scheme(&meta).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn scheme_manipulation_by_good_program() {
        // Add a new triple (Info, about, String) to the scheme by
        // running GOOD operations ON THE META-INSTANCE.
        let mut meta = scheme_to_instance(&sample()).unwrap();

        // 1. NA: a new MEdgeLabel object for `about` (multivalued)…
        //    the printables must exist to be matched, so seed them.
        meta.add_printable("MName", "about").unwrap();
        meta.add_printable("MKind", "multivalued").unwrap();
        meta.add_printable("MKind", "plain").unwrap();
        let mut p = Pattern::new();
        let name = p.printable("MName", "about");
        let kind = p.printable("MKind", "multivalued");
        NodeAddition::new(
            p,
            "MEdgeLabel",
            [(Label::new("mename"), name), (Label::new("mekind"), kind)],
        )
        .apply(&mut meta)
        .unwrap();

        // 2. NA: the MTriple wiring Info -about-> String.
        let mut p = Pattern::new();
        let src = p.node("MNode");
        let src_name = p.printable("MName", "Info");
        p.edge(src, "mname", src_name);
        let edge = p.node("MEdgeLabel");
        let edge_name = p.printable("MName", "about");
        p.edge(edge, "mename", edge_name);
        let dst = p.node("MNode");
        let dst_name = p.printable("MName", "String");
        p.edge(dst, "mname", dst_name);
        let flag = p.printable("MKind", "plain");
        NodeAddition::new(
            p,
            "MTriple",
            [
                (Label::new("msrc"), src),
                (Label::new("medge"), edge),
                (Label::new("mdst"), dst),
                (Label::new("msubclass"), flag),
            ],
        )
        .apply(&mut meta)
        .unwrap();

        let evolved = instance_to_scheme(&meta).unwrap();
        assert!(evolved.allows(&"Info".into(), &"about".into(), &"String".into()));
        // The old scheme is a subscheme of the evolved one.
        assert!(sample().is_subscheme_of(&evolved));
    }

    #[test]
    fn dropping_a_class_drops_its_triples() {
        // Delete the Reference class from the meta-instance; the isa
        // and `in`-style triples referencing it decode to nothing.
        let mut meta = scheme_to_instance(&sample()).unwrap();
        let mut p = Pattern::new();
        let node = p.node("MNode");
        let name = p.printable("MName", "Reference");
        p.edge(node, "mname", name);
        NodeDeletion::new(p, node).apply(&mut meta).unwrap();

        let evolved = instance_to_scheme(&meta).unwrap();
        assert!(!evolved.is_object_label(&"Reference".into()));
        assert!(!evolved.allows(&"Reference".into(), &"isa".into(), &"Info".into()));
        // Everything else survives.
        assert!(evolved.allows(&"Info".into(), &"name".into(), &"String".into()));
        evolved.validate().unwrap();
    }

    #[test]
    fn malformed_meta_instances_are_rejected() {
        let mut meta = Instance::new(meta_scheme());
        // An MNode without properties.
        meta.add_object("MNode").unwrap();
        assert!(matches!(
            instance_to_scheme(&meta),
            Err(GoodError::InvariantViolation(_))
        ));

        // An MNode with a bogus kind.
        let mut meta = Instance::new(meta_scheme());
        let object = meta.add_object("MNode").unwrap();
        let name = meta.add_printable("MName", "X").unwrap();
        meta.add_edge(object, "mname", name).unwrap();
        let kind = meta.add_printable("MKind", "nonsense").unwrap();
        meta.add_edge(object, "mkind", kind).unwrap();
        assert!(instance_to_scheme(&meta).is_err());
    }

    #[test]
    fn empty_scheme_roundtrips() {
        let empty = Scheme::new();
        let meta = scheme_to_instance(&empty).unwrap();
        assert_eq!(instance_to_scheme(&meta).unwrap(), empty);
    }
}
