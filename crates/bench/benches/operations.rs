//! E2 — throughput of the five basic operations over instance size.
//! Validates that operations are set-oriented: cost tracks the number
//! of matchings, applied "in parallel" per the paper's Section 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use good_bench::{instance_of, SIZES};
use good_core::label::Label;
use good_core::ops::{Abstraction, EdgeAddition, EdgeDeletion, NodeAddition, NodeDeletion};
use good_core::pattern::Pattern;
use std::time::Duration;

fn bench_node_addition(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2/node-addition");
    for size in SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter_batched(
                || instance_of(size),
                |mut db| {
                    let mut p = Pattern::new();
                    let info = p.node("Info");
                    let date = p.node("Date");
                    p.edge(info, "created", date);
                    NodeAddition::new(p, "Tag", [(Label::new("of"), info)])
                        .apply(&mut db)
                        .expect("applies")
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_edge_addition(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2/edge-addition");
    for size in SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter_batched(
                || instance_of(size),
                |mut db| {
                    let mut p = Pattern::new();
                    let a = p.node("Info");
                    let b2 = p.node("Info");
                    p.edge(a, "links-to", b2);
                    EdgeAddition::multivalued(p, b2, "rec-links-to", a)
                        .apply(&mut db)
                        .expect("applies")
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_node_deletion(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2/node-deletion");
    for size in SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter_batched(
                || instance_of(size),
                |mut db| {
                    let mut p = Pattern::new();
                    let a = p.node("Info");
                    let b2 = p.node("Info");
                    p.edge(a, "links-to", b2);
                    NodeDeletion::new(p, b2).apply(&mut db).expect("applies")
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_edge_deletion(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2/edge-deletion");
    for size in SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter_batched(
                || instance_of(size),
                |mut db| {
                    let mut p = Pattern::new();
                    let a = p.node("Info");
                    let b2 = p.node("Info");
                    p.edge(a, "links-to", b2);
                    EdgeDeletion::single(p, a, "links-to", b2)
                        .apply(&mut db)
                        .expect("applies")
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_abstraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2/abstraction");
    for size in SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter_batched(
                || instance_of(size),
                |mut db| {
                    let mut p = Pattern::new();
                    let info = p.node("Info");
                    Abstraction::new(p, info, "Grp", "member", "links-to")
                        .apply(&mut db)
                        .expect("applies")
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_node_addition, bench_edge_addition, bench_node_deletion,
              bench_edge_deletion, bench_abstraction
}
criterion_main!(benches);
