//! Compilation of GOODQL to GOOD patterns and programs.
//!
//! A query compiles to:
//!
//! * one GOOD [`Pattern`] — nodes for variables, edges for plain links,
//!   crossed edges for `NOT`, printable predicates for WHERE clauses —
//!   exactly the paper's Section 3 object ("a pattern is syntactically
//!   itself an instance"), and
//! * a **path-derivation program** of [`Step`]s: for each property path
//!   `-[:e*m..M]->` a fresh multivalued edge label is derived by edge
//!   additions and (for unbounded repetition) the recursion macro's
//!   starred edge addition (Section 4.1, Figure 28), materialized into
//!   a scratch clone of the instance before matching. Clones are `Arc`
//!   bumps, so the scratch is cheap and the base instance is untouched.
//!
//! The walk-length algebra behind the lowering:
//!
//! ```text
//! lengths ≥ 1           = TC(B)                 (seed + starred EA)
//! lengths ≥ m, m ≥ 2    = B^(m-1) ∘ TC(B)       (m-1 composing EAs)
//! lengths 1..=K         = seed + (K-1) rounds of EA[x -d→ y -e→ z ⇒ x -d→ z]
//! lengths m..=M, m ≥ 2  = B^(m-1) ∘ (lengths 1..=M-m+1)
//! length 0              = identity over the class (one reflexive EA)
//! ```
//!
//! The same derivations are recomputed independently by the relational
//! (BFS) and Tarski (binary-relation algebra) lanes in [`crate::exec`],
//! which is what makes the three-backend differential oracle a real
//! cross-check rather than one computation viewed three ways.

use crate::ast::{CmpOp, Predicate, Query};
use crate::QueryError;
use good_core::label::Label;
use good_core::macros::recursion::RecursiveEdgeAddition;
use good_core::ops::EdgeAddition;
use good_core::pattern::{Pattern, ValuePredicate};
use good_core::program::Operation;
use good_core::scheme::Scheme;
use good_core::textual::{format_operation, format_pattern};
use good_core::value::Value;
use good_graph::NodeId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// The largest admissible explicit path bound. Each bounded repetition
/// lowers to O(bound) edge additions, so this caps compiled program
/// size the way [`crate::parser::MAX_QUERY_LEN`] caps parse work.
pub const MAX_PATH_BOUND: u32 = 16;

/// One property path occurrence, lowered to a derived edge label.
#[derive(Debug, Clone)]
pub struct PathDerivation {
    /// Source variable of the link.
    pub src_var: String,
    /// Destination variable of the link.
    pub dst_var: String,
    /// The (homogeneous) class the path ranges over.
    pub class: Label,
    /// The base edge label being repeated.
    pub edge: Label,
    /// Minimum walk length.
    pub min: u32,
    /// Maximum walk length (`None` = unbounded).
    pub max: Option<u32>,
    /// The fresh derived edge label the pattern matches against.
    pub derived: Label,
}

/// One step of the compiled path-derivation program: a basic GOOD
/// operation or a starred (recursive) edge addition.
#[derive(Debug, Clone)]
pub enum Step {
    /// A basic operation (always `EA` today).
    Op(Operation),
    /// The recursion macro: repeat the edge addition to fixpoint.
    Star(RecursiveEdgeAddition),
}

/// A compiled query: resolved labels, the combined WHERE predicates per
/// variable, and the property-path derivations.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The source AST.
    pub ast: Query,
    /// Variables in first-appearance order (pattern node order).
    pub vars: Vec<String>,
    /// Resolved class label per variable.
    pub labels: BTreeMap<String, Label>,
    /// Exact-value constraints per variable.
    pub values: BTreeMap<String, Value>,
    /// Combined WHERE predicate per variable.
    pub predicates: BTreeMap<String, ValuePredicate>,
    /// Property-path derivations, in link order.
    pub paths: Vec<PathDerivation>,
}

/// Compile a parsed query against `scheme`.
pub fn compile(query: &Query, scheme: &Scheme) -> Result<CompiledQuery, QueryError> {
    let compiler = Compiler { scheme };
    compiler.run(query)
}

struct Compiler<'a> {
    scheme: &'a Scheme,
}

fn err(pos: usize, message: impl Into<String>) -> QueryError {
    QueryError::Compile {
        pos,
        message: message.into(),
    }
}

impl<'a> Compiler<'a> {
    fn run(&self, query: &Query) -> Result<CompiledQuery, QueryError> {
        // 1. Collect variables in first-appearance order, explicit
        //    labels, and exact-value constraints.
        let mut vars: Vec<String> = Vec::new();
        let mut first_pos: BTreeMap<String, usize> = BTreeMap::new();
        let mut labels: BTreeMap<String, Label> = BTreeMap::new();
        let mut values: BTreeMap<String, Value> = BTreeMap::new();
        for chain in &query.chains {
            let nodes =
                std::iter::once(&chain.head).chain(chain.links.iter().map(|(_, node)| node));
            for node in nodes {
                if !first_pos.contains_key(&node.var) {
                    first_pos.insert(node.var.clone(), node.pos);
                    vars.push(node.var.clone());
                }
                if let Some(label) = &node.label {
                    let label = Label::new(label.as_str());
                    if !self.scheme.is_node_label(&label) {
                        return Err(err(node.pos, format!("unknown label `{label}`")));
                    }
                    if let Some(existing) = labels.get(&node.var) {
                        if existing != &label {
                            return Err(err(
                                node.pos,
                                format!(
                                    "variable `{}` is declared both as `{existing}` and `{label}`",
                                    node.var
                                ),
                            ));
                        }
                    }
                    labels.insert(node.var.clone(), label);
                }
                if let Some(value) = &node.value {
                    if let Some(existing) = values.get(&node.var) {
                        if existing != value {
                            return Err(err(
                                node.pos,
                                format!(
                                    "variable `{}` has two different value constraints",
                                    node.var
                                ),
                            ));
                        }
                    }
                    values.insert(node.var.clone(), value.clone());
                }
            }
        }

        // 2. Infer missing labels from the scheme's triple set, to a
        //    fixpoint: a link whose one endpoint is labeled determines
        //    the other when the scheme licenses exactly one class there.
        loop {
            let mut progressed = false;
            for chain in &query.chains {
                let mut prev = &chain.head;
                for (link, node) in &chain.links {
                    let edge = Label::new(link.edge.as_str());
                    let src_label = labels.get(&prev.var).cloned();
                    let dst_label = labels.get(&node.var).cloned();
                    if link.path.is_some() {
                        // Property paths are homogeneous: endpoints share
                        // one class, so either label determines the other.
                        match (&src_label, &dst_label) {
                            (Some(label), None) => {
                                labels.insert(node.var.clone(), label.clone());
                                progressed = true;
                            }
                            (None, Some(label)) => {
                                labels.insert(prev.var.clone(), label.clone());
                                progressed = true;
                            }
                            _ => {}
                        }
                    } else {
                        if src_label.is_some() && dst_label.is_none() {
                            let src = src_label.clone().expect("checked");
                            let candidates: BTreeSet<&Label> = self
                                .scheme
                                .triples()
                                .filter(|(s, e, _)| s == &src && e == &edge)
                                .map(|(_, _, d)| d)
                                .collect();
                            if candidates.len() == 1 {
                                let only = (*candidates.iter().next().expect("len 1")).clone();
                                labels.insert(node.var.clone(), only);
                                progressed = true;
                            }
                        }
                        if dst_label.is_some() && !labels.contains_key(&prev.var) {
                            let dst = dst_label.clone().expect("checked");
                            let candidates: BTreeSet<&Label> = self
                                .scheme
                                .triples()
                                .filter(|(_, e, d)| d == &dst && e == &edge)
                                .map(|(s, _, _)| s)
                                .collect();
                            if candidates.len() == 1 {
                                let only = (*candidates.iter().next().expect("len 1")).clone();
                                labels.insert(prev.var.clone(), only);
                                progressed = true;
                            }
                        }
                    }
                    prev = node;
                }
            }
            if !progressed {
                break;
            }
        }
        for var in &vars {
            if !labels.contains_key(var) {
                return Err(err(
                    first_pos[var],
                    format!("cannot infer a class for `{var}` — declare it as `({var}:Label)`"),
                ));
            }
        }

        // 3. Check links against the scheme and lower property paths.
        let mut paths: Vec<PathDerivation> = Vec::new();
        let mut used_labels: BTreeSet<Label> = BTreeSet::new();
        for chain in &query.chains {
            let mut prev = &chain.head;
            for (link, node) in &chain.links {
                let edge = Label::new(link.edge.as_str());
                let src = labels[&prev.var].clone();
                let dst = labels[&node.var].clone();
                if !self.scheme.is_edge_label(&edge) {
                    return Err(err(link.pos, format!("unknown edge label `{edge}`")));
                }
                match &link.path {
                    None => {
                        if !self.scheme.allows(&src, &edge, &dst) {
                            return Err(err(
                                link.pos,
                                format!("the scheme has no triple `{src} -{edge}-> {dst}`"),
                            ));
                        }
                    }
                    Some(spec) => {
                        if src != dst {
                            return Err(err(
                                link.pos,
                                format!(
                                    "property-path endpoints must share one class, got `{src}` \
                                     and `{dst}`"
                                ),
                            ));
                        }
                        // Homogeneity: walking `edge` from a `src` node
                        // must always land on `src` nodes, or the
                        // intermediate hops of the walk are unlabelable.
                        let mixed = self
                            .scheme
                            .triples()
                            .find(|(s, e, d)| s == &src && e == &edge && d != &src);
                        if let Some((_, _, other)) = mixed {
                            return Err(err(
                                link.pos,
                                format!(
                                    "property path over `{edge}` needs a homogeneous `{src} \
                                     -{edge}-> {src}` triple, but the scheme also has `{src} \
                                     -{edge}-> {other}`"
                                ),
                            ));
                        }
                        if !self.scheme.allows(&src, &edge, &src) {
                            return Err(err(
                                link.pos,
                                format!("the scheme has no triple `{src} -{edge}-> {src}`"),
                            ));
                        }
                        let too_big = spec.min > MAX_PATH_BOUND
                            || spec.max.is_some_and(|max| max > MAX_PATH_BOUND);
                        if too_big {
                            return Err(err(
                                link.pos,
                                format!("path bound too large (limit {MAX_PATH_BOUND})"),
                            ));
                        }
                        if let Some(max) = spec.max {
                            if spec.min > max {
                                return Err(err(
                                    link.pos,
                                    format!("empty path range *{}..{max}", spec.min),
                                ));
                            }
                        }
                        let derived = self.fresh_edge_label(
                            &format!("qpath{}-{edge}", paths.len()),
                            &mut used_labels,
                        );
                        paths.push(PathDerivation {
                            src_var: prev.var.clone(),
                            dst_var: node.var.clone(),
                            class: src,
                            edge,
                            min: spec.min,
                            max: spec.max,
                            derived,
                        });
                    }
                }
                prev = node;
            }
        }

        // 4. WHERE predicates: typed against the variable's class.
        let mut combined: BTreeMap<String, Vec<ValuePredicate>> = BTreeMap::new();
        for predicate in &query.predicates {
            match predicate {
                Predicate::NoEdge {
                    src,
                    edge,
                    dst,
                    pos,
                    ..
                } => {
                    let src_label = self.bound_label(&labels, src, *pos)?;
                    let dst_label = self.bound_label(&labels, dst, *pos)?;
                    let edge = Label::new(edge.as_str());
                    if !self.scheme.allows(src_label, &edge, dst_label) {
                        return Err(err(
                            *pos,
                            format!("the scheme has no triple `{src_label} -{edge}-> {dst_label}`"),
                        ));
                    }
                }
                other => {
                    let (var, pos) = match other {
                        Predicate::Cmp { var, pos, .. }
                        | Predicate::Contains { var, pos, .. }
                        | Predicate::StartsWith { var, pos, .. }
                        | Predicate::Between { var, pos, .. }
                        | Predicate::OneOf { var, pos, .. } => (var, *pos),
                        Predicate::NoEdge { .. } => unreachable!("handled above"),
                    };
                    let label = self.bound_label(&labels, var, pos)?;
                    let Some(expected) = self.scheme.printable_type(label) else {
                        return Err(err(
                            pos,
                            format!("`{var}` is a `{label}` object — predicates need a printable"),
                        ));
                    };
                    let value_pred = match other {
                        Predicate::Cmp { op, value, .. } => {
                            if value.value_type() != expected {
                                return Err(err(
                                    pos,
                                    format!(
                                        "`{var}` holds {expected} values, not {}",
                                        value.value_type()
                                    ),
                                ));
                            }
                            match op {
                                CmpOp::Eq => ValuePredicate::Eq(value.clone()),
                                CmpOp::Ne => ValuePredicate::Ne(value.clone()),
                                CmpOp::Lt => ValuePredicate::Lt(value.clone()),
                                CmpOp::Le => ValuePredicate::Le(value.clone()),
                                CmpOp::Gt => ValuePredicate::Gt(value.clone()),
                                CmpOp::Ge => ValuePredicate::Ge(value.clone()),
                            }
                        }
                        Predicate::Contains { needle, .. } => {
                            self.require_str(expected, var, pos)?;
                            ValuePredicate::Contains(needle.clone())
                        }
                        Predicate::StartsWith { prefix, .. } => {
                            self.require_str(expected, var, pos)?;
                            ValuePredicate::StartsWith(prefix.clone())
                        }
                        Predicate::Between { lo, hi, .. } => {
                            if lo.value_type() != expected || hi.value_type() != expected {
                                return Err(err(pos, format!("`{var}` holds {expected} values")));
                            }
                            ValuePredicate::Between(lo.clone(), hi.clone())
                        }
                        Predicate::OneOf { values, .. } => {
                            for value in values {
                                if value.value_type() != expected {
                                    return Err(err(
                                        pos,
                                        format!("`{var}` holds {expected} values"),
                                    ));
                                }
                            }
                            ValuePredicate::OneOf(values.clone())
                        }
                        Predicate::NoEdge { .. } => unreachable!("handled above"),
                    };
                    combined.entry(var.clone()).or_default().push(value_pred);
                }
            }
        }
        let predicates: BTreeMap<String, ValuePredicate> = combined
            .into_iter()
            .map(|(var, mut preds)| {
                let pred = if preds.len() == 1 {
                    preds.remove(0)
                } else {
                    ValuePredicate::All(preds)
                };
                (var, pred)
            })
            .collect();

        // 5. Exact values and predicates only make sense on printables.
        for (var, value) in &values {
            let label = &labels[var];
            let Some(expected) = self.scheme.printable_type(label) else {
                return Err(err(
                    first_pos[var],
                    format!("`{var}` is a `{label}` object — it cannot carry a value"),
                ));
            };
            if value.value_type() != expected {
                return Err(err(
                    first_pos[var],
                    format!(
                        "`{var}` holds {expected} values, not {}",
                        value.value_type()
                    ),
                ));
            }
        }

        // 6. RETURN variables must be bound in MATCH.
        for var in &query.returns {
            if !labels.contains_key(var) {
                return Err(err(
                    0,
                    format!("RETURN variable `{var}` is not bound in MATCH"),
                ));
            }
        }

        Ok(CompiledQuery {
            ast: query.clone(),
            vars,
            labels,
            values,
            predicates,
            paths,
        })
    }

    fn bound_label<'b>(
        &self,
        labels: &'b BTreeMap<String, Label>,
        var: &str,
        pos: usize,
    ) -> Result<&'b Label, QueryError> {
        labels
            .get(var)
            .ok_or_else(|| err(pos, format!("variable `{var}` is not bound in MATCH")))
    }

    fn require_str(
        &self,
        expected: good_core::value::ValueType,
        var: &str,
        pos: usize,
    ) -> Result<(), QueryError> {
        if expected != good_core::value::ValueType::Str {
            return Err(err(pos, format!("`{var}` is not a string printable")));
        }
        Ok(())
    }

    /// A derived edge label absent from both the scheme and the set of
    /// labels this compilation has already minted.
    fn fresh_edge_label(&self, base: &str, used: &mut BTreeSet<Label>) -> Label {
        let mut candidate = Label::new(base);
        while self.scheme.is_edge_label(&candidate)
            || self.scheme.is_node_label(&candidate)
            || used.contains(&candidate)
        {
            candidate = Label::new(format!("{candidate}-q"));
        }
        used.insert(candidate.clone());
        candidate
    }
}

impl CompiledQuery {
    /// Build the GOOD pattern. With `include_predicates` false, WHERE
    /// predicates are left off the printable nodes (the Tarski lane
    /// post-filters instead — its binary decomposition keeps no value
    /// column). Node ids are deterministic: variables in
    /// first-appearance order, so both flavors agree on ids.
    pub fn pattern(&self, include_predicates: bool) -> (Pattern, BTreeMap<String, NodeId>) {
        let mut pattern = Pattern::new();
        let mut nodes: BTreeMap<String, NodeId> = BTreeMap::new();
        for var in &self.vars {
            let label = self.labels[var].clone();
            let value = self.values.get(var);
            let predicate = self.predicates.get(var);
            let node = match (value, predicate, include_predicates) {
                (Some(value), None, _) | (Some(value), Some(_), false) => {
                    pattern.printable(label, value.clone())
                }
                (Some(value), Some(pred), true) => pattern.predicate_node(
                    label,
                    ValuePredicate::All(vec![ValuePredicate::Eq(value.clone()), pred.clone()]),
                ),
                (None, Some(pred), true) => pattern.predicate_node(label, pred.clone()),
                (None, _, _) => pattern.node(label),
            };
            nodes.insert(var.clone(), node);
        }
        let mut path_index = 0usize;
        for chain in &self.ast.chains {
            let mut prev = &chain.head;
            for (link, node) in &chain.links {
                let src = nodes[&prev.var];
                let dst = nodes[&node.var];
                match &link.path {
                    None => pattern.edge(src, Label::new(link.edge.as_str()), dst),
                    Some(_) => {
                        pattern.edge(src, self.paths[path_index].derived.clone(), dst);
                        path_index += 1;
                    }
                }
                prev = node;
            }
        }
        for predicate in &self.ast.predicates {
            if let Predicate::NoEdge { src, edge, dst, .. } = predicate {
                pattern.negated_edge(nodes[src], Label::new(edge.as_str()), nodes[dst]);
            }
        }
        (pattern, nodes)
    }

    /// The compiled path-derivation program: the GOOD operations (edge
    /// additions plus starred edge additions) that materialize each
    /// derived path label into a scratch instance.
    pub fn core_steps(&self) -> Vec<Step> {
        let mut steps = Vec::new();
        let mut labels = BTreeSet::new();
        for path in &self.paths {
            path_steps(path, &mut steps, &mut labels);
        }
        steps
    }

    /// Every derived edge label the compiled program mints, paired with
    /// its class: `(class, label)` means the scratch scheme needs the
    /// multivalued triple `class -label-> class`. Execution engines
    /// pre-register these so a derivation that happens to add zero
    /// edges (empty seed) still leaves the match pattern valid.
    pub fn derived_triples(&self) -> Vec<(Label, Label)> {
        let mut out = Vec::new();
        for path in &self.paths {
            let mut steps = Vec::new();
            let mut labels = BTreeSet::new();
            path_steps(path, &mut steps, &mut labels);
            for label in labels {
                out.push((path.class.clone(), label));
            }
        }
        out
    }

    /// Render the compiled program — derivation steps plus the final
    /// match pattern — in the paper's bracket notation.
    pub fn render_program(&self, scheme: &Scheme) -> String {
        let mut out = String::new();
        let steps = self.core_steps();
        if steps.is_empty() {
            out.push_str("-- no path derivations --\n");
        }
        for (index, step) in steps.iter().enumerate() {
            match step {
                Step::Op(op) => {
                    writeln!(out, "step {}:", index + 1).expect("write");
                    out.push_str(&format_operation(op, scheme));
                }
                Step::Star(star) => {
                    writeln!(out, "step {}: (starred — repeat to fixpoint)", index + 1)
                        .expect("write");
                    out.push_str(&format_operation(
                        &Operation::EdgeAdd(star.base.clone()),
                        scheme,
                    ));
                }
            }
        }
        let (pattern, nodes) = self.pattern(true);
        let by_node: BTreeMap<NodeId, &String> =
            nodes.iter().map(|(var, node)| (*node, var)).collect();
        out.push_str("match J where J =\n");
        out.push_str(&format_pattern(&pattern));
        out.push_str("variables:");
        for var in &self.vars {
            write!(out, " {var}={:?}", nodes[var]).expect("write");
        }
        out.push('\n');
        let _ = by_node;
        out
    }
}

/// Emit the derivation steps for one property path (see the module docs
/// for the walk-length algebra). Every derived label the steps mint is
/// collected into `labels` for scheme pre-registration.
fn path_steps(path: &PathDerivation, steps: &mut Vec<Step>, labels: &mut BTreeSet<Label>) {
    let class = &path.class;
    let edge = &path.edge;
    let derived = &path.derived;
    labels.insert(derived.clone());
    match path.max {
        None => {
            // Unbounded: lengths ≥ 1 is the transitive closure — the
            // recursion macro's seed + star (Figure 28).
            let closure = if path.min <= 1 {
                derived.clone()
            } else {
                Label::new(format!("{derived}-walk"))
            };
            labels.insert(closure.clone());
            steps.push(Step::Op(Operation::EdgeAdd(ea_seed(class, edge, &closure))));
            steps.push(Step::Star(RecursiveEdgeAddition::new(ea_extend(
                class, &closure, edge,
            ))));
            if path.min == 0 {
                steps.push(Step::Op(Operation::EdgeAdd(ea_reflexive(class, derived))));
            }
            compose_prefix(path.min, class, edge, &closure, derived, steps, labels);
        }
        Some(0) => {
            // `*0..0`: the identity pairs only.
            steps.push(Step::Op(Operation::EdgeAdd(ea_reflexive(class, derived))));
        }
        Some(max) => {
            // Bounded: lengths 1..=K, then shift by composing with the
            // base edge min-1 times.
            let k = max - path.min.max(1) + 1;
            let bounded = if path.min <= 1 {
                derived.clone()
            } else {
                Label::new(format!("{derived}-base"))
            };
            labels.insert(bounded.clone());
            steps.push(Step::Op(Operation::EdgeAdd(ea_seed(class, edge, &bounded))));
            for _ in 1..k {
                steps.push(Step::Op(Operation::EdgeAdd(ea_extend(
                    class, &bounded, edge,
                ))));
            }
            if path.min == 0 {
                steps.push(Step::Op(Operation::EdgeAdd(ea_reflexive(class, derived))));
            }
            compose_prefix(path.min, class, edge, &bounded, derived, steps, labels);
        }
    }
}

/// `derived = B^(min-1) ∘ acc` for `min ≥ 2`: a chain of composing edge
/// additions through intermediate labels.
#[allow(clippy::too_many_arguments)]
fn compose_prefix(
    min: u32,
    class: &Label,
    edge: &Label,
    acc: &Label,
    derived: &Label,
    steps: &mut Vec<Step>,
    labels: &mut BTreeSet<Label>,
) {
    if min < 2 {
        return;
    }
    let mut prev = acc.clone();
    for k in 2..=min {
        let out = if k == min {
            derived.clone()
        } else {
            Label::new(format!("{derived}-ge{k}"))
        };
        labels.insert(out.clone());
        steps.push(Step::Op(Operation::EdgeAdd(ea_compose(
            class, edge, &prev, &out,
        ))));
        prev = out;
    }
}

/// `EA[x -edge→ y ⇒ x -out→ y]`.
fn ea_seed(class: &Label, edge: &Label, out: &Label) -> EdgeAddition {
    let mut p = Pattern::new();
    let x = p.node(class.clone());
    let y = p.node(class.clone());
    p.edge(x, edge.clone(), y);
    EdgeAddition::multivalued(p, x, out.clone(), y)
}

/// `EA[x -acc→ y -edge→ z ⇒ x -acc→ z]` — one closure round.
fn ea_extend(class: &Label, acc: &Label, edge: &Label) -> EdgeAddition {
    let mut p = Pattern::new();
    let x = p.node(class.clone());
    let y = p.node(class.clone());
    let z = p.node(class.clone());
    p.edge(x, acc.clone(), y);
    p.edge(y, edge.clone(), z);
    EdgeAddition::multivalued(p, x, acc.clone(), z)
}

/// `EA[x -edge→ y -prev→ z ⇒ x -out→ z]` — prepend one base hop.
fn ea_compose(class: &Label, edge: &Label, prev: &Label, out: &Label) -> EdgeAddition {
    let mut p = Pattern::new();
    let x = p.node(class.clone());
    let y = p.node(class.clone());
    let z = p.node(class.clone());
    p.edge(x, edge.clone(), y);
    p.edge(y, prev.clone(), z);
    EdgeAddition::multivalued(p, x, out.clone(), z)
}

/// `EA[x ⇒ x -out→ x]` — the identity pairs (walk length 0).
fn ea_reflexive(class: &Label, out: &Label) -> EdgeAddition {
    let mut p = Pattern::new();
    let x = p.node(class.clone());
    EdgeAddition::multivalued(p, x, out.clone(), x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use good_core::gen::bench_scheme;

    fn compiled(text: &str) -> CompiledQuery {
        compile(&parse_query(text).expect("parse"), &bench_scheme()).expect("compile")
    }

    fn compile_err(text: &str) -> QueryError {
        compile(&parse_query(text).expect("parse"), &bench_scheme())
            .expect_err("should not compile")
    }

    #[test]
    fn labels_inferred_from_scheme() {
        let q = compiled("MATCH (a:Info)-[:name]->(n) RETURN n");
        assert_eq!(q.labels["n"].as_str(), "String");
        let q = compiled("MATCH (a)-[:created]->(d:Date) RETURN a");
        assert_eq!(q.labels["a"].as_str(), "Info");
    }

    #[test]
    fn path_endpoint_labels_inferred() {
        let q = compiled("MATCH (a:Info)-[:links-to*]->(b) RETURN b");
        assert_eq!(q.labels["b"].as_str(), "Info");
    }

    #[test]
    fn unknown_label_rejected() {
        let err = compile_err("MATCH (a:Nope) RETURN a");
        assert!(err.to_string().contains("unknown label"), "{err}");
    }

    #[test]
    fn uninferable_label_rejected() {
        let err = compile_err("MATCH (a) RETURN a");
        assert!(err.to_string().contains("cannot infer"), "{err}");
    }

    #[test]
    fn heterogeneous_path_rejected() {
        let err = compile_err("MATCH (a:Info)-[:name*]->(n:String) RETURN a");
        assert!(err.to_string().contains("share one class"), "{err}");
    }

    #[test]
    fn oversized_bound_rejected() {
        let err = compile_err("MATCH (a:Info)-[:links-to*1..99]->(b:Info) RETURN a");
        assert!(err.to_string().contains("path bound too large"), "{err}");
    }

    #[test]
    fn empty_range_rejected() {
        let err = compile_err("MATCH (a:Info)-[:links-to*3..2]->(b:Info) RETURN a");
        assert!(err.to_string().contains("empty path range"), "{err}");
    }

    #[test]
    fn predicate_on_object_rejected() {
        let err = compile_err("MATCH (a:Info) WHERE a = 3 RETURN a");
        assert!(err.to_string().contains("printable"), "{err}");
    }

    #[test]
    fn type_mismatch_rejected() {
        let err = compile_err("MATCH (a:Info)-[:name]->(n:String) WHERE n < 3 RETURN a");
        assert!(err.to_string().contains("string"), "{err}");
    }

    #[test]
    fn unbound_return_rejected() {
        let err = compile_err("MATCH (a:Info) RETURN b");
        assert!(err.to_string().contains("not bound"), "{err}");
    }

    #[test]
    fn star_path_compiles_to_seed_plus_star() {
        let q = compiled("MATCH (a:Info)-[:links-to*]->(b:Info) RETURN a, b");
        let steps = q.core_steps();
        assert_eq!(steps.len(), 2);
        assert!(matches!(steps[0], Step::Op(Operation::EdgeAdd(_))));
        assert!(matches!(steps[1], Step::Star(_)));
    }

    #[test]
    fn bounded_path_compiles_to_plain_edge_additions() {
        let q = compiled("MATCH (a:Info)-[:links-to*1..3]->(b:Info) RETURN a, b");
        let steps = q.core_steps();
        assert_eq!(steps.len(), 3); // seed + 2 extension rounds
        assert!(steps
            .iter()
            .all(|step| matches!(step, Step::Op(Operation::EdgeAdd(_)))));
    }

    #[test]
    fn min_two_path_gets_compose_step() {
        let q = compiled("MATCH (a:Info)-[:links-to*2..3]->(b:Info) RETURN a, b");
        // lengths 1..=2 (seed + 1 round) then one compose into derived.
        assert_eq!(q.core_steps().len(), 3);
    }

    #[test]
    fn derived_labels_are_fresh() {
        let q = compiled("MATCH (a:Info)-[:links-to*]->(b:Info)-[:links-to*]->(c:Info) RETURN a");
        assert_eq!(q.paths.len(), 2);
        assert_ne!(q.paths[0].derived, q.paths[1].derived);
        assert!(!bench_scheme().is_edge_label(&q.paths[0].derived));
    }

    #[test]
    fn pattern_flavors_share_node_ids() {
        let q = compiled("MATCH (a:Info)-[:name]->(n:String) WHERE n CONTAINS \"info\" RETURN a");
        let (with, nodes_with) = q.pattern(true);
        let (without, nodes_without) = q.pattern(false);
        assert_eq!(nodes_with, nodes_without);
        assert_eq!(with.node_count(), without.node_count());
        let n = nodes_with["n"];
        assert!(with.graph().node(n).unwrap().predicate.is_some());
        assert!(without.graph().node(n).unwrap().predicate.is_none());
    }

    #[test]
    fn not_predicate_becomes_crossed_edge() {
        let q = compiled("MATCH (a:Info), (b:Info) WHERE NOT (a)-[:links-to]->(b) RETURN a, b");
        let (pattern, _) = q.pattern(true);
        assert!(pattern.has_negation());
        assert!(!pattern.positive_part().has_negation());
    }

    #[test]
    fn patterns_validate_against_scheme_with_derivations() {
        // A non-path pattern validates against the plain scheme.
        let q = compiled("MATCH (a:Info)-[:links-to]->(b:Info)-[:name]->(n:String) RETURN a");
        let (pattern, _) = q.pattern(true);
        pattern.validate(&bench_scheme()).expect("valid");
    }
}
