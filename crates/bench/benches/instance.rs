//! E10 — the instance layer itself: bulk loading with invariant
//! enforcement, printable-node deduplication pressure, full validation,
//! isomorphism checking, and serde round-trips. Validates that
//! invariant enforcement stays O(1) amortized per mutation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use good_bench::{instance_of, SIZES};
use good_core::gen::bench_scheme;
use good_core::instance::Instance;
use good_core::value::Value;
use std::time::Duration;

fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10/bulk-load");
    for size in SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| instance_of(size));
        });
    }
    group.finish();
}

fn bench_printable_dedup(c: &mut Criterion) {
    // Heavy dedup: many inserts of the same few values.
    let mut group = c.benchmark_group("E10/printable-dedup");
    for inserts in [1_000usize, 4_000, 16_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(inserts),
            &inserts,
            |b, &inserts| {
                b.iter(|| {
                    let mut db = Instance::new(bench_scheme());
                    for index in 0..inserts {
                        db.add_printable("String", Value::str(format!("v{}", index % 16)))
                            .expect("dedups");
                    }
                    db
                });
            },
        );
    }
    group.finish();
}

fn bench_validate(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10/validate");
    for size in SIZES {
        let db = instance_of(size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| db.validate().expect("valid"));
        });
    }
    group.finish();
}

fn bench_isomorphism(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10/isomorphism");
    for size in [50usize, 100, 200] {
        let a = instance_of(size);
        let b2 = instance_of(size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| assert!(a.isomorphic_to(&b2)));
        });
    }
    group.finish();
}

fn bench_serde_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10/serde-roundtrip");
    for size in SIZES {
        let db = instance_of(size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let json = serde_json::to_string(&db).expect("serializes");
                let back: Instance = serde_json::from_str(&json).expect("deserializes");
                back
            });
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bulk_load, bench_printable_dedup, bench_validate,
              bench_isomorphism, bench_serde_roundtrip
}
criterion_main!(benches);
