//! The GOOD wire protocol: a small length-prefixed binary framing for
//! the TCP front end (`net` module).
//!
//! # Frame grammar
//!
//! Every frame is a fixed 10-byte header followed by a typed payload:
//!
//! ```text
//! frame   := magic version type len payload
//! magic   := "GOOD"              (4 bytes)
//! version := 0x01                (1 byte, protocol revision)
//! type    := 0x01..=0x0a         (1 byte, see Frame)
//! len     := u32 LE              (payload byte count, <= MAX_PAYLOAD)
//! payload := `len` bytes, encoding depending on `type`
//! ```
//!
//! Payload fields are little-endian integers, `bool`s are a single
//! `0`/`1` byte (any other value is a decode error), strings are
//! `u32 LE` length + UTF-8 bytes, and `Option<T>` is a presence byte
//! followed by `T` when present. The one structured payload —
//! [`Submit`](Frame::Submit)'s [`Program`] — rides as JSON text inside
//! its string field: programs are deep recursive trees and the
//! engine's serde derives already define a canonical encoding for
//! them (the same one `save`/`load` use).
//!
//! [`Submit`](Frame::Submit) and [`Query`](Frame::Query) end with an
//! **optional trailing trace id**: a frame may simply stop after its
//! last mandatory field (the pre-observability encoding, still
//! produced by old clients and still decoded), or append a `1`
//! presence byte + `u64 LE` client-assigned trace id. The id rides
//! the request through the commit pipeline (net reader → queue →
//! writer batch → fsync → publish → ack) so per-request timelines can
//! be reconstructed from spans — see DESIGN.md "Observability". A `0`
//! presence byte is rejected: every value has exactly one encoding,
//! which keeps the corpus round-trip byte-identical.
//!
//! # Robustness contract
//!
//! [`decode`] is total: for **any** byte slice it either yields a
//! frame or a typed [`ProtoError`] — never a panic, and never an
//! allocation proportional to an attacker-controlled length field
//! (counts are validated against the actually-received byte budget
//! before any `Vec` is sized). The codec torture suite
//! (`crates/server/tests/proto.rs`) round-trips every frame type and
//! feeds truncations at every byte boundary, single-bit flips, and
//! oversized length fields through it; the checked-in regression
//! corpus under `crates/server/tests/corpus/` pins known-tricky
//! inputs.

use good_core::program::Program;
use std::fmt;
use std::io::{Read, Write};

/// Every frame starts with these four bytes.
pub const MAGIC: [u8; 4] = *b"GOOD";

/// The protocol revision this build speaks. A server refuses frames
/// from any other revision with [`ProtoError::Version`], and answers a
/// newer-version `Hello` with a typed [`ErrCode::UnsupportedVersion`]
/// reply (carrying the version it wants) before closing — a newer
/// client learns what to downgrade to instead of seeing a bare drop.
pub const VERSION: u8 = 1;

/// Fixed header size: magic (4) + version (1) + type (1) + len (4).
pub const HEADER_LEN: usize = 10;

/// Hard ceiling on a frame's payload size. Larger length fields are
/// rejected before any buffer is allocated ([`ProtoError::Oversized`]),
/// which bounds the memory a hostile peer can pin per connection.
pub const MAX_PAYLOAD: usize = 4 << 20; // 4 MiB

/// Typed error codes carried by [`Frame::Err`]. The split matters to
/// clients: [`retryable`](ErrCode::retryable) codes are load-shedding
/// (back off `retry_after_ms` and resubmit), the rest are final.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// Malformed or unexpected frame, unparseable pattern, or an
    /// epoch the MVCC ring no longer retains.
    BadRequest,
    /// The session id is not open on this server.
    UnknownSession,
    /// The server is draining or has shut down; no new work.
    Shutdown,
    /// The writer's submission queue is at capacity (backpressure).
    QueueFull,
    /// This session already has its quota of in-flight submissions.
    QuotaExceeded,
    /// Admission control refused the connection (too many clients).
    Overloaded,
    /// Journal I/O failed; the server refuses further writes.
    Store,
    /// The peer speaks a protocol revision this build does not. The
    /// detail string names the wanted revision; the peer should
    /// downgrade or give up, not retry.
    UnsupportedVersion,
}

impl ErrCode {
    /// Whether a client should back off and retry the same request.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrCode::QueueFull | ErrCode::QuotaExceeded | ErrCode::Overloaded
        )
    }

    fn to_byte(self) -> u8 {
        match self {
            ErrCode::BadRequest => 0,
            ErrCode::UnknownSession => 1,
            ErrCode::Shutdown => 2,
            ErrCode::QueueFull => 3,
            ErrCode::QuotaExceeded => 4,
            ErrCode::Overloaded => 5,
            ErrCode::Store => 6,
            ErrCode::UnsupportedVersion => 7,
        }
    }

    fn from_byte(byte: u8) -> Option<ErrCode> {
        Some(match byte {
            0 => ErrCode::BadRequest,
            1 => ErrCode::UnknownSession,
            2 => ErrCode::Shutdown,
            3 => ErrCode::QueueFull,
            4 => ErrCode::QuotaExceeded,
            5 => ErrCode::Overloaded,
            6 => ErrCode::Store,
            7 => ErrCode::UnsupportedVersion,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrCode::BadRequest => "bad-request",
            ErrCode::UnknownSession => "unknown-session",
            ErrCode::Shutdown => "shutdown",
            ErrCode::QueueFull => "queue-full",
            ErrCode::QuotaExceeded => "quota-exceeded",
            ErrCode::Overloaded => "overloaded",
            ErrCode::Store => "store",
            ErrCode::UnsupportedVersion => "unsupported-version",
        };
        f.write_str(name)
    }
}

/// The server's answer to a [`Frame::Snapshot`] request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// The epoch the description was taken at.
    pub epoch: u64,
    /// Node count of the instance at that epoch.
    pub nodes: u64,
    /// Edge count of the instance at that epoch.
    pub edges: u64,
    /// The full DOT render, when the request set `want_dot`.
    pub dot: Option<String>,
}

/// One protocol frame. The same type is used on both directions of
/// the stream; the state machine (DESIGN.md "Network front end")
/// defines which frames are legal when.
#[derive(Debug, Clone)]
pub enum Frame {
    /// Connection opener. The client sends `session = 0`; the server
    /// replies with the assigned session id.
    Hello {
        /// 0 from a client; the assigned session id from the server.
        session: u64,
    },
    /// Submit one program for commit. Acked (or refused) under the
    /// same client-chosen `request` id, which lets acks interleave
    /// with [`Frame::Rows`]/[`Frame::Snapshot`] replies on a
    /// pipelined connection.
    Submit {
        /// Client-chosen correlation id, echoed in the reply.
        request: u64,
        /// The program to commit.
        program: Program,
        /// Optional client-assigned trace id, propagated through the
        /// commit pipeline for per-request timeline reconstruction.
        /// Encoded as a trailing field; old frames without it decode
        /// as `None`.
        trace: Option<u64>,
    },
    /// The writer's acknowledgement of a [`Frame::Submit`].
    Ack {
        /// The correlation id of the submit being acked.
        request: u64,
        /// Snapshot epoch published by the batch that carried it.
        epoch: u64,
        /// Global commit sequence number; `None` when the model
        /// rejected the program (it is not part of the history).
        commit_seq: Option<u64>,
        /// `Ok`: a short report. `Err`: the model's rejection.
        outcome: Result<String, String>,
    },
    /// Request (client, `info == None`) or describe (server reply,
    /// `info == Some`) a committed snapshot.
    Snapshot {
        /// Client-chosen correlation id, echoed in the reply.
        request: u64,
        /// Time-travel epoch; `None` means the current snapshot.
        at: Option<u64>,
        /// Ask for the full DOT render (can be large).
        want_dot: bool,
        /// Empty in requests; the description in replies.
        info: Option<SnapshotInfo>,
    },
    /// Run a read-only pattern query against a committed snapshot.
    Query {
        /// Client-chosen correlation id, echoed in the reply.
        request: u64,
        /// Time-travel epoch; `None` means the current snapshot.
        at: Option<u64>,
        /// Pattern text in the CLI's `match { … }` body grammar.
        pattern: String,
        /// Optional client-assigned trace id (trailing field, like
        /// [`Frame::Submit`]'s).
        trace: Option<u64>,
    },
    /// The server's answer to a [`Frame::Query`].
    Rows {
        /// The correlation id of the query being answered.
        request: u64,
        /// The epoch the query ran at.
        epoch: u64,
        /// Column names: the pattern's declared variables, sorted.
        columns: Vec<String>,
        /// One row per matching; cells align with `columns`.
        rows: Vec<Vec<String>>,
    },
    /// A typed refusal of one request (or of the connection when
    /// `request == 0` and no request is in scope, e.g. admission
    /// shedding and framing errors).
    Err {
        /// The correlation id of the refused request, or 0.
        request: u64,
        /// What went wrong, typed.
        code: ErrCode,
        /// For [`retryable`](ErrCode::retryable) codes: how long the
        /// client should back off before retrying, in milliseconds.
        retry_after_ms: u32,
        /// Human-readable detail.
        detail: String,
    },
    /// Graceful close, either direction. The side that receives it
    /// may flush replies and must then close the stream.
    Goodbye {
        /// Why the stream is closing.
        reason: String,
    },
    /// Ask the server for its live introspection snapshot: metrics,
    /// MVCC ring state, admission control, and the slow-query ring.
    /// Served by the connection's reader thread off the commit path.
    Stats {
        /// Client-chosen correlation id, echoed in the reply.
        request: u64,
    },
    /// The server's answer to a [`Frame::Stats`] request.
    StatsReply {
        /// The correlation id of the stats request being answered.
        request: u64,
        /// The introspection snapshot as a JSON object — see
        /// DESIGN.md "Observability" for the schema.
        json: String,
    },
}

impl Frame {
    /// The frame's type tag (the header byte).
    pub fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::Submit { .. } => 2,
            Frame::Ack { .. } => 3,
            Frame::Snapshot { .. } => 4,
            Frame::Query { .. } => 5,
            Frame::Rows { .. } => 6,
            Frame::Err { .. } => 7,
            Frame::Goodbye { .. } => 8,
            Frame::Stats { .. } => 9,
            Frame::StatsReply { .. } => 10,
        }
    }

    /// The frame type's name, for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::Submit { .. } => "Submit",
            Frame::Ack { .. } => "Ack",
            Frame::Snapshot { .. } => "Snapshot",
            Frame::Query { .. } => "Query",
            Frame::Rows { .. } => "Rows",
            Frame::Err { .. } => "Err",
            Frame::Goodbye { .. } => "Goodbye",
            Frame::Stats { .. } => "Stats",
            Frame::StatsReply { .. } => "StatsReply",
        }
    }
}

/// Everything that can go wrong decoding (or stream-reading) frames.
/// The decoder's contract is that hostile bytes always land in one of
/// these variants — never a panic or unbounded allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer ends before the frame does. `needed` is the total
    /// byte count the frame requires, `have` what was available.
    Truncated {
        /// Bytes the complete header + payload would occupy.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic(
        /// The bytes found instead.
        [u8; 4],
    ),
    /// The version byte is not the revision this build speaks. Carries
    /// both sides of the mismatch so the refusal can tell the peer
    /// which revision to downgrade to (forward compatibility: a
    /// newer-version `Hello` gets a typed reply, not a silent drop).
    Version {
        /// The version the peer sent.
        got: u8,
        /// The version this build speaks ([`VERSION`]).
        want: u8,
    },
    /// The type byte names no known frame.
    UnknownFrame(
        /// The type byte found.
        u8,
    ),
    /// The length field exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The length the header claimed.
        len: u64,
        /// The ceiling it violated.
        max: u64,
    },
    /// The payload bytes do not decode as the claimed frame type
    /// (bad bool/code byte, invalid UTF-8, JSON parse failure,
    /// trailing bytes, counts exceeding the byte budget, …).
    Malformed {
        /// Which frame type was being decoded.
        frame: &'static str,
        /// What went wrong.
        detail: String,
    },
    /// A stream read timed out (connection-level idle/hello timeout).
    Timeout,
    /// A stream-level I/O failure.
    Io(
        /// The I/O error, rendered.
        String,
    ),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            ProtoError::BadMagic(found) => write!(f, "bad magic {found:02x?}"),
            ProtoError::Version { got, want } => {
                write!(f, "unsupported protocol version {got} (want {want})")
            }
            ProtoError::UnknownFrame(found) => write!(f, "unknown frame type {found:#04x}"),
            ProtoError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds maximum {max}")
            }
            ProtoError::Malformed { frame, detail } => {
                write!(f, "malformed {frame} payload: {detail}")
            }
            ProtoError::Timeout => f.write_str("read timed out"),
            ProtoError::Io(detail) => write!(f, "i/o failure: {detail}"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------- encode

fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, value: bool) {
    out.push(value as u8);
}

fn put_str(out: &mut Vec<u8>, value: &str) {
    put_u32(out, value.len() as u32);
    out.extend_from_slice(value.as_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, value: Option<u64>) {
    match value {
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
        None => out.push(0),
    }
}

/// Trailing optional trace id: `None` is encoded as *no bytes at all*
/// (the pre-observability frame layout), `Some` as a `1` byte + u64.
/// This keeps every old frame byte-identical under re-encode.
fn put_trace(out: &mut Vec<u8>, trace: Option<u64>) {
    if let Some(id) = trace {
        out.push(1);
        put_u64(out, id);
    }
}

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    match frame {
        Frame::Hello { session } => put_u64(&mut out, *session),
        Frame::Submit {
            request,
            program,
            trace,
        } => {
            put_u64(&mut out, *request);
            let json = serde_json::to_string(program)
                .expect("programs always serialize: their serde encoding is total");
            put_str(&mut out, &json);
            put_trace(&mut out, *trace);
        }
        Frame::Ack {
            request,
            epoch,
            commit_seq,
            outcome,
        } => {
            put_u64(&mut out, *request);
            put_u64(&mut out, *epoch);
            put_opt_u64(&mut out, *commit_seq);
            match outcome {
                Ok(report) => {
                    out.push(1);
                    put_str(&mut out, report);
                }
                Err(reason) => {
                    out.push(0);
                    put_str(&mut out, reason);
                }
            }
        }
        Frame::Snapshot {
            request,
            at,
            want_dot,
            info,
        } => {
            put_u64(&mut out, *request);
            put_opt_u64(&mut out, *at);
            put_bool(&mut out, *want_dot);
            match info {
                None => out.push(0),
                Some(info) => {
                    out.push(1);
                    put_u64(&mut out, info.epoch);
                    put_u64(&mut out, info.nodes);
                    put_u64(&mut out, info.edges);
                    match &info.dot {
                        None => out.push(0),
                        Some(dot) => {
                            out.push(1);
                            put_str(&mut out, dot);
                        }
                    }
                }
            }
        }
        Frame::Query {
            request,
            at,
            pattern,
            trace,
        } => {
            put_u64(&mut out, *request);
            put_opt_u64(&mut out, *at);
            put_str(&mut out, pattern);
            put_trace(&mut out, *trace);
        }
        Frame::Rows {
            request,
            epoch,
            columns,
            rows,
        } => {
            put_u64(&mut out, *request);
            put_u64(&mut out, *epoch);
            put_u32(&mut out, columns.len() as u32);
            for column in columns {
                put_str(&mut out, column);
            }
            put_u32(&mut out, rows.len() as u32);
            for row in rows {
                put_u32(&mut out, row.len() as u32);
                for cell in row {
                    put_str(&mut out, cell);
                }
            }
        }
        Frame::Err {
            request,
            code,
            retry_after_ms,
            detail,
        } => {
            put_u64(&mut out, *request);
            out.push(code.to_byte());
            put_u32(&mut out, *retry_after_ms);
            put_str(&mut out, detail);
        }
        Frame::Goodbye { reason } => put_str(&mut out, reason),
        Frame::Stats { request } => put_u64(&mut out, *request),
        Frame::StatsReply { request, json } => {
            put_u64(&mut out, *request);
            put_str(&mut out, json);
        }
    }
    out
}

/// Encode one frame: header + payload, ready for the wire.
pub fn encode(frame: &Frame) -> Vec<u8> {
    frame_bytes(frame.type_byte(), encode_payload(frame))
}

/// Encode a `Submit` from a borrowed [`Program`] — the pipelined
/// client's hot path, sparing the deep clone that building a
/// [`Frame::Submit`] would take.
pub fn encode_submit(request: u64, program: &Program, trace: Option<u64>) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, request);
    let json = serde_json::to_string(program)
        .expect("programs always serialize: their serde encoding is total");
    put_str(&mut payload, &json);
    put_trace(&mut payload, trace);
    frame_bytes(2, payload)
}

fn frame_bytes(type_byte: u8, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(type_byte);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------- decode

/// A bounds-checked reader over one payload slice. Every getter
/// returns [`ProtoError`] instead of panicking, and collection counts
/// are validated against the remaining byte budget before any `Vec`
/// is allocated.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    frame: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], frame: &'static str) -> Cursor<'a> {
        Cursor { buf, pos: 0, frame }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn fail(&self, detail: impl Into<String>) -> ProtoError {
        ProtoError::Malformed {
            frame: self.frame,
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(self.fail(format!(
                "payload ends early: need {n} more bytes, have {}",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn boolean(&mut self) -> Result<bool, ProtoError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.fail(format!("bad bool byte {other:#04x}"))),
        }
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, ProtoError> {
        if self.boolean()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// The trailing optional trace id: payload exhausted means `None`
    /// (old-layout frame); otherwise a mandatory `1` presence byte +
    /// u64. A `0` presence byte is rejected so each value has exactly
    /// one encoding (see `put_trace`).
    fn trailing_trace(&mut self) -> Result<Option<u64>, ProtoError> {
        if self.remaining() == 0 {
            return Ok(None);
        }
        match self.u8()? {
            1 => Ok(Some(self.u64()?)),
            other => Err(self.fail(format!("bad trailing trace presence byte {other:#04x}"))),
        }
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.fail("string is not valid UTF-8"))
    }

    /// A collection count, sanity-bounded: each element occupies at
    /// least `min_element_bytes` on the wire, so a count that cannot
    /// fit in the remaining payload is rejected before allocation.
    fn count(&mut self, what: &str, min_element_bytes: usize) -> Result<usize, ProtoError> {
        let count = self.u32()? as usize;
        let budget = self.remaining() / min_element_bytes.max(1);
        if count > budget {
            return Err(self.fail(format!(
                "{what} count {count} exceeds what {} remaining bytes can hold",
                self.remaining()
            )));
        }
        Ok(count)
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() != 0 {
            return Err(self.fail(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

fn decode_payload(type_byte: u8, payload: &[u8]) -> Result<Frame, ProtoError> {
    let frame_name = match type_byte {
        1 => "Hello",
        2 => "Submit",
        3 => "Ack",
        4 => "Snapshot",
        5 => "Query",
        6 => "Rows",
        7 => "Err",
        8 => "Goodbye",
        9 => "Stats",
        10 => "StatsReply",
        other => return Err(ProtoError::UnknownFrame(other)),
    };
    let mut cur = Cursor::new(payload, frame_name);
    let frame = match type_byte {
        1 => Frame::Hello {
            session: cur.u64()?,
        },
        2 => {
            let request = cur.u64()?;
            let json = cur.string()?;
            let program: Program = serde_json::from_str(&json)
                .map_err(|err| cur.fail(format!("program JSON: {err}")))?;
            let trace = cur.trailing_trace()?;
            Frame::Submit {
                request,
                program,
                trace,
            }
        }
        3 => {
            let request = cur.u64()?;
            let epoch = cur.u64()?;
            let commit_seq = cur.opt_u64()?;
            let ok = cur.boolean()?;
            let text = cur.string()?;
            Frame::Ack {
                request,
                epoch,
                commit_seq,
                outcome: if ok { Ok(text) } else { Err(text) },
            }
        }
        4 => {
            let request = cur.u64()?;
            let at = cur.opt_u64()?;
            let want_dot = cur.boolean()?;
            let info = if cur.boolean()? {
                let epoch = cur.u64()?;
                let nodes = cur.u64()?;
                let edges = cur.u64()?;
                let dot = if cur.boolean()? {
                    Some(cur.string()?)
                } else {
                    None
                };
                Some(SnapshotInfo {
                    epoch,
                    nodes,
                    edges,
                    dot,
                })
            } else {
                None
            };
            Frame::Snapshot {
                request,
                at,
                want_dot,
                info,
            }
        }
        5 => Frame::Query {
            request: cur.u64()?,
            at: cur.opt_u64()?,
            pattern: cur.string()?,
            trace: cur.trailing_trace()?,
        },
        6 => {
            let request = cur.u64()?;
            let epoch = cur.u64()?;
            let column_count = cur.count("column", 4)?;
            let mut columns = Vec::with_capacity(column_count);
            for _ in 0..column_count {
                columns.push(cur.string()?);
            }
            let row_count = cur.count("row", 4)?;
            let mut rows = Vec::with_capacity(row_count);
            for _ in 0..row_count {
                let cell_count = cur.count("cell", 4)?;
                let mut row = Vec::with_capacity(cell_count);
                for _ in 0..cell_count {
                    row.push(cur.string()?);
                }
                rows.push(row);
            }
            Frame::Rows {
                request,
                epoch,
                columns,
                rows,
            }
        }
        7 => {
            let request = cur.u64()?;
            let code_byte = cur.u8()?;
            let code = ErrCode::from_byte(code_byte)
                .ok_or_else(|| cur.fail(format!("bad error code {code_byte:#04x}")))?;
            Frame::Err {
                request,
                code,
                retry_after_ms: cur.u32()?,
                detail: cur.string()?,
            }
        }
        8 => Frame::Goodbye {
            reason: cur.string()?,
        },
        9 => Frame::Stats {
            request: cur.u64()?,
        },
        10 => Frame::StatsReply {
            request: cur.u64()?,
            json: cur.string()?,
        },
        _ => unreachable!("type byte validated above"),
    };
    cur.finish()?;
    Ok(frame)
}

/// Validate a header slice (`HEADER_LEN` bytes): returns
/// `(type_byte, payload_len)`.
fn decode_header(header: &[u8]) -> Result<(u8, usize), ProtoError> {
    let magic: [u8; 4] = header[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    if header[4] != VERSION {
        return Err(ProtoError::Version {
            got: header[4],
            want: VERSION,
        });
    }
    let type_byte = header[5];
    if !(1..=10).contains(&type_byte) {
        return Err(ProtoError::UnknownFrame(type_byte));
    }
    let len = u32::from_le_bytes(header[6..10].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Oversized {
            len: len as u64,
            max: MAX_PAYLOAD as u64,
        });
    }
    Ok((type_byte, len))
}

/// Decode one frame from the front of `buf`. Returns the frame and
/// the number of bytes it occupied (callers with batched buffers can
/// continue from there). Total: any input yields a frame or a typed
/// error.
pub fn decode(buf: &[u8]) -> Result<(Frame, usize), ProtoError> {
    if buf.len() < HEADER_LEN {
        return Err(ProtoError::Truncated {
            needed: HEADER_LEN,
            have: buf.len(),
        });
    }
    let (type_byte, len) = decode_header(&buf[..HEADER_LEN])?;
    let total = HEADER_LEN + len;
    if buf.len() < total {
        return Err(ProtoError::Truncated {
            needed: total,
            have: buf.len(),
        });
    }
    let frame = decode_payload(type_byte, &buf[HEADER_LEN..total])?;
    Ok((frame, total))
}

fn map_io(err: std::io::Error) -> ProtoError {
    match err.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ProtoError::Timeout,
        _ => ProtoError::Io(err.to_string()),
    }
}

/// Write one frame to a stream. Refuses (rather than emits) frames
/// whose payload exceeds [`MAX_PAYLOAD`] — the peer would reject them
/// anyway, so the caller gets the error on its own side of the wire.
pub fn write_frame<W: Write>(writer: &mut W, frame: &Frame) -> Result<(), ProtoError> {
    let bytes = encode(frame);
    if bytes.len() - HEADER_LEN > MAX_PAYLOAD {
        return Err(ProtoError::Oversized {
            len: (bytes.len() - HEADER_LEN) as u64,
            max: MAX_PAYLOAD as u64,
        });
    }
    writer.write_all(&bytes).map_err(map_io)?;
    writer.flush().map_err(map_io)
}

/// Read one frame from a stream. `Ok(None)` is a clean close (EOF at
/// a frame boundary); EOF mid-frame is [`ProtoError::Truncated`], a
/// socket timeout is [`ProtoError::Timeout`].
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Option<Frame>, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match reader.read(&mut header[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(ProtoError::Truncated {
                    needed: HEADER_LEN,
                    have: filled,
                });
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) => return Err(map_io(err)),
        }
    }
    let (type_byte, len) = decode_header(&header)?;
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match reader.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(ProtoError::Truncated {
                    needed: HEADER_LEN + len,
                    have: HEADER_LEN + filled,
                })
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) => return Err(map_io(err)),
        }
    }
    decode_payload(type_byte, &payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_ten_bytes() {
        let bytes = encode(&Frame::Goodbye { reason: "x".into() });
        assert_eq!(&bytes[0..4], b"GOOD");
        assert_eq!(bytes[4], VERSION);
        assert_eq!(bytes[5], 8);
        assert_eq!(bytes.len(), HEADER_LEN + 4 + 1);
    }

    #[test]
    fn decode_reports_consumed_length_with_trailing_bytes() {
        let mut bytes = encode(&Frame::Hello { session: 7 });
        let len = bytes.len();
        bytes.extend_from_slice(b"junk");
        let (frame, consumed) = decode(&bytes).expect("leading frame decodes");
        assert_eq!(consumed, len);
        assert!(matches!(frame, Frame::Hello { session: 7 }));
    }

    #[test]
    fn rows_count_cannot_oversize_allocation() {
        // Claim u32::MAX rows with an empty remainder: must be a typed
        // Malformed error, not an allocation attempt.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1); // request
        put_u64(&mut payload, 1); // epoch
        put_u32(&mut payload, 0); // no columns
        put_u32(&mut payload, u32::MAX); // absurd row count
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(6);
        put_u32(&mut bytes, payload.len() as u32);
        bytes.extend_from_slice(&payload);
        match decode(&bytes) {
            Err(ProtoError::Malformed { frame: "Rows", .. }) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
