//! Crash-recovery torture tests.
//!
//! The fast tests here run in tier-1 CI on fixed seeds; the full
//! matrix (every crash point of larger workloads across many seeds,
//! ≥200 schedules) is `#[ignore]`d and runs in the nightly job via
//! `cargo test --workspace --release -- --ignored`.

use good_store::torture::{
    crash_sweep, fault_soak, group_crash_sweep, GroupTortureConfig, SoakConfig, TortureConfig,
};
use proptest::prelude::*;

#[test]
fn smoke_every_crash_point_recovers_to_a_committed_prefix() {
    let config = TortureConfig {
        seed: 7,
        programs: 6,
        checkpoint_every: 3,
    };
    let report = crash_sweep(&config).unwrap_or_else(|failure| panic!("{failure}"));
    assert!(
        report.crash_points >= 15,
        "workload too small to be interesting: {} ops",
        report.crash_points
    );
    for outcome in &report.outcomes {
        if let Some(recovered_to) = outcome.recovered_to {
            assert!(
                outcome.acked <= recovered_to && recovered_to <= outcome.attempted,
                "crash {}: recovered to {recovered_to}, window [{}, {}]",
                outcome.crash_at,
                outcome.acked,
                outcome.attempted
            );
        }
    }
    // At least one schedule must exercise the torn-append path, or the
    // sweep is not covering the contract it exists for.
    assert!(
        report.outcomes.iter().any(|o| o
            .fault_log
            .iter()
            .any(|l| l.contains("CRASH during append"))),
        "no schedule crashed mid-append"
    );
}

#[test]
fn same_seed_reproduces_identical_fault_sequences() {
    let config = TortureConfig {
        seed: 21,
        programs: 5,
        checkpoint_every: 2,
    };
    let a = crash_sweep(&config).unwrap_or_else(|failure| panic!("{failure}"));
    let b = crash_sweep(&config).unwrap_or_else(|failure| panic!("{failure}"));
    // Outcome equality includes every schedule's textual fault log, so
    // this is the byte-for-byte reproducibility contract.
    assert_eq!(a, b);
    let c = crash_sweep(&TortureConfig { seed: 22, ..config })
        .unwrap_or_else(|failure| panic!("{failure}"));
    assert!(a != c, "different seeds should differ somewhere");
}

#[test]
fn smoke_fault_soak_survives_injected_faults() {
    let report = fault_soak(&SoakConfig {
        seed: 3,
        programs: 24,
        ..SoakConfig::default()
    })
    .unwrap_or_else(|failure| panic!("{failure}"));
    assert_eq!(report.programs, 24);
    assert!(
        report.applied <= 24,
        "cannot apply more programs than attempted"
    );
}

#[test]
fn smoke_every_group_commit_crash_point_lands_on_a_batch_boundary() {
    let config = GroupTortureConfig {
        seed: 13,
        programs: 10,
        max_batch: 4,
    };
    let report = group_crash_sweep(&config).unwrap_or_else(|failure| panic!("{failure}"));
    assert!(
        report.crash_points >= 15,
        "batched workload too small: {} crash points",
        report.crash_points
    );
    // The sweep must include at least one crash *between* the records
    // of a multi-record group that forced recovery to discard the
    // whole group (recovered_to == acked, i.e. the pre-batch boundary).
    assert!(
        report.outcomes.iter().any(|o| {
            o.attempted > o.acked
                && o.recovered_to == Some(o.acked)
                && o.fault_log
                    .iter()
                    .any(|l| l.contains("CRASH during append"))
        }),
        "no schedule discarded a partially-written group"
    );
    // Every schedule that interrupted a group recovered to its
    // pre-batch boundary: a crash inside the group's I/O window means
    // the commit marker was never fsynced, so full survival would need
    // the reboot tear to land exactly at the end of the un-synced
    // suffix — recovery must therefore discard the group, and the
    // verifier has already rejected anything in between.
    for outcome in report.outcomes.iter().filter(|o| o.attempted > o.acked) {
        assert_eq!(
            outcome.recovered_to,
            Some(outcome.acked),
            "crash {} kept a group whose commit marker never synced",
            outcome.crash_at
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Random small configs: every crash point of every workload shape
    // must recover. Failures print a reproduction seed via TortureFailure.
    #[test]
    fn random_configs_survive_a_full_crash_sweep(
        seed in 0u64..1_000_000,
        programs in 3usize..7,
        checkpoint_every in 0usize..4,
    ) {
        let config = TortureConfig { seed, programs, checkpoint_every };
        if let Err(failure) = crash_sweep(&config) {
            panic!("{failure}");
        }
    }

    #[test]
    fn random_group_configs_survive_a_full_crash_sweep(
        seed in 0u64..1_000_000,
        programs in 3usize..7,
        max_batch in 2usize..5,
    ) {
        let config = GroupTortureConfig { seed, programs, max_batch };
        if let Err(failure) = group_crash_sweep(&config) {
            panic!("{failure}");
        }
    }

    #[test]
    fn random_soaks_stay_consistent(seed in 0u64..1_000_000) {
        let config = SoakConfig { seed, programs: 12, ..SoakConfig::default() };
        if let Err(failure) = fault_soak(&config) {
            panic!("{failure}");
        }
    }
}

/// The full nightly matrix: every crash point of four 20-program
/// workloads — comfortably over the 200-schedule floor the durability
/// contract is certified against.
#[test]
#[ignore = "full torture matrix (~minutes); nightly runs it via --ignored"]
fn nightly_full_torture_matrix() {
    let mut schedules = 0u64;
    for seed in [1u64, 2, 3, 4] {
        let config = TortureConfig {
            seed,
            programs: 20,
            checkpoint_every: 6,
        };
        let report = crash_sweep(&config).unwrap_or_else(|failure| panic!("{failure}"));
        schedules += report.crash_points;
        println!("seed {seed}: {}", report.summary());
    }
    assert!(
        schedules >= 200,
        "matrix enumerated only {schedules} crash schedules"
    );
}

/// Nightly group-commit matrix: every crash point (including every
/// point between the records of one group) of four batched workloads —
/// over the 200-schedule floor the all-or-nothing-per-batch contract
/// is certified against.
#[test]
#[ignore = "full group-commit torture matrix (~minutes); nightly runs it via --ignored"]
fn nightly_group_commit_torture_matrix() {
    let mut schedules = 0u64;
    for seed in [5u64, 6, 7, 8, 9, 10, 11, 12] {
        let config = GroupTortureConfig {
            seed,
            programs: 18,
            max_batch: 5,
        };
        let report = group_crash_sweep(&config).unwrap_or_else(|failure| panic!("{failure}"));
        schedules += report.crash_points;
        println!("seed {seed}: {}", report.summary());
    }
    assert!(
        schedules >= 200,
        "group matrix enumerated only {schedules} crash schedules"
    );
}

/// Nightly soak: long workloads under aggressive fault probabilities.
#[test]
#[ignore = "long fault soak; nightly runs it via --ignored"]
fn nightly_fault_soak_matrix() {
    for seed in 0u64..16 {
        let config = SoakConfig {
            seed,
            programs: 40,
            checkpoint_every: 5,
            torn_write_probability: 0.15,
            sync_error_probability: 0.15,
            rename_error_probability: 0.3,
        };
        let report = fault_soak(&config).unwrap_or_else(|failure| panic!("{failure}"));
        println!(
            "seed {seed}: {} applied / {} attempted, {} reopens, {} checkpoint failures",
            report.applied, report.programs, report.reopens, report.checkpoint_failures
        );
    }
}
