//! `good-server` — a multi-session concurrency layer over the GOOD
//! engine: snapshot-isolated reads, single-writer group-commit writes.
//!
//! GOOD's operational semantics make concurrency unusually tractable:
//! every program is a deterministic graph transformation of a fixed
//! instance (PAPER.md §3), and pattern matching is a pure read-only
//! function of that instance. The server exploits both facts:
//!
//! * **Reads are snapshot-isolated and lock-free.** The committed
//!   instance is published through a [`SnapshotCell`]
//!   (`good_core::snapshot`): acquiring a [`Snapshot`] costs one short
//!   mutex lock plus one `Arc::clone`, and from then on matching,
//!   `explain`, DOT rendering, and browsing run against a frozen
//!   immutable graph that no writer can perturb. Because `Instance`
//!   is persistent (structurally shared), the cell retains a bounded
//!   MVCC ring of recent versions: [`Server::snapshot_at`] serves
//!   time-travel reads against any retained epoch for the cost of a
//!   few `Arc` bumps.
//! * **Writes are serialized through one writer thread with
//!   group-commit.** Sessions enqueue programs onto a bounded queue;
//!   the writer drains up to a batch at a time, applies the batch
//!   through [`Store::execute_group`] (one journal record group, one
//!   fsync for the whole batch), publishes the next snapshot, and acks
//!   every session in the batch with its global **commit sequence
//!   number**. The resulting history is trivially serializable — it
//!   *is* the serial order reported in the acks.
//!
//! Failure semantics mirror the store's: a program that fails
//! model-level validation is acked with its error and journals
//! nothing (its batch neighbours commit normally), while a journal
//! I/O failure poisons the store, fails the whole batch and every
//! queued request, and leaves the server refusing further writes —
//! committed snapshots stay readable throughout.
//!
//! Observability (DESIGN.md "Observability"): `server/enqueue`,
//! `server/batch`, per-request `server/commit`, and `server/publish`
//! spans feed the recorder-gated `good-trace` layer; a parallel set of
//! **always-on live metrics** (queue depth and session gauges,
//! enqueue/commit counters, queue-wait / execute / publish / commit
//! latency histograms) records whether or not a recorder is installed.
//! Requests carry an optional wire-propagated trace id end to end, and
//! commits slower than [`ServerConfig::slow_commit_ns`] land in a
//! bounded [`SlowLog`] ring served to remote clients by the `Stats`
//! frame.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod net;
pub mod proto;

use good_core::error::GoodError;
use good_core::ops::OpReport;
use good_core::program::Program;
use good_core::snapshot::{RetentionPolicy, Snapshot, SnapshotCell};
use good_store::Store;
use good_trace::{LiveCounter, LiveGauge, LiveHistogram};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

// Always-on pipeline metrics: cheap atomics, recorded with or without
// a tracing recorder (see `good_trace` "always-on live metrics").
static LIVE_ENQUEUED: LiveCounter = LiveCounter::new("server/enqueued");
static LIVE_COMMITTED: LiveCounter = LiveCounter::new("server/committed");
static LIVE_REJECTED: LiveCounter = LiveCounter::new("server/rejected");
static LIVE_QUEUE_FULL: LiveCounter = LiveCounter::new("server/queue_full");
static LIVE_QUEUE_DEPTH: LiveGauge = LiveGauge::new("server/queue_depth");
static LIVE_SESSIONS: LiveGauge = LiveGauge::new("server/sessions");
static LIVE_BATCH_SIZE: LiveHistogram = LiveHistogram::new("server/batch_size");
static LIVE_QUEUE_WAIT_NS: LiveHistogram = LiveHistogram::new("server/queue_wait_ns");
static LIVE_EXEC_NS: LiveHistogram = LiveHistogram::new("server/exec_ns");
static LIVE_PUBLISH_NS: LiveHistogram = LiveHistogram::new("server/publish_ns");
static LIVE_COMMIT_NS: LiveHistogram = LiveHistogram::new("server/commit_ns");

/// Identifies one open session.
pub type SessionId = u64;

/// Identifies one submitted program; redeemed exactly once via
/// [`Server::wait`].
pub type Ticket = u64;

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum number of queued (unprocessed) programs before
    /// [`ServerError::QueueFull`] backpressure kicks in.
    pub queue_capacity: usize,
    /// Maximum number of programs the writer commits as one group.
    pub max_batch: usize,
    /// How many historical snapshot versions the server's MVCC ring
    /// retains for [`Server::snapshot_at`] time-travel reads (the
    /// current version is always kept). 0 disables time travel.
    pub retain_versions: usize,
    /// Commits slower than this (enqueue → ack posted, nanoseconds)
    /// are captured into the [`SlowLog`]. `u64::MAX` disables capture.
    pub slow_commit_ns: u64,
    /// Queries slower than this (nanoseconds) are captured into the
    /// [`SlowLog`] with their profiled plan (est vs actual rows per
    /// step). `u64::MAX` disables capture.
    pub slow_query_ns: u64,
    /// Bounded capacity of the slow-query/slow-commit ring; older
    /// entries are evicted (and counted as dropped).
    pub slow_log_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 256,
            max_batch: 32,
            retain_versions: 64,
            slow_commit_ns: 50_000_000, // 50ms
            slow_query_ns: 20_000_000,  // 20ms
            slow_log_capacity: 64,
        }
    }
}

/// Submission-level failures. Per-program *model* failures are not
/// errors at this level: they ride inside [`Ack::outcome`] so that one
/// bad program cannot break its batch neighbours.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The session id was never opened, or has been closed.
    UnknownSession(
        /// The offending id.
        SessionId,
    ),
    /// The server is shutting down (or has shut down); no new programs
    /// are accepted.
    Shutdown,
    /// The submission queue is at capacity — backpressure; retry after
    /// the writer drains.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The underlying store failed (journal I/O / poisoning); the
    /// server refuses further writes until restarted.
    Store(
        /// The store's failure message.
        String,
    ),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownSession(id) => write!(f, "unknown session id {id}"),
            ServerError::Shutdown => write!(f, "server is shut down"),
            ServerError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            ServerError::Store(reason) => write!(f, "store failure: {reason}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// The writer's acknowledgement for one submitted program.
#[derive(Debug, Clone)]
pub struct Ack {
    /// The submitting session.
    pub session: SessionId,
    /// Global commit sequence number — the program's position in the
    /// server's serial history. `Some` iff the program committed;
    /// model-rejected programs get `None` (they are not part of the
    /// history).
    pub commit_seq: Option<u64>,
    /// The snapshot epoch published by the batch that processed this
    /// program.
    pub epoch: u64,
    /// What the program did, or why the model rejected it.
    pub outcome: Result<OpReport, GoodError>,
}

/// What kind of work a [`SlowEntry`] captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowKind {
    /// A read-only pattern query (captured by the net front end).
    Query,
    /// A committed (or rejected) program submission.
    Commit,
}

impl SlowKind {
    /// Stable lowercase name, used in the stats JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            SlowKind::Query => "query",
            SlowKind::Commit => "commit",
        }
    }
}

/// One captured slow query or slow commit.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Monotone capture sequence (process-wide per server).
    pub seq: u64,
    /// Query or commit.
    pub kind: SlowKind,
    /// The wire-propagated trace id, when the client assigned one.
    pub trace: Option<u64>,
    /// The owning session.
    pub session: SessionId,
    /// End-to-end latency in nanoseconds.
    pub total_ns: u64,
    /// The snapshot epoch the work ran at (queries) or published
    /// (commits).
    pub epoch: u64,
    /// Human-readable description: the pattern text for queries, an
    /// op-count summary for commits.
    pub detail: String,
    /// The profiled plan as a JSON object (strategy, per-step
    /// estimated vs actual rows) — queries only.
    pub plan_json: Option<String>,
    /// Named stage timings in nanoseconds (queue-wait, execute,
    /// publish for commits; parse/match for queries).
    pub stages: Vec<(&'static str, u64)>,
}

impl SlowEntry {
    fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"seq\":{},\"kind\":\"{}\",",
            self.seq,
            self.kind.as_str()
        ));
        match self.trace {
            Some(id) => out.push_str(&format!("\"trace\":{id},")),
            None => out.push_str("\"trace\":null,"),
        }
        out.push_str(&format!(
            "\"session\":{},\"total_ns\":{},\"epoch\":{},\"detail\":\"{}\",",
            self.session,
            self.total_ns,
            self.epoch,
            good_trace::escape_json_str(&self.detail)
        ));
        out.push_str("\"stages\":{");
        for (index, (name, ns)) in self.stages.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{ns}"));
        }
        out.push_str("},\"plan\":");
        match &self.plan_json {
            Some(plan) => out.push_str(plan),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

/// A bounded ring of the slowest recent work: queries and commits that
/// crossed their configured thresholds, with stage timings and (for
/// queries) the profiled plan. Capped at
/// [`ServerConfig::slow_log_capacity`]; eviction counts as `dropped`.
/// Pushes take one short mutex — they only happen on already-slow
/// work, never on the hot path.
pub struct SlowLog {
    inner: Mutex<SlowLogInner>,
    capacity: usize,
}

struct SlowLogInner {
    ring: VecDeque<SlowEntry>,
    next_seq: u64,
    dropped: u64,
}

impl SlowLog {
    fn new(capacity: usize) -> SlowLog {
        SlowLog {
            inner: Mutex::new(SlowLogInner {
                ring: VecDeque::new(),
                next_seq: 1,
                dropped: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Append an entry (its `seq` field is assigned here), evicting
    /// the oldest when full.
    pub fn push(&self, mut entry: SlowEntry) {
        let mut inner = self.inner.lock().expect("slow log poisoned");
        entry.seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(entry);
    }

    /// Copy the ring, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        let inner = self.inner.lock().expect("slow log poisoned");
        inner.ring.iter().cloned().collect()
    }

    /// How many entries eviction has discarded so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("slow log poisoned").dropped
    }

    /// Render as a JSON object: `{"dropped":N,"entries":[...]}`.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().expect("slow log poisoned");
        let mut out = format!("{{\"dropped\":{},\"entries\":[", inner.dropped);
        for (index, entry) in inner.ring.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&entry.to_json());
        }
        out.push_str("]}");
        out
    }
}

struct Request {
    ticket: Ticket,
    session: SessionId,
    program: Program,
    /// Wire-propagated trace id (None for untraced submissions).
    trace: Option<u64>,
    /// When the request entered the queue — the anchor for queue-wait
    /// and end-to-end commit latency.
    enqueued: Instant,
}

struct State {
    queue: VecDeque<Request>,
    sessions: HashSet<SessionId>,
    next_session: SessionId,
    next_ticket: Ticket,
    completions: HashMap<Ticket, Result<Ack, String>>,
    shutdown: bool,
    paused: bool,
    failed: Option<String>,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes the writer: work arrived, pause lifted, or shutdown.
    work: Condvar,
    /// Wakes waiters: completions were posted.
    done: Condvar,
    cell: SnapshotCell,
    config: ServerConfig,
    slow: SlowLog,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("server state poisoned")
    }

    fn submit(
        &self,
        session: SessionId,
        program: Program,
        trace: Option<u64>,
    ) -> Result<Ticket, ServerError> {
        let mut span = good_trace::span("server", "server/enqueue");
        let mut state = self.lock();
        if let Some(reason) = &state.failed {
            return Err(ServerError::Store(reason.clone()));
        }
        if state.shutdown {
            return Err(ServerError::Shutdown);
        }
        if !state.sessions.contains(&session) {
            return Err(ServerError::UnknownSession(session));
        }
        if state.queue.len() >= self.config.queue_capacity {
            good_trace::counter_add("server/queue_full", 1);
            LIVE_QUEUE_FULL.incr();
            return Err(ServerError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queue.push_back(Request {
            ticket,
            session,
            program,
            trace,
            enqueued: Instant::now(),
        });
        let depth = state.queue.len();
        good_trace::gauge_set("server/queue_depth", depth as i64);
        LIVE_ENQUEUED.incr();
        LIVE_QUEUE_DEPTH.set(depth as i64);
        span.arg("session", session);
        span.arg("depth", depth);
        if let Some(id) = trace {
            span.arg("trace", id);
        }
        drop(state);
        self.work.notify_one();
        Ok(ticket)
    }

    fn wait(&self, ticket: Ticket) -> Result<Ack, ServerError> {
        let mut state = self.lock();
        assert!(
            ticket < state.next_ticket,
            "ticket {ticket} was never issued"
        );
        loop {
            if let Some(result) = state.completions.remove(&ticket) {
                return result.map_err(ServerError::Store);
            }
            state = self.done.wait(state).expect("server state poisoned");
        }
    }
}

/// The concurrency layer: one writer thread, any number of sessions
/// and snapshot readers.
///
/// ```
/// use good_core::program::Program;
/// use good_core::scheme::SchemeBuilder;
/// use good_server::{Server, ServerConfig};
/// use good_store::Store;
/// use good_store::vfs::{FaultPlan, FaultVfs};
/// use std::sync::Arc;
///
/// let vfs = Arc::new(FaultVfs::new(FaultPlan::reliable(1)));
/// let scheme = SchemeBuilder::new().object("Info").build();
/// let store = Store::create_with_vfs(vfs, "/db.journal", scheme).unwrap();
/// let server = Server::start(store, ServerConfig::default());
/// let session = server.open_session();
/// let snapshot = server.snapshot();
/// let ack = server
///     .submit_wait(session, Program::from_ops(Vec::new()))
///     .unwrap();
/// assert_eq!(ack.commit_seq, Some(1));
/// // The pre-submit snapshot still reads epoch 0.
/// assert_eq!(snapshot.epoch, 0);
/// server.shutdown().unwrap();
/// ```
pub struct Server {
    shared: Arc<Shared>,
    writer: Mutex<Option<JoinHandle<Store>>>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.shared.lock();
        f.debug_struct("Server")
            .field("sessions", &state.sessions.len())
            .field("queued", &state.queue.len())
            .field("shutdown", &state.shutdown)
            .field("failed", &state.failed)
            .finish()
    }
}

impl Server {
    /// Start the server over `store`: spawns the writer thread and
    /// publishes the store's committed instance as snapshot epoch 0.
    pub fn start(store: Store, config: ServerConfig) -> Server {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                sessions: HashSet::new(),
                next_session: 1,
                next_ticket: 1,
                completions: HashMap::new(),
                shutdown: false,
                paused: false,
                failed: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            // Shares the store's own handle: startup publishes epoch 0
            // with one `Arc` bump, not a graph copy.
            cell: SnapshotCell::new_shared(
                store.instance_arc(),
                RetentionPolicy::versions(config.retain_versions),
            ),
            slow: SlowLog::new(config.slow_log_capacity),
            config,
        });
        let writer_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("good-server-writer".into())
            .spawn(move || writer_loop(writer_shared, store))
            .expect("spawn writer thread");
        Server {
            shared,
            writer: Mutex::new(Some(handle)),
        }
    }

    /// Open a new session and return its id.
    pub fn open_session(&self) -> SessionId {
        let mut state = self.shared.lock();
        let id = state.next_session;
        state.next_session += 1;
        state.sessions.insert(id);
        good_trace::counter_add("server/sessions_opened", 1);
        LIVE_SESSIONS.set(state.sessions.len() as i64);
        id
    }

    /// Close a session; later submissions under its id are rejected
    /// with [`ServerError::UnknownSession`]. In-flight programs it
    /// already enqueued still commit.
    pub fn close_session(&self, session: SessionId) -> Result<(), ServerError> {
        let mut state = self.shared.lock();
        if state.sessions.remove(&session) {
            LIVE_SESSIONS.set(state.sessions.len() as i64);
            Ok(())
        } else {
            Err(ServerError::UnknownSession(session))
        }
    }

    /// Number of currently open sessions — the network front end's
    /// leak detector: every disconnect must drive this back down.
    pub fn session_count(&self) -> usize {
        self.shared.lock().sessions.len()
    }

    /// Programs currently queued for the writer (admission-control
    /// signal; the published `server/queue_depth` gauge's source).
    pub fn queue_depth(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Acquire the current committed snapshot (lock-free reads from
    /// then on; see [`SnapshotCell`]).
    pub fn snapshot(&self) -> Snapshot {
        self.shared.cell.load()
    }

    /// The current snapshot epoch — one publish per committed batch.
    /// A single atomic load; never contends with the writer.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// Time-travel read: the snapshot published at exactly `epoch`, if
    /// the MVCC ring still retains it (see
    /// [`ServerConfig::retain_versions`]). `None` once the retention
    /// policy has trimmed that version — though snapshots already
    /// loaded stay valid forever regardless.
    pub fn snapshot_at(&self, epoch: u64) -> Option<Snapshot> {
        self.shared.cell.load_at(epoch)
    }

    /// The epochs currently retained by the MVCC ring, oldest first.
    pub fn retained_epochs(&self) -> Vec<u64> {
        self.shared.cell.retained_epochs()
    }

    /// Enqueue `program` for `session`. Returns a ticket redeemable
    /// exactly once via [`Server::wait`].
    pub fn submit(&self, session: SessionId, program: Program) -> Result<Ticket, ServerError> {
        self.shared.submit(session, program, None)
    }

    /// [`Server::submit`] with a client-assigned trace id that rides
    /// the request through the pipeline: the `server/enqueue` and
    /// per-request `server/commit` spans carry it as an arg, so a
    /// request's commit timeline (queue-wait → batch → fsync →
    /// publish → ack) can be reconstructed from a span capture.
    pub fn submit_traced(
        &self,
        session: SessionId,
        program: Program,
        trace: Option<u64>,
    ) -> Result<Ticket, ServerError> {
        self.shared.submit(session, program, trace)
    }

    /// The slow-query/slow-commit ring. The net front end pushes slow
    /// queries here; the writer pushes slow commits.
    pub fn slow_log(&self) -> &SlowLog {
        &self.shared.slow
    }

    /// The slow-capture thresholds `(slow_query_ns, slow_commit_ns)`
    /// this server was configured with.
    pub fn slow_thresholds(&self) -> (u64, u64) {
        (
            self.shared.config.slow_query_ns,
            self.shared.config.slow_commit_ns,
        )
    }

    /// The introspection snapshot's server-side sections, as JSON
    /// object *members* (no surrounding braces): `"server":{…},
    /// "mvcc":{…},"metrics":{…},"slow":{…}`. The net front end
    /// prepends its own `"net"` section and wraps the whole thing;
    /// [`Server::stats_json`] wraps it directly for in-process use.
    /// Reads only atomics, the state mutex (briefly), and the slow
    /// ring — never the commit path.
    pub fn stats_sections(&self) -> String {
        let (queue_depth, sessions, draining, failed) = {
            let state = self.shared.lock();
            (
                state.queue.len(),
                state.sessions.len(),
                state.shutdown,
                state.failed.clone(),
            )
        };
        let mut out = format!(
            "\"server\":{{\"epoch\":{},\"queue_depth\":{queue_depth},\"queue_capacity\":{},\"max_batch\":{},\"sessions\":{sessions},\"draining\":{draining},\"failed\":{}}}",
            self.epoch(),
            self.shared.config.queue_capacity,
            self.shared.config.max_batch,
            match &failed {
                Some(reason) => format!("\"{}\"", good_trace::escape_json_str(reason)),
                None => "null".to_string(),
            },
        );
        let retained = self.retained_epochs();
        out.push_str(&format!(
            ",\"mvcc\":{{\"epoch\":{},\"retain_versions\":{},\"retained\":[",
            self.epoch(),
            self.shared.config.retain_versions
        ));
        for (index, epoch) in retained.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&epoch.to_string());
        }
        out.push_str("]}");
        // Live metrics always; fold in the recorder-gated registry too
        // when a recorder happens to be installed (its names are
        // disjoint in practice; first writer wins on collision).
        let mut metrics = good_trace::live_metrics_snapshot();
        if good_trace::enabled() {
            metrics.merge(good_trace::metrics_snapshot());
        }
        out.push_str(",\"metrics\":");
        out.push_str(&metrics.to_json());
        out.push_str(",\"slow\":");
        out.push_str(&self.shared.slow.to_json());
        out
    }

    /// The full in-process introspection snapshot as one JSON object.
    pub fn stats_json(&self) -> String {
        format!("{{{}}}", self.stats_sections())
    }

    /// Block until the writer acks `ticket`. Each ticket may be waited
    /// on exactly once.
    pub fn wait(&self, ticket: Ticket) -> Result<Ack, ServerError> {
        self.shared.wait(ticket)
    }

    /// [`Server::submit`] + [`Server::wait`] in one call.
    pub fn submit_wait(&self, session: SessionId, program: Program) -> Result<Ack, ServerError> {
        let ticket = self.submit(session, program)?;
        self.wait(ticket)
    }

    /// Test support: hold the writer idle so submissions accumulate in
    /// the queue (deterministic batch formation and queue-full tests).
    pub fn pause_writer(&self) {
        self.shared.lock().paused = true;
    }

    /// Lift a [`Server::pause_writer`] hold.
    pub fn resume_writer(&self) {
        self.shared.lock().paused = false;
        self.shared.work.notify_all();
    }

    /// Stop accepting new programs without waiting for the writer:
    /// later submissions fail with [`ServerError::Shutdown`], while
    /// everything already queued still drains and acks. Call
    /// [`Server::shutdown`] afterwards to join the writer.
    pub fn begin_shutdown(&self) {
        self.shared.lock().shutdown = true;
        self.shared.work.notify_all();
    }

    /// Shut down: stop accepting new programs, let the writer drain
    /// everything already queued, join it, and hand back the store.
    pub fn shutdown(self) -> Result<Store, ServerError> {
        self.shutdown_impl()
    }

    /// [`Server::shutdown`] through a shared reference, for owners
    /// that hold the server behind an `Arc` (the network front end):
    /// drains the queue, joins the writer, returns the store. Every
    /// accepted ticket has its completion posted before this returns,
    /// so pending [`Server::wait`] calls cannot block forever. A
    /// second call returns [`ServerError::Shutdown`].
    pub fn drain_shutdown(&self) -> Result<Store, ServerError> {
        self.shutdown_impl()
    }

    fn shutdown_impl(&self) -> Result<Store, ServerError> {
        {
            let mut state = self.shared.lock();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        let handle = self
            .writer
            .lock()
            .expect("writer handle poisoned")
            .take()
            .ok_or(ServerError::Shutdown)?;
        handle
            .join()
            .map_err(|_| ServerError::Store("writer thread panicked".into()))
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.shutdown_impl();
    }
}

fn writer_loop(shared: Arc<Shared>, mut store: Store) -> Store {
    let mut commit_seq: u64 = 0;
    loop {
        let batch: Vec<Request> = {
            let mut state = shared.lock();
            loop {
                // Shutdown overrides pause: queued work always drains
                // before the writer exits.
                let runnable = !state.queue.is_empty() && (!state.paused || state.shutdown);
                if runnable && state.failed.is_none() {
                    break;
                }
                if state.shutdown {
                    return store;
                }
                state = shared.work.wait(state).expect("server state poisoned");
            }
            let take = state.queue.len().min(shared.config.max_batch);
            let batch: Vec<Request> = state.queue.drain(..take).collect();
            good_trace::gauge_set("server/queue_depth", state.queue.len() as i64);
            LIVE_QUEUE_DEPTH.set(state.queue.len() as i64);
            batch
        };
        // Queue-wait ends here for every request in the batch.
        let drained = Instant::now();
        let mut batch_span = good_trace::span("server", "server/batch");
        batch_span.arg("programs", batch.len());
        // The trace histogram entry point is u64-valued; batch size
        // reuses it as a plain count histogram.
        good_trace::observe_ns("server/batch_size", batch.len() as u64);
        LIVE_BATCH_SIZE.observe(batch.len() as u64);
        for req in &batch {
            LIVE_QUEUE_WAIT_NS.observe(duration_ns(req.enqueued, drained));
        }
        let programs: Vec<Program> = batch.iter().map(|req| req.program.clone()).collect();
        let exec_result = store.execute_group(&programs);
        let executed = Instant::now();
        LIVE_EXEC_NS.observe(duration_ns(drained, executed));
        match exec_result {
            Ok(outcomes) => {
                let epoch = {
                    let _publish_span = good_trace::span("server", "server/publish");
                    // Zero-copy publish: the store's committed handle
                    // is shared into the ring as-is.
                    shared.cell.publish_arc(store.instance_arc())
                };
                let published = Instant::now();
                LIVE_PUBLISH_NS.observe(duration_ns(executed, published));
                batch_span.arg("epoch", epoch);
                let exec_ns = duration_ns(drained, executed);
                let publish_ns = duration_ns(executed, published);
                let mut state = shared.lock();
                for (req, outcome) in batch.into_iter().zip(outcomes) {
                    let seq = outcome.is_ok().then(|| {
                        commit_seq += 1;
                        commit_seq
                    });
                    if outcome.is_ok() {
                        LIVE_COMMITTED.incr();
                    } else {
                        LIVE_REJECTED.incr();
                    }
                    let queue_wait_ns = duration_ns(req.enqueued, drained);
                    let total_ns = req.enqueued.elapsed().as_nanos() as u64;
                    LIVE_COMMIT_NS.observe(total_ns);
                    // Per-request commit span: a child of the batch
                    // span on this thread, carrying the trace id and
                    // stage timings so a wire-traced request's
                    // timeline can be reconstructed from a capture.
                    {
                        let mut commit_span = good_trace::span("server", "server/commit");
                        if let Some(id) = req.trace {
                            commit_span.arg("trace", id);
                        }
                        commit_span.arg("queue_wait_ns", queue_wait_ns);
                        commit_span.arg("total_ns", total_ns);
                        commit_span.arg("epoch", epoch);
                        if let Some(seq) = seq {
                            commit_span.arg("commit_seq", seq);
                        }
                    }
                    if total_ns >= shared.config.slow_commit_ns {
                        shared.slow.push(SlowEntry {
                            seq: 0, // assigned by the log
                            kind: SlowKind::Commit,
                            trace: req.trace,
                            session: req.session,
                            total_ns,
                            epoch,
                            detail: format!("{} ops", req.program.len()),
                            plan_json: None,
                            stages: vec![
                                ("queue_wait_ns", queue_wait_ns),
                                ("execute_ns", exec_ns),
                                ("publish_ns", publish_ns),
                            ],
                        });
                    }
                    state.completions.insert(
                        req.ticket,
                        Ok(Ack {
                            session: req.session,
                            commit_seq: seq,
                            epoch,
                            outcome,
                        }),
                    );
                }
                drop(state);
                shared.done.notify_all();
            }
            Err(err) => {
                // Journal I/O failure: the store is poisoned, nothing
                // in this batch (or behind it) can commit. Fail them
                // all and refuse further writes; committed snapshots
                // stay readable.
                let reason = err.to_string();
                batch_span.arg("failed", reason.clone());
                let mut state = shared.lock();
                state.failed = Some(reason.clone());
                for req in batch {
                    state.completions.insert(req.ticket, Err(reason.clone()));
                }
                while let Some(req) = state.queue.pop_front() {
                    state.completions.insert(req.ticket, Err(reason.clone()));
                }
                good_trace::gauge_set("server/queue_depth", 0);
                LIVE_QUEUE_DEPTH.set(0);
                drop(state);
                shared.done.notify_all();
            }
        }
    }
}

/// Saturating nanoseconds between two instants (0 when out of order).
fn duration_ns(from: Instant, to: Instant) -> u64 {
    to.checked_duration_since(from)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}
