//! Snapshot publication: epoch-tagged, atomically rotated immutable
//! [`Instance`] handles.
//!
//! GOOD's operational semantics treat pattern matching as a read-only
//! function of a *fixed* instance (Section 3; likewise the
//! operational-semantics and evaluation-complexity literature on graph
//! query languages). That makes snapshot isolation the natural
//! concurrency model: writers produce a fresh instance value, publish
//! it with one atomic pointer rotation, and every reader that grabbed
//! the previous pointer keeps computing over a frozen, immutable graph
//! — no torn reads, no locks on the match path.
//!
//! [`SnapshotCell`] is the std-only publication primitive (the
//! `arc-swap` idiom without the dependency): a `Mutex<Arc<Instance>>`
//! held only for the nanoseconds of a pointer clone or swap. Readers
//! pay one mutex lock + one `Arc::clone` per *snapshot acquisition*,
//! and nothing at all per read — matching, `explain`, DOT rendering,
//! and browsing all run against the `&Instance` behind the `Arc`.

use crate::instance::Instance;
use std::sync::{Arc, Mutex};

/// An epoch-tagged published snapshot.
///
/// The epoch is a monotone generation counter: it increments on every
/// [`SnapshotCell::publish`], so a reader can cheaply detect that the
/// world has moved on (`server` uses it to report how many batches a
/// long-held snapshot is behind) without ever blocking a writer.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The frozen instance. Immutable by construction: the only route
    /// to this `Arc` is through a cell publish, and cells never hand
    /// out `&mut`.
    pub instance: Arc<Instance>,
    /// The generation this snapshot was published at (0 = the cell's
    /// initial value).
    pub epoch: u64,
}

impl Snapshot {
    /// The frozen instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }
}

/// The publication cell: `Mutex<Arc<Instance>>` + epoch counter.
///
/// ```
/// use good_core::snapshot::SnapshotCell;
/// use good_core::instance::Instance;
/// use good_core::scheme::Scheme;
///
/// let cell = SnapshotCell::new(Instance::new(Scheme::new()));
/// let before = cell.load();
/// cell.publish(Instance::new(Scheme::new()));
/// let after = cell.load();
/// assert_eq!(before.epoch, 0);
/// assert_eq!(after.epoch, 1);
/// // `before` still reads the frozen pre-publish instance.
/// assert_eq!(before.instance().node_count(), 0);
/// ```
#[derive(Debug)]
pub struct SnapshotCell {
    current: Mutex<(Arc<Instance>, u64)>,
}

impl SnapshotCell {
    /// A cell initially publishing `instance` at epoch 0.
    pub fn new(instance: Instance) -> Self {
        SnapshotCell {
            current: Mutex::new((Arc::new(instance), 0)),
        }
    }

    /// Acquire the current snapshot: one short lock, one `Arc::clone`.
    /// The returned handle stays valid (and immutable) forever,
    /// regardless of later publishes.
    pub fn load(&self) -> Snapshot {
        let guard = self.current.lock().expect("snapshot cell poisoned");
        Snapshot {
            instance: Arc::clone(&guard.0),
            epoch: guard.1,
        }
    }

    /// The current epoch without cloning the instance pointer.
    pub fn epoch(&self) -> u64 {
        self.current.lock().expect("snapshot cell poisoned").1
    }

    /// Publish a new instance value, rotating the pointer and bumping
    /// the epoch. Readers holding older snapshots are unaffected.
    pub fn publish(&self, instance: Instance) -> u64 {
        self.publish_arc(Arc::new(instance))
    }

    /// [`SnapshotCell::publish`] for an already-shared instance (lets a
    /// writer that keeps its own `Arc` avoid a second allocation).
    pub fn publish_arc(&self, instance: Arc<Instance>) -> u64 {
        let mut guard = self.current.lock().expect("snapshot cell poisoned");
        guard.0 = instance;
        guard.1 += 1;
        guard.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SchemeBuilder;

    fn tiny() -> Instance {
        let scheme = SchemeBuilder::new().object("Info").build();
        Instance::new(scheme)
    }

    #[test]
    fn load_returns_the_published_value() {
        let cell = SnapshotCell::new(tiny());
        let snap = cell.load();
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.instance().node_count(), 0);
    }

    #[test]
    fn publish_rotates_without_disturbing_held_snapshots() {
        let cell = SnapshotCell::new(tiny());
        let held = cell.load();
        let mut next = tiny();
        next.add_object("Info").unwrap();
        let epoch = cell.publish(next);
        assert_eq!(epoch, 1);
        assert_eq!(cell.epoch(), 1);
        // The held snapshot still sees the old world.
        assert_eq!(held.instance().node_count(), 0);
        assert_eq!(held.epoch, 0);
        // A fresh load sees the new one.
        let fresh = cell.load();
        assert_eq!(fresh.instance().node_count(), 1);
        assert_eq!(fresh.epoch, 1);
    }

    #[test]
    fn epochs_are_monotone_across_publishes() {
        let cell = SnapshotCell::new(tiny());
        for expected in 1..=5 {
            assert_eq!(cell.publish(tiny()), expected);
        }
    }

    #[test]
    fn concurrent_loads_and_publishes_do_not_tear() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let cell = Arc::new(SnapshotCell::new(tiny()));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.load();
                        // Every observable state is a fully built
                        // instance: node counts are 0 or 1, never junk.
                        assert!(snap.instance().node_count() <= 1);
                    }
                });
            }
            for round in 0..100 {
                let mut next = tiny();
                if round % 2 == 0 {
                    next.add_object("Info").unwrap();
                }
                cell.publish(next);
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(cell.epoch(), 100);
    }
}
