//! The TCP network front end: maps wire-protocol connections
//! ([`crate::proto`]) onto the in-process session/submit/ack model.
//!
//! # Architecture
//!
//! One std-only accept loop, thread-per-connection. Each connection
//! runs **two** threads so acks pipeline:
//!
//! * the **reader** decodes frames and serves everything that never
//!   touches the writer inline — `Query` and `Snapshot` run against
//!   lock-free [`Snapshot`](good_core::snapshot::Snapshot) handles —
//!   while `Submit` is enqueued on the server and its ticket handed
//!   to…
//! * …the **ack pump**, which redeems tickets in submission order and
//!   writes `Ack` frames back, so a client can keep tens of submits
//!   in flight without waiting for round trips.
//!
//! # Admission control and load shedding
//!
//! Production concerns are layered on the existing `QueueFull`
//! backpressure, every refusal typed and carrying a retry hint:
//!
//! * **connection admission**: past [`NetConfig::max_connections`]
//!   the accept loop writes `Err{Overloaded, retry_after_ms}` +
//!   `Goodbye` and closes — a cheap refusal that never spawns a
//!   thread;
//! * **per-session in-flight quota**: past
//!   [`NetConfig::session_inflight`] unacked submits, further submits
//!   bounce with `Err{QuotaExceeded}` until acks drain;
//! * **queue backpressure**: the server's own
//!   [`ServerError::QueueFull`] surfaces as `Err{QueueFull}`;
//! * **timeouts**: a connection that sends no `Hello` within
//!   [`NetConfig::hello_timeout`], or nothing at all for
//!   [`NetConfig::idle_timeout`], is told `Goodbye` and closed.
//!
//! # Graceful drain
//!
//! [`NetServer::begin_shutdown`] stops accepting, rejects new submits
//! with `Err{Shutdown}`, but lets everything already accepted commit
//! and ack. [`NetServer::shutdown`] additionally drains the writer,
//! unblocks connection readers, joins every thread, and hands back
//! the [`Store`] — the journal then contains exactly the acked
//! prefix.
//!
//! Observability (DESIGN.md "Observability"): `net/accept`,
//! `net/conn`, `net/frame`, and per-ack `net/ack` spans feed the
//! recorder-gated `good-trace` layer; always-on live metrics
//! (per-frame-type counters, a connections gauge, query/ack latency
//! histograms, shed/quota/bad-frame counters) record regardless. The
//! reader thread serves `Stats` frames with the full introspection
//! snapshot — metrics, MVCC ring, admission state, slow-query ring —
//! without touching the commit path, and `Submit`/`Query` frames may
//! carry a client-assigned trace id that rides the request through
//! every span.

use crate::proto::{
    encode, read_frame, write_frame, ErrCode, Frame, ProtoError, SnapshotInfo, VERSION,
};
use crate::{Server, ServerError, SlowEntry, SlowKind, Ticket};
use good_core::instance::Instance;
use good_core::matching::{explain_plan_profiled, find_matchings, MatchConfig};
use good_core::snapshot::Snapshot;
use good_core::textual::parse_pattern;
use good_graph::NodeId;
use good_store::Store;
use good_trace::{LiveCounter, LiveGauge, LiveHistogram};
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// Always-on front-end metrics (see `good_trace` live metrics): frame
// counts by type, admission events, connection gauge, read latencies.
static LIVE_CONNECTIONS: LiveGauge = LiveGauge::new("net/connections");
static LIVE_ACCEPTED: LiveCounter = LiveCounter::new("net/accepted");
static LIVE_SHED: LiveCounter = LiveCounter::new("net/shed");
static LIVE_QUOTA_REJECT: LiveCounter = LiveCounter::new("net/quota_reject");
static LIVE_BAD_FRAME: LiveCounter = LiveCounter::new("net/bad_frame");
static LIVE_VERSION_REJECT: LiveCounter = LiveCounter::new("net/version_reject");
static LIVE_FRAMES_SUBMIT: LiveCounter = LiveCounter::new("net/frames/submit");
static LIVE_FRAMES_QUERY: LiveCounter = LiveCounter::new("net/frames/query");
static LIVE_FRAMES_SNAPSHOT: LiveCounter = LiveCounter::new("net/frames/snapshot");
static LIVE_FRAMES_STATS: LiveCounter = LiveCounter::new("net/frames/stats");
static LIVE_FRAMES_OTHER: LiveCounter = LiveCounter::new("net/frames/other");
static LIVE_ACKS: LiveCounter = LiveCounter::new("net/acks");
static LIVE_QUERY_NS: LiveHistogram = LiveHistogram::new("net/query_ns");
static LIVE_STATS_NS: LiveHistogram = LiveHistogram::new("net/stats_ns");

/// Tuning knobs for the network front end.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Admission ceiling: connections past this are shed with
    /// `Err{Overloaded}` before a handler thread is spawned.
    pub max_connections: usize,
    /// Per-session in-flight quota: unacked submits past this bounce
    /// with `Err{QuotaExceeded}` until acks drain.
    pub session_inflight: usize,
    /// How long a fresh connection may take to send `Hello`.
    pub hello_timeout: Duration,
    /// Read/write timeout once a session is established; an idle
    /// connection is closed with `Goodbye` when it expires.
    pub idle_timeout: Duration,
    /// The backoff hint carried by retryable refusals
    /// (`Overloaded`/`QuotaExceeded`/`QueueFull`).
    pub retry_after_ms: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 1024,
            session_inflight: 64,
            hello_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            retry_after_ms: 25,
        }
    }
}

struct ConnRegistry {
    /// Streams of live connections, for unblocking readers at drain.
    streams: HashMap<u64, TcpStream>,
    /// Join handles of live handler threads.
    active: HashMap<u64, JoinHandle<()>>,
    /// Handles whose threads have finished (cheap to join).
    finished: Vec<JoinHandle<()>>,
}

struct NetShared {
    server: Server,
    config: NetConfig,
    addr: SocketAddr,
    draining: std::sync::atomic::AtomicBool,
    next_conn: AtomicU64,
    total_accepted: AtomicU64,
    registry: Mutex<ConnRegistry>,
}

impl NetShared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn active_connections(&self) -> usize {
        self.registry.lock().expect("registry").streams.len()
    }

    /// Move a finished connection out of the live registry. The
    /// handler calls this as its last action; its own JoinHandle goes
    /// to the `finished` list (joining an exited thread is cheap),
    /// and dropping the registered stream clone closes the last fd.
    fn finish_conn(&self, id: u64) {
        let mut registry = self.registry.lock().expect("registry");
        registry.streams.remove(&id);
        if let Some(handle) = registry.active.remove(&id) {
            registry.finished.push(handle);
        }
        good_trace::gauge_set("net/connections", registry.streams.len() as i64);
        LIVE_CONNECTIONS.set(registry.streams.len() as i64);
    }

    /// The full introspection snapshot served to `Stats` frames: the
    /// net front end's admission state wrapped around the server's
    /// sections (metrics, MVCC ring, slow log).
    fn stats_json(&self) -> String {
        let net = format!(
            "\"net\":{{\"connections\":{},\"max_connections\":{},\"total_accepted\":{},\"session_inflight\":{},\"draining\":{}}}",
            self.active_connections(),
            self.config.max_connections,
            self.total_accepted.load(Ordering::Relaxed),
            self.config.session_inflight,
            self.draining(),
        );
        format!("{{{net},{}}}", self.server.stats_sections())
    }
}

/// The TCP front end: owns the [`Server`] it fronts plus the accept
/// loop and per-connection threads.
pub struct NetServer {
    shared: Arc<NetShared>,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Serve `server` on `listener`. The accept loop starts
    /// immediately; the bound address is [`NetServer::local_addr`]
    /// (bind to port 0 to let the OS pick).
    pub fn start(
        server: Server,
        listener: TcpListener,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        let addr = listener.local_addr()?;
        let shared = Arc::new(NetShared {
            server,
            config,
            addr,
            draining: std::sync::atomic::AtomicBool::new(false),
            next_conn: AtomicU64::new(1),
            total_accepted: AtomicU64::new(0),
            registry: Mutex::new(ConnRegistry {
                streams: HashMap::new(),
                active: HashMap::new(),
                finished: Vec::new(),
            }),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("good-net-accept".into())
            .spawn(move || accept_loop(accept_shared, listener))?;
        Ok(NetServer {
            shared,
            accept: Some(accept),
        })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The fronted [`Server`] (for in-process reads, test hooks like
    /// `pause_writer`, and mixed in-process/network workloads).
    pub fn server(&self) -> &Server {
        &self.shared.server
    }

    /// Live connection count (accepted, not yet torn down).
    pub fn active_connections(&self) -> usize {
        self.shared.active_connections()
    }

    /// Total connections ever admitted (shed connections excluded).
    pub fn total_accepted(&self) -> u64 {
        self.shared.total_accepted.load(Ordering::Relaxed)
    }

    /// The introspection snapshot `Stats` frames serve — net admission
    /// state plus the server's metrics/MVCC/slow-log sections — for
    /// in-process consumers (the CLI's drain summary, tests).
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// Begin graceful drain: stop accepting connections and refuse
    /// new submits with the typed shutdown error, while everything
    /// already accepted still commits and acks. Idempotent; call
    /// [`NetServer::shutdown`] to finish.
    pub fn begin_shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.server.begin_shutdown();
        // Wake the accept loop so it observes the flag; it drops the
        // wake connection on sight.
        let _ = TcpStream::connect_timeout(&self.shared.addr, Duration::from_secs(1));
    }

    /// Graceful shutdown: stop accepting, commit and ack every
    /// accepted submit, flush acks to their connections, close them,
    /// join every thread, and hand back the store — whose journal now
    /// holds exactly the acked prefix.
    pub fn shutdown(mut self) -> Result<Store, ServerError> {
        self.begin_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Drain the writer: every accepted ticket gets its completion
        // posted before this returns, so ack pumps can flush.
        let store = self.shared.server.drain_shutdown()?;
        // Unblock connection readers parked in `read_frame`: a read
        // shutdown surfaces as EOF, the clean-close path. Ack pumps
        // flush their remaining (already-completed) tickets first —
        // the reader only drops the pump's channel after it returns.
        {
            let registry = self.shared.registry.lock().expect("registry");
            for stream in registry.streams.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        loop {
            let handle = {
                let mut registry = self.shared.registry.lock().expect("registry");
                if let Some(handle) = registry.finished.pop() {
                    Some(handle)
                } else if let Some(&id) = registry.active.keys().next() {
                    registry.active.remove(&id)
                } else {
                    None
                }
            };
            match handle {
                Some(handle) => {
                    let _ = handle.join();
                }
                None => break,
            }
        }
        Ok(store)
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.shared.addr)
            .field("active", &self.active_connections())
            .field("draining", &self.shared.draining())
            .finish()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shared.draining.store(true, Ordering::SeqCst);
            self.shared.server.begin_shutdown();
            let _ = TcpStream::connect_timeout(&self.shared.addr, Duration::from_secs(1));
            if let Some(accept) = self.accept.take() {
                let _ = accept.join();
            }
            let registry = self.shared.registry.lock().expect("registry");
            for stream in registry.streams.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
            // Handler threads observe EOF and exit; the Server's own
            // Drop drains the writer. Handles are detached — their
            // threads hold only the shared Arc.
        }
    }
}

fn accept_loop(shared: Arc<NetShared>, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) if shared.draining() => return,
            Err(_) => continue,
        };
        let mut span = good_trace::span("net", "net/accept");
        if shared.draining() {
            // Either the begin_shutdown wake-up connection or a real
            // client racing the drain; both are turned away.
            let _ = shed(
                &stream,
                &shared.config,
                ErrCode::Shutdown,
                "server draining",
            );
            return;
        }
        let active = shared.active_connections();
        span.arg("active", active);
        if active >= shared.config.max_connections {
            good_trace::counter_add("net/shed", 1);
            LIVE_SHED.incr();
            span.arg("shed", true);
            let _ = shed(
                &stream,
                &shared.config,
                ErrCode::Overloaded,
                &format!("connection limit {} reached", shared.config.max_connections),
            );
            continue;
        }
        let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        let Ok(registered) = stream.try_clone() else {
            continue;
        };
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("good-net-conn-{id}"))
            // Handlers are shallow; small stacks keep 500+ concurrent
            // connections cheap on the soak test.
            .stack_size(256 * 1024)
            .spawn(move || handle_conn(conn_shared, id, stream));
        match handle {
            Ok(handle) => {
                let mut registry = shared.registry.lock().expect("registry");
                registry.streams.insert(id, registered);
                registry.active.insert(id, handle);
                shared.total_accepted.fetch_add(1, Ordering::Relaxed);
                good_trace::gauge_set("net/connections", registry.streams.len() as i64);
                LIVE_CONNECTIONS.set(registry.streams.len() as i64);
                LIVE_ACCEPTED.incr();
            }
            Err(_) => {
                // Spawn failure is load: shed like a full house (the
                // registered clone still points at the same socket).
                good_trace::counter_add("net/shed", 1);
                LIVE_SHED.incr();
                let _ = shed(
                    &registered,
                    &shared.config,
                    ErrCode::Overloaded,
                    "cannot spawn connection handler",
                );
            }
        }
    }
}

/// Refuse a connection before it gets a session: one typed `Err`, a
/// `Goodbye`, and the stream drops.
fn shed(
    stream: &TcpStream,
    config: &NetConfig,
    code: ErrCode,
    detail: &str,
) -> Result<(), ProtoError> {
    let mut writer = stream
        .try_clone()
        .map_err(|e| ProtoError::Io(e.to_string()))?;
    let _ = writer.set_write_timeout(Some(config.hello_timeout));
    write_frame(
        &mut writer,
        &Frame::Err {
            request: 0,
            code,
            retry_after_ms: if code.retryable() {
                config.retry_after_ms
            } else {
                0
            },
            detail: detail.into(),
        },
    )?;
    write_frame(
        &mut writer,
        &Frame::Goodbye {
            reason: "refused".into(),
        },
    )
}

/// A shared, timeout-guarded writer half. Two threads write frames
/// (reader replies and ack-pump acks); the mutex keeps frames whole.
#[derive(Clone)]
struct ConnWriter(Arc<Mutex<TcpStream>>);

impl ConnWriter {
    fn send(&self, frame: &Frame) -> Result<(), ProtoError> {
        let mut stream = self.0.lock().expect("conn writer");
        write_frame(&mut *stream, frame)
    }

    /// Write several pre-encoded frames in one syscall (the ack pump's
    /// micro-batching path).
    fn send_bytes(&self, bytes: &[u8]) -> Result<(), ProtoError> {
        let mut stream = self.0.lock().expect("conn writer");
        stream
            .write_all(bytes)
            .map_err(|e| ProtoError::Io(e.to_string()))
    }
}

fn server_error_frame(request: u64, err: &ServerError, config: &NetConfig) -> Frame {
    let (code, retry) = match err {
        ServerError::UnknownSession(_) => (ErrCode::UnknownSession, 0),
        ServerError::Shutdown => (ErrCode::Shutdown, 0),
        ServerError::QueueFull { .. } => (ErrCode::QueueFull, config.retry_after_ms),
        ServerError::Store(_) => (ErrCode::Store, 0),
    };
    Frame::Err {
        request,
        code,
        retry_after_ms: retry,
        detail: err.to_string(),
    }
}

/// Render one instance node for a `Rows` cell: `Label(value)` for
/// printables, `Label(#id)` otherwise.
fn describe_node(instance: &Instance, node: NodeId) -> String {
    let label = instance
        .node_label(node)
        .map(|l| l.to_string())
        .unwrap_or_else(|| "?".into());
    match instance.print_value(node) {
        Some(value) => format!("{label}({value})"),
        None => format!("{label}({node:?})"),
    }
}

fn handle_conn(shared: Arc<NetShared>, id: u64, stream: TcpStream) {
    let mut conn_span = good_trace::span("net", "net/conn");
    conn_span.arg("conn", id);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.hello_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.idle_timeout));
    let writer = match stream.try_clone() {
        Ok(clone) => ConnWriter(Arc::new(Mutex::new(clone))),
        Err(_) => {
            shared.finish_conn(id);
            return;
        }
    };
    let mut reader = BufReader::new(stream.try_clone().unwrap_or(stream));

    // ---- handshake: exactly one Hello, answered with the session id.
    match read_frame(&mut reader) {
        Ok(Some(Frame::Hello { .. })) => {}
        Ok(Some(other)) => {
            let _ = writer.send(&Frame::Err {
                request: 0,
                code: ErrCode::BadRequest,
                retry_after_ms: 0,
                detail: format!("expected Hello, got {}", other.type_name()),
            });
            let _ = writer.send(&Frame::Goodbye {
                reason: "handshake failed".into(),
            });
            shared.finish_conn(id);
            return;
        }
        Ok(None) => {
            shared.finish_conn(id);
            return;
        }
        Err(ProtoError::Version { got, want }) => {
            // Forward compatibility: a peer speaking another protocol
            // revision (e.g. a newer client) gets a clean typed reply
            // naming the revision this build wants — not a silent
            // connection drop.
            LIVE_VERSION_REJECT.incr();
            let _ = writer.send(&Frame::Err {
                request: 0,
                code: ErrCode::UnsupportedVersion,
                retry_after_ms: 0,
                detail: format!("peer speaks protocol version {got}, this server wants {want}"),
            });
            let _ = writer.send(&Frame::Goodbye {
                reason: "protocol version mismatch".into(),
            });
            shared.finish_conn(id);
            return;
        }
        Err(err) => {
            good_trace::counter_add("net/bad_frame", 1);
            LIVE_BAD_FRAME.incr();
            let _ = writer.send(&Frame::Err {
                request: 0,
                code: ErrCode::BadRequest,
                retry_after_ms: 0,
                detail: err.to_string(),
            });
            let _ = writer.send(&Frame::Goodbye {
                reason: "handshake failed".into(),
            });
            shared.finish_conn(id);
            return;
        }
    }
    let session = shared.server.open_session();
    conn_span.arg("session", session);
    if writer.send(&Frame::Hello { session }).is_err() {
        let _ = shared.server.close_session(session);
        shared.finish_conn(id);
        return;
    }
    let _ = reader
        .get_ref()
        .set_read_timeout(Some(shared.config.idle_timeout));

    // ---- ack pump: redeems tickets in submission order.
    let inflight = Arc::new(AtomicUsize::new(0));
    let (ticket_tx, ticket_rx) = mpsc::channel::<(u64, Option<u64>, Ticket)>();
    let pump = {
        let server_shared = Arc::clone(&shared);
        let pump_writer = writer.clone();
        let pump_inflight = Arc::clone(&inflight);
        std::thread::Builder::new()
            .name(format!("good-net-ack-{id}"))
            .stack_size(256 * 1024)
            .spawn(move || {
                // Micro-batching: after redeeming one ticket, greedily
                // drain whatever else is already queued — group commit
                // completes whole batches at once, so those waits
                // return immediately — and flush every ack in one
                // write. An interactive client (empty channel) still
                // gets its ack flushed at once.
                let mut buffer = Vec::new();
                while let Ok(first) = ticket_rx.recv() {
                    buffer.clear();
                    let mut pair = Some(first);
                    let mut batched = 0usize;
                    while let Some((request, trace, ticket)) = pair {
                        let result = server_shared.server.wait(ticket);
                        pump_inflight.fetch_sub(1, Ordering::SeqCst);
                        LIVE_ACKS.incr();
                        // Mark the ack instant in the span capture —
                        // the tail of a wire-traced request's
                        // timeline.
                        {
                            let mut ack_span = good_trace::span("net", "net/ack");
                            ack_span.arg("request", request);
                            if let Some(trace_id) = trace {
                                ack_span.arg("trace", trace_id);
                            }
                        }
                        let frame = match result {
                            Ok(ack) => Frame::Ack {
                                request,
                                epoch: ack.epoch,
                                commit_seq: ack.commit_seq,
                                outcome: match ack.outcome {
                                    Ok(report) => Ok(format!(
                                        "{} matching(s), +{} nodes, +{} edges, \
                                         -{} nodes, -{} edges",
                                        report.matchings,
                                        report.created_nodes.len(),
                                        report.edges_added,
                                        report.nodes_deleted,
                                        report.edges_deleted
                                    )),
                                    Err(err) => Err(err.to_string()),
                                },
                            },
                            Err(err) => server_error_frame(request, &err, &server_shared.config),
                        };
                        buffer.extend_from_slice(&encode(&frame));
                        batched += 1;
                        pair = if batched < 64 {
                            ticket_rx.try_recv().ok()
                        } else {
                            None
                        };
                    }
                    good_trace::gauge_set(
                        "net/inflight",
                        pump_inflight.load(Ordering::SeqCst) as i64,
                    );
                    // The client may already be gone; tickets must be
                    // redeemed regardless so completions don't leak.
                    let _ = pump_writer.send_bytes(&buffer);
                }
            })
            .expect("spawn ack pump")
    };

    // ---- main loop.
    let mut goodbye_reason: Option<String> = None;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // client closed (or drain unblocked us)
            Err(ProtoError::Timeout) => {
                goodbye_reason = Some("idle timeout".into());
                break;
            }
            Err(err) => {
                // Framing is lost; nothing after this can be trusted.
                good_trace::counter_add("net/bad_frame", 1);
                LIVE_BAD_FRAME.incr();
                let _ = writer.send(&Frame::Err {
                    request: 0,
                    code: ErrCode::BadRequest,
                    retry_after_ms: 0,
                    detail: err.to_string(),
                });
                goodbye_reason = Some("protocol error".into());
                break;
            }
        };
        let mut frame_span = good_trace::span("net", "net/frame");
        frame_span.arg("type", frame.type_name());
        match frame {
            Frame::Submit {
                request,
                program,
                trace,
            } => {
                LIVE_FRAMES_SUBMIT.incr();
                if let Some(trace_id) = trace {
                    frame_span.arg("trace", trace_id);
                }
                if inflight.load(Ordering::SeqCst) >= shared.config.session_inflight {
                    good_trace::counter_add("net/quota_reject", 1);
                    LIVE_QUOTA_REJECT.incr();
                    let _ = writer.send(&Frame::Err {
                        request,
                        code: ErrCode::QuotaExceeded,
                        retry_after_ms: shared.config.retry_after_ms,
                        detail: format!(
                            "session {session} already has {} submits in flight",
                            shared.config.session_inflight
                        ),
                    });
                    continue;
                }
                match shared.server.submit_traced(session, program, trace) {
                    Ok(ticket) => {
                        inflight.fetch_add(1, Ordering::SeqCst);
                        if ticket_tx.send((request, trace, ticket)).is_err() {
                            break; // pump died; tear down
                        }
                    }
                    Err(err) => {
                        let _ = writer.send(&server_error_frame(request, &err, &shared.config));
                    }
                }
            }
            Frame::Query {
                request,
                at,
                pattern,
                trace,
            } => {
                LIVE_FRAMES_QUERY.incr();
                if let Some(trace_id) = trace {
                    frame_span.arg("trace", trace_id);
                }
                let reply = run_query(&shared, session, request, at, &pattern, trace);
                if writer.send(&reply).is_err() {
                    break;
                }
            }
            Frame::Snapshot {
                request,
                at,
                want_dot,
                info: None,
            } => {
                LIVE_FRAMES_SNAPSHOT.incr();
                let reply = run_snapshot(&shared, request, at, want_dot);
                if writer.send(&reply).is_err() {
                    break;
                }
            }
            Frame::Stats { request } => {
                LIVE_FRAMES_STATS.incr();
                let started = Instant::now();
                let json = shared.stats_json();
                LIVE_STATS_NS.observe(started.elapsed().as_nanos() as u64);
                if writer.send(&Frame::StatsReply { request, json }).is_err() {
                    break;
                }
            }
            Frame::Goodbye { .. } => {
                goodbye_reason = Some("client said goodbye".into());
                break;
            }
            other => {
                LIVE_FRAMES_OTHER.incr();
                let _ = writer.send(&Frame::Err {
                    request: 0,
                    code: ErrCode::BadRequest,
                    retry_after_ms: 0,
                    detail: format!("unexpected {} frame", other.type_name()),
                });
            }
        }
    }

    // ---- teardown: flush in-flight acks, then say goodbye.
    drop(ticket_tx);
    let _ = pump.join();
    let reason = goodbye_reason.unwrap_or_else(|| "closing".into());
    let _ = writer.send(&Frame::Goodbye { reason });
    let _ = shared.server.close_session(session);
    shared.finish_conn(id);
}

/// Load the snapshot a request names: current when `at` is `None`,
/// else the retained MVCC version at exactly that epoch.
fn snapshot_for(shared: &NetShared, at: Option<u64>) -> Result<Snapshot, Frame> {
    match at {
        None => Ok(shared.server.snapshot()),
        Some(epoch) => shared.server.snapshot_at(epoch).ok_or(Frame::Err {
            request: 0,
            code: ErrCode::BadRequest,
            retry_after_ms: 0,
            detail: format!("epoch {epoch} is not retained by the MVCC ring"),
        }),
    }
}

fn with_request(frame: Frame, request: u64) -> Frame {
    match frame {
        Frame::Err {
            code,
            retry_after_ms,
            detail,
            ..
        } => Frame::Err {
            request,
            code,
            retry_after_ms,
            detail,
        },
        other => other,
    }
}

/// Query frames carry either the textual pattern syntax or a GOODQL
/// `MATCH ... RETURN ...` query; GOODQL is recognized by its leading
/// keyword (case-insensitive, followed by a non-word character), which
/// can never start a pattern (patterns open with `{`).
fn looks_like_goodql(text: &str) -> bool {
    let trimmed = text.trim_start();
    if trimmed.len() < 5 || !trimmed.is_char_boundary(5) {
        return false;
    }
    trimmed[..5].eq_ignore_ascii_case("match")
        && trimmed[5..]
            .chars()
            .next()
            .is_none_or(|ch| !ch.is_alphanumeric() && ch != '-' && ch != '_')
}

fn run_query(
    shared: &NetShared,
    session: u64,
    request: u64,
    at: Option<u64>,
    pattern_text: &str,
    trace: Option<u64>,
) -> Frame {
    let started = Instant::now();
    let snapshot = match snapshot_for(shared, at) {
        Ok(snapshot) => snapshot,
        Err(err) => return with_request(err, request),
    };
    if looks_like_goodql(pattern_text) {
        let output =
            match good_query::run(snapshot.instance(), pattern_text, good_query::Backend::Core) {
                Ok(output) => output,
                Err(err) => {
                    return Frame::Err {
                        request,
                        code: ErrCode::BadRequest,
                        retry_after_ms: 0,
                        detail: format!("query: {}", err.render(pattern_text)),
                    }
                }
            };
        let total_ns = started.elapsed().as_nanos() as u64;
        LIVE_QUERY_NS.observe(total_ns);
        let (slow_query_ns, _) = shared.server.slow_thresholds();
        if total_ns >= slow_query_ns {
            shared.server.slow_log().push(SlowEntry {
                seq: 0, // assigned by the log
                kind: SlowKind::Query,
                trace,
                session,
                total_ns,
                epoch: snapshot.epoch,
                detail: pattern_text.to_string(),
                plan_json: None,
                stages: vec![("query_ns", total_ns)],
            });
        }
        return Frame::Rows {
            request,
            epoch: snapshot.epoch,
            columns: output.columns,
            rows: output.rows,
        };
    }
    let (pattern, names) = match parse_pattern(pattern_text) {
        Ok(parsed) => parsed,
        Err(err) => {
            return Frame::Err {
                request,
                code: ErrCode::BadRequest,
                retry_after_ms: 0,
                detail: format!("pattern: {err}"),
            }
        }
    };
    let parsed = Instant::now();
    let matchings = match find_matchings(&pattern, snapshot.instance()) {
        Ok(matchings) => matchings,
        Err(err) => {
            return Frame::Err {
                request,
                code: ErrCode::BadRequest,
                retry_after_ms: 0,
                detail: format!("query: {err}"),
            }
        }
    };
    let matched = Instant::now();
    let total_ns = matched.duration_since(started).as_nanos() as u64;
    LIVE_QUERY_NS.observe(total_ns);
    let (slow_query_ns, _) = shared.server.slow_thresholds();
    if total_ns >= slow_query_ns {
        // Already slow: re-running the plan profiled to capture
        // per-step estimated-vs-actual rows costs one more execution
        // of something that by definition happens rarely.
        let plan_json =
            explain_plan_profiled(&pattern, snapshot.instance(), MatchConfig::default())
                .ok()
                .map(|plan| plan.to_json());
        shared.server.slow_log().push(SlowEntry {
            seq: 0, // assigned by the log
            kind: SlowKind::Query,
            trace,
            session,
            total_ns,
            epoch: snapshot.epoch,
            detail: pattern_text.to_string(),
            plan_json,
            stages: vec![
                ("parse_ns", parsed.duration_since(started).as_nanos() as u64),
                ("match_ns", matched.duration_since(parsed).as_nanos() as u64),
            ],
        });
    }
    let columns: Vec<String> = names.keys().cloned().collect();
    let rows: Vec<Vec<String>> = matchings
        .iter()
        .map(|matching| {
            names
                .values()
                .map(|node| match matching.get(*node) {
                    Some(image) => describe_node(snapshot.instance(), image),
                    None => "-".into(),
                })
                .collect()
        })
        .collect();
    Frame::Rows {
        request,
        epoch: snapshot.epoch,
        columns,
        rows,
    }
}

fn run_snapshot(shared: &NetShared, request: u64, at: Option<u64>, want_dot: bool) -> Frame {
    let snapshot = match snapshot_for(shared, at) {
        Ok(snapshot) => snapshot,
        Err(err) => return with_request(err, request),
    };
    let instance = snapshot.instance();
    Frame::Snapshot {
        request,
        at,
        want_dot,
        info: Some(SnapshotInfo {
            epoch: snapshot.epoch,
            nodes: instance.node_count() as u64,
            edges: instance.edge_count() as u64,
            dot: want_dot.then(|| instance.to_dot("snapshot")),
        }),
    }
}

/// The version byte the handshake accepts — re-exported so client and
/// server cannot drift.
pub const PROTOCOL_VERSION: u8 = VERSION;
