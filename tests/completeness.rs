//! The Section 4.3 expressiveness theorems, machine-checked
//! (DESIGN.md T1–T3).
//!
//! T1 is property-tested: random relational databases and random
//! algebra expressions evaluate identically through the native engine
//! and through the compiled GOOD program. T2 checks nest/unnest and the
//! abstraction-based duplicate elimination. T3 runs sample Turing
//! machines both ways.

use good::model::program::Env;
use good::relational::algebra::{CmpOp, Predicate, RelExpr};
use good::relational::compile::Compiler;
use good::relational::encode::{decode, encode};
use good::relational::nested::{decode_nest, nest, nest_in_good, unnest};
use good::relational::relation::{RelDatabase, RelSchema, Relation};
use good_core::value::{Value, ValueType};
use proptest::prelude::*;

// ---- T1: relational completeness -------------------------------------------

/// Two fixed schemas so random expressions can compose meaningfully:
/// r(a: str, b: int) and s(b: int, c: str).
fn arb_database() -> impl Strategy<Value = RelDatabase> {
    let arb_value_pair = (0u8..4, 0i64..4);
    let r_tuples = proptest::collection::btree_set(arb_value_pair, 0..12);
    let s_tuples = proptest::collection::btree_set((0i64..4, 0u8..4), 0..12);
    (r_tuples, s_tuples).prop_map(|(r_rows, s_rows)| {
        let mut r = Relation::new(RelSchema::new([
            ("a", ValueType::Str),
            ("b", ValueType::Int),
        ]));
        for (a, b) in r_rows {
            r.insert(vec![Value::str(format!("v{a}")), Value::int(b)])
                .unwrap();
        }
        let mut s = Relation::new(RelSchema::new([
            ("b", ValueType::Int),
            ("c", ValueType::Str),
        ]));
        for (b, c) in s_rows {
            s.insert(vec![Value::int(b), Value::str(format!("v{c}"))])
                .unwrap();
        }
        let mut db = RelDatabase::new();
        db.add("r", r);
        db.add("s", s);
        db
    })
}

/// Random algebra expressions with schema r(a,b) (closed under the
/// generators we pick, so every generated expression type-checks).
fn arb_expr() -> impl Strategy<Value = RelExpr> {
    let leaf = prop_oneof![
        Just(RelExpr::base("r")),
        // s joined down to r's schema via rename/project is cheap to
        // arrange: π_a,b(ρ_{c→a}(s)) has schema (b, c→a)... keep the
        // simple route: both leaves are over r's schema.
        Just(RelExpr::base("r").select(Predicate::AttrEqConst("b".into(), Value::int(1)))),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), 0i64..4)
                .prop_map(|(e, k)| { e.select(Predicate::AttrEqConst("b".into(), Value::int(k))) }),
            (inner.clone(), 0u8..4).prop_map(|(e, k)| {
                e.select(Predicate::AttrEqConst(
                    "a".into(),
                    Value::str(format!("v{k}")),
                ))
            }),
            (inner.clone(), 0i64..4).prop_map(|(e, k)| e.select(Predicate::AttrCmp(
                "b".into(),
                CmpOp::Ge,
                Value::int(k)
            ))),
            (inner.clone(), 0i64..4).prop_map(|(e, k)| e.select(Predicate::AttrCmp(
                "b".into(),
                CmpOp::Ne,
                Value::int(k)
            ))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.union(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.difference(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.join(r)),
            inner.clone().prop_map(|e| e.project(["a", "b"])),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn t1_compiled_good_program_agrees_with_algebra(
        db in arb_database(),
        expr in arb_expr(),
    ) {
        let expected = expr.eval(&db).expect("closed expression evaluates");
        let mut instance = encode(&db).expect("encoding succeeds");
        let compiled = Compiler::new().compile(&expr, &db).expect("compiles");
        compiled
            .program
            .apply(&mut instance, &mut Env::with_fuel(1_000_000))
            .expect("program runs");
        instance.validate().expect("instance stays valid");
        let actual = decode(&instance, &compiled.class, &compiled.schema).expect("decodes");
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn t1_join_of_r_and_s(db in arb_database()) {
        let expr = RelExpr::base("r").join(RelExpr::base("s"));
        let expected = expr.eval(&db).unwrap();
        let mut instance = encode(&db).unwrap();
        let compiled = Compiler::new().compile(&expr, &db).unwrap();
        compiled.program.apply(&mut instance, &mut Env::new()).unwrap();
        let actual = decode(&instance, &compiled.class, &compiled.schema).unwrap();
        prop_assert_eq!(actual, expected);
    }
}

// ---- T2: nested relational algebra -----------------------------------------

fn arb_flat_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::btree_set((0u8..4, 0u8..5), 0..16).prop_map(|rows| {
        let mut r = Relation::new(RelSchema::new([
            ("k", ValueType::Str),
            ("v", ValueType::Str),
        ]));
        for (k, v) in rows {
            r.insert(vec![
                Value::str(format!("k{k}")),
                Value::str(format!("v{v}")),
            ])
            .unwrap();
        }
        r
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn t2_unnest_inverts_nest(flat in arb_flat_relation()) {
        let nested = nest(&flat, &["k"], "vs").unwrap();
        prop_assert_eq!(unnest(&nested).unwrap(), flat);
    }

    #[test]
    fn t2_good_nest_simulation_agrees(flat in arb_flat_relation()) {
        let mut db = RelDatabase::new();
        db.add("t", flat.clone());
        let mut instance = encode(&db).unwrap();
        let good_nest = nest_in_good(
            &mut instance,
            &mut Env::new(),
            &good::relational::encode::class_label("t"),
            flat.schema(),
            &["k"],
            "n",
        )
        .unwrap();
        instance.validate().unwrap();
        let expected = nest(&flat, &["k"], "vs").unwrap();
        let key_schema = RelSchema::new([("k".to_string(), ValueType::Str)]);
        let nested_schema = RelSchema::new([("v".to_string(), ValueType::Str)]);
        let decoded =
            decode_nest(&instance, &good_nest, &key_schema, &nested_schema, "vs").unwrap();
        prop_assert_eq!(decoded.rows, expected.rows);
        // Faithfulness: abstraction groups = distinct relation values.
        let distinct_sets: std::collections::BTreeSet<_> =
            nest(&flat, &["k"], "vs").unwrap().rows.into_values().collect();
        prop_assert_eq!(
            instance.label_count(&good_nest.group_class),
            distinct_sets.len()
        );
    }
}

// ---- T3: Turing completeness -------------------------------------------------

#[test]
fn t3_sample_machines_agree_with_interpreter() {
    use good::turing::machine::{binary_increment, unary_addition, Outcome};
    for (machine, inputs, fuel) in [
        (
            binary_increment(),
            vec!["0", "1", "110", "1111"],
            400_000u64,
        ),
        (unary_addition(), vec!["1+1", "111+11"], 400_000),
    ] {
        for input in inputs {
            let expected = match machine.run(input, 100_000) {
                Outcome::Halted { config, .. } => config,
                Outcome::OutOfSteps(_) => unreachable!(),
            };
            let actual = good::turing::run_in_good(&machine, input, fuel).unwrap();
            assert_eq!(actual, expected, "machine disagreed on {input}");
        }
    }
}

#[test]
fn t3_divergence_is_caught_by_fuel() {
    use good::turing::machine::diverger;
    let err = good::turing::run_in_good(&diverger(), "", 3_000).unwrap_err();
    assert!(matches!(
        err,
        good::model::error::GoodError::OutOfFuel { .. }
    ));
}
