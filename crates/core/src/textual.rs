//! A textual notation for patterns and operations.
//!
//! The paper's interface is graphical; its prototype nevertheless
//! manipulated programs as data (Section 5). This module provides the
//! equivalent for the reproduction: a compact, line-oriented pattern
//! language with a hand-rolled recursive-descent parser, plus verbose
//! pretty-printers in the paper's bracket notation (`NA[...]`,
//! `EA[...]`, ...). `parse_pattern` and `format_pattern` round-trip.
//!
//! # Pattern syntax
//!
//! ```text
//! pattern {
//!   info: Info;                       # node declaration
//!   name: String = "Rock";            # printable with exact value
//!   d: Date = date(1990-01-14);       # dates, ints, reals, bools
//!   !other: Info;                     # crossed (negated) node
//!   info -name-> name;                # edge
//!   info -created-> d;
//!   info -links-to-!> other;          # crossed (negated) edge
//! }
//! ```
//!
//! Node identifiers bind left of `:`; the map returned by
//! [`parse_pattern`] lets callers reference them when building
//! operations.

use crate::error::{GoodError, Result};
use crate::pattern::{Pattern, PatternNodeKind};
use crate::scheme::Scheme;
use crate::value::{Date, Value};
use good_graph::NodeId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---- lexer -------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Int(i64),
    Real(f64),
    Date(Date),
    Bool(bool),
    Colon,
    Semi,
    Equals,
    Bang,
    LBrace,
    RBrace,
    /// `-label->` or `-label-!>`: an edge arrow carrying its label and
    /// negation flag.
    Arrow(String, bool),
}

struct Lexer<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer { text, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> GoodError {
        GoodError::InvalidPattern(format!(
            "parse error at byte {}: {}",
            self.pos,
            message.into()
        ))
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn skip_trivia(&mut self) {
        loop {
            let rest = self.rest();
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if self.rest().starts_with('#') {
                match self.rest().find('\n') {
                    Some(offset) => self.pos += offset + 1,
                    None => self.pos = self.text.len(),
                }
            } else {
                return;
            }
        }
    }

    fn next_token(&mut self) -> Result<Option<Token>> {
        self.skip_trivia();
        let rest = self.rest();
        let Some(first) = rest.chars().next() else {
            return Ok(None);
        };
        // Single-character tokens.
        let single = match first {
            ':' => Some(Token::Colon),
            ';' => Some(Token::Semi),
            '=' => Some(Token::Equals),
            '!' => Some(Token::Bang),
            '{' => Some(Token::LBrace),
            '}' => Some(Token::RBrace),
            _ => None,
        };
        if let Some(token) = single {
            self.pos += 1;
            return Ok(Some(token));
        }
        // Edge arrow: -label-> or -label-!>
        if first == '-' {
            let body = &rest[1..];
            let Some(end) = body.find("->").or_else(|| body.find("-!>")) else {
                return Err(self.error("expected an edge arrow like `-label->`"));
            };
            // Determine which terminator comes first.
            let (label_end, negated, arrow_len) = match (body.find("-!>"), body.find("->")) {
                (Some(neg), Some(pos)) if neg < pos => (neg, true, 3),
                (Some(neg), None) => (neg, true, 3),
                (_, Some(pos)) => (pos, false, 2),
                (None, None) => unreachable!("find above succeeded"),
            };
            let _ = end;
            let label = body[..label_end].trim();
            if label.is_empty() {
                return Err(self.error("edge arrows need a label: `-label->`"));
            }
            self.pos += 1 + label_end + arrow_len;
            return Ok(Some(Token::Arrow(label.to_string(), negated)));
        }
        // String literal.
        if first == '"' {
            let body = &rest[1..];
            let Some(end) = body.find('"') else {
                return Err(self.error("unterminated string literal"));
            };
            self.pos += end + 2;
            return Ok(Some(Token::Str(body[..end].to_string())));
        }
        // Number.
        if first.is_ascii_digit() || first == '+' {
            let end = rest
                .char_indices()
                .find(|(_, c)| !c.is_ascii_digit() && *c != '.' && *c != '+' && *c != '-')
                .map(|(index, _)| index)
                .unwrap_or(rest.len());
            let literal = &rest[..end];
            self.pos += end;
            if literal.contains('.') {
                let value: f64 = literal
                    .parse()
                    .map_err(|_| self.error(format!("bad real literal {literal}")))?;
                return Ok(Some(Token::Real(value)));
            }
            let value: i64 = literal
                .parse()
                .map_err(|_| self.error(format!("bad integer literal {literal}")))?;
            return Ok(Some(Token::Int(value)));
        }
        // Identifier / keyword / date(...) / negative int.
        let end = rest
            .char_indices()
            .find(|(_, c)| !c.is_alphanumeric() && !"_-#".contains(*c))
            .map(|(index, _)| index)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.error(format!("unexpected character {first:?}")));
        }
        let word = &rest[..end];
        self.pos += end;
        match word {
            "true" => return Ok(Some(Token::Bool(true))),
            "false" => return Ok(Some(Token::Bool(false))),
            "date" => {
                // date(YYYY-MM-DD)
                if !self.rest().starts_with('(') {
                    return Err(self.error("expected `(` after `date`"));
                }
                let body = &self.rest()[1..];
                let Some(close) = body.find(')') else {
                    return Err(self.error("unterminated date literal"));
                };
                let literal = &body[..close];
                let parts: Vec<&str> = literal.split('-').collect();
                if parts.len() != 3 {
                    return Err(self.error(format!("bad date literal {literal}")));
                }
                let year: i32 = parts[0]
                    .parse()
                    .map_err(|_| self.error(format!("bad year in {literal}")))?;
                let month: u8 = parts[1]
                    .parse()
                    .map_err(|_| self.error(format!("bad month in {literal}")))?;
                let day: u8 = parts[2]
                    .parse()
                    .map_err(|_| self.error(format!("bad day in {literal}")))?;
                if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
                    return Err(self.error(format!("date out of range: {literal}")));
                }
                self.pos += close + 2;
                return Ok(Some(Token::Date(Date::new(year, month, day))));
            }
            _ => {}
        }
        Ok(Some(Token::Ident(word.to_string())))
    }

    fn tokens(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        while let Some(token) = self.next_token()? {
            out.push(token);
        }
        Ok(out)
    }
}

// ---- parser --------------------------------------------------------------

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn error(&self, message: impl Into<String>) -> GoodError {
        GoodError::InvalidPattern(format!(
            "parse error at token {}: {}",
            self.pos,
            message.into()
        ))
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn expect(&mut self, expected: &Token) -> Result<()> {
        match self.next() {
            Some(token) if &token == expected => Ok(()),
            other => Err(self.error(format!("expected {expected:?}, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(name),
            other => Err(self.error(format!("expected an identifier, found {other:?}"))),
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.next() {
            Some(Token::Str(text)) => Ok(Value::str(text)),
            Some(Token::Int(value)) => Ok(Value::Int(value)),
            Some(Token::Real(value)) => Ok(Value::real(value)),
            Some(Token::Bool(value)) => Ok(Value::Bool(value)),
            Some(Token::Date(date)) => Ok(Value::Date(date)),
            other => Err(self.error(format!("expected a value literal, found {other:?}"))),
        }
    }
}

/// Parse the textual pattern notation. Returns the pattern and the map
/// from declared identifiers to pattern node ids.
/// # Example
///
/// ```
/// let (pattern, names) = good_core::textual::parse_pattern(r#"
///     pattern {
///         info: Info;
///         name: String = "Rock";
///         info -name-> name;
///     }
/// "#)?;
/// assert_eq!(pattern.node_count(), 2);
/// assert!(names.contains_key("info"));
/// # Ok::<(), good_core::error::GoodError>(())
/// ```
pub fn parse_pattern(text: &str) -> Result<(Pattern, BTreeMap<String, NodeId>)> {
    let tokens = Lexer::new(text).tokens()?;
    let mut parser = Parser { tokens, pos: 0 };

    // Optional `pattern` keyword, mandatory braces.
    if matches!(parser.peek(), Some(Token::Ident(word)) if word == "pattern") {
        parser.next();
    }
    parser.expect(&Token::LBrace)?;

    let mut pattern = Pattern::new();
    let mut names: BTreeMap<String, NodeId> = BTreeMap::new();

    loop {
        match parser.peek() {
            None => return Err(parser.error("unexpected end of input, expected `}`")),
            Some(Token::RBrace) => {
                parser.next();
                break;
            }
            Some(Token::Bang) => {
                // Crossed node declaration: `!name: Label;`
                parser.next();
                let name = parser.ident()?;
                parser.expect(&Token::Colon)?;
                let label = parser.ident()?;
                parser.expect(&Token::Semi)?;
                if names.contains_key(&name) {
                    return Err(parser.error(format!("node {name} declared twice")));
                }
                let node = pattern.negated_node(label.as_str());
                names.insert(name, node);
            }
            Some(Token::Ident(_)) => {
                let name = parser.ident()?;
                match parser.next() {
                    Some(Token::Colon) => {
                        // Node declaration: `name: Label [= value];`
                        let label = parser.ident()?;
                        if names.contains_key(&name) {
                            return Err(parser.error(format!("node {name} declared twice")));
                        }
                        let node = match parser.peek() {
                            Some(Token::Equals) => {
                                parser.next();
                                let value = parser.value()?;
                                pattern.printable(label.as_str(), value)
                            }
                            _ => pattern.node(label.as_str()),
                        };
                        parser.expect(&Token::Semi)?;
                        names.insert(name, node);
                    }
                    Some(Token::Arrow(label, negated)) => {
                        // Edge: `src -label-> dst;`
                        let dst_name = parser.ident()?;
                        parser.expect(&Token::Semi)?;
                        let src = *names.get(&name).ok_or_else(|| {
                            parser.error(format!("edge references undeclared node {name}"))
                        })?;
                        let dst = *names.get(&dst_name).ok_or_else(|| {
                            parser.error(format!("edge references undeclared node {dst_name}"))
                        })?;
                        if negated {
                            pattern.negated_edge(src, label.as_str(), dst);
                        } else {
                            pattern.edge(src, label.as_str(), dst);
                        }
                    }
                    other => {
                        return Err(
                            parser.error(format!("expected `:` or an edge arrow, found {other:?}"))
                        )
                    }
                }
            }
            Some(other) => {
                return Err(parser.error(format!("unexpected token {other:?}")));
            }
        }
    }
    if parser.peek().is_some() {
        return Err(parser.error("trailing input after `}`"));
    }
    Ok((pattern, names))
}

// ---- printer -----------------------------------------------------------------

fn render_value(value: &Value) -> String {
    match value {
        Value::Str(text) => format!("{text:?}"),
        Value::Int(int) => int.to_string(),
        Value::Real(real) => {
            let rendered = real.get().to_string();
            if rendered.contains('.') {
                rendered
            } else {
                format!("{rendered}.0")
            }
        }
        Value::Bool(b) => b.to_string(),
        Value::Date(date) => {
            format!("date({:04}-{:02}-{:02})", date.year, date.month, date.day)
        }
        Value::Bytes(_) => "\"<bytes>\"".to_string(),
    }
}

/// Render a pattern in the textual notation. The output parses back to
/// an isomorphic pattern (bytes values excepted). Node identifiers are
/// generated as `n1`, `n2`, ... in id order.
pub fn format_pattern(pattern: &Pattern) -> String {
    let mut out = String::from("pattern {\n");
    let mut names: BTreeMap<NodeId, String> = BTreeMap::new();
    let mut nodes: Vec<NodeId> = pattern.graph().node_ids().collect();
    nodes.sort();
    for (index, node) in nodes.iter().enumerate() {
        let name = format!("n{}", index + 1);
        let data = pattern.graph().node(*node).expect("live");
        match &data.kind {
            PatternNodeKind::Class(label) => {
                let bang = if data.negated { "!" } else { "" };
                match &data.print {
                    Some(value) => {
                        writeln!(out, "  {bang}{name}: {label} = {};", render_value(value))
                            .expect("write");
                    }
                    None => writeln!(out, "  {bang}{name}: {label};").expect("write"),
                }
            }
            PatternNodeKind::MethodHead(method) => {
                writeln!(out, "  # method head for {method}").expect("write");
                writeln!(out, "  {name}: {method};").expect("write");
            }
        }
        names.insert(*node, name);
    }
    let mut edges: Vec<_> = pattern
        .graph()
        .edges()
        .map(|e| {
            (
                names[&e.src].clone(),
                e.payload.label.clone(),
                e.payload.negated,
                names[&e.dst].clone(),
            )
        })
        .collect();
    edges.sort();
    for (src, label, negated, dst) in edges {
        let head = if negated { "-!>" } else { "->" };
        writeln!(out, "  {src} -{label}{head} {dst};").expect("write");
    }
    out.push_str("}\n");
    out
}

/// Render an operation in the paper's bracket notation (verbose form of
/// the `Display` impl on [`crate::program::Operation`]).
pub fn format_operation(op: &crate::program::Operation, scheme: &Scheme) -> String {
    let _ = scheme;
    let mut out = String::new();
    match op {
        crate::program::Operation::NodeAdd(na) => {
            writeln!(out, "NA[J, {}, {{", na.label).expect("write");
            for (label, node) in &na.edges {
                writeln!(out, "  ({label}, {node:?}),").expect("write");
            }
            out.push_str("}] where J =\n");
            out.push_str(&format_pattern(&na.pattern));
        }
        crate::program::Operation::EdgeAdd(ea) => {
            out.push_str("EA[J, {\n");
            for edge in &ea.edges {
                writeln!(
                    out,
                    "  ({:?}, {} [{}], {:?}),",
                    edge.src, edge.label, edge.kind, edge.dst
                )
                .expect("write");
            }
            out.push_str("}] where J =\n");
            out.push_str(&format_pattern(&ea.pattern));
        }
        crate::program::Operation::NodeDel(nd) => {
            writeln!(out, "ND[J, {:?}] where J =", nd.target).expect("write");
            out.push_str(&format_pattern(&nd.pattern));
        }
        crate::program::Operation::EdgeDel(ed) => {
            out.push_str("ED[J, {\n");
            for (src, label, dst) in &ed.edges {
                writeln!(out, "  ({src:?}, {label}, {dst:?}),").expect("write");
            }
            out.push_str("}] where J =\n");
            out.push_str(&format_pattern(&ed.pattern));
        }
        crate::program::Operation::Abstract(ab) => {
            writeln!(
                out,
                "AB[J, {:?}, {}, {}, {}] where J =",
                ab.node, ab.group_label, ab.member_edge, ab.key_edge
            )
            .expect("write");
            out.push_str(&format_pattern(&ab.pattern));
        }
        crate::program::Operation::Call(mc) => {
            writeln!(
                out,
                "MC[J, {}, receiver {:?}, args {:?}] where J =",
                mc.method, mc.receiver, mc.args
            )
            .expect("write");
            out.push_str(&format_pattern(&mc.pattern));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use crate::matching::find_matchings;
    use crate::scheme::SchemeBuilder;
    use crate::value::ValueType;

    fn scheme() -> Scheme {
        SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .printable("Date", ValueType::Date)
            .printable("Number", ValueType::Int)
            .functional("Info", "name", "String")
            .functional("Info", "created", "Date")
            .functional("Info", "modified", "Date")
            .functional("Info", "rank", "Number")
            .multivalued("Info", "links-to", "Info")
            .build()
    }

    const FIGURE4: &str = r#"
        pattern {
          info: Info;
          d: Date = date(1990-01-14);
          name: String = "Rock";
          other: Info;
          info -created-> d;
          info -name-> name;
          info -links-to-> other;
        }
    "#;

    #[test]
    fn parses_figure4() {
        let (pattern, names) = parse_pattern(FIGURE4).unwrap();
        pattern.validate(&scheme()).unwrap();
        assert_eq!(pattern.node_count(), 4);
        assert_eq!(pattern.graph().edge_count(), 3);
        assert!(names.contains_key("info") && names.contains_key("other"));
    }

    #[test]
    fn parsed_pattern_matches_like_the_builder_one() {
        // Build the same instance as the matching tests and compare.
        let mut db = crate::instance::Instance::new(scheme());
        let rock = db.add_object("Info").unwrap();
        let doors = db.add_object("Info").unwrap();
        let name = db.add_printable("String", "Rock").unwrap();
        let date = db.add_printable("Date", Value::date(1990, 1, 14)).unwrap();
        db.add_edge(rock, "name", name).unwrap();
        db.add_edge(rock, "created", date).unwrap();
        db.add_edge(rock, "links-to", doors).unwrap();
        let (pattern, names) = parse_pattern(FIGURE4).unwrap();
        let matchings = find_matchings(&pattern, &db).unwrap();
        assert_eq!(matchings.len(), 1);
        assert_eq!(matchings[0].image(names["other"]), doors);
    }

    #[test]
    fn parses_negation_and_comments() {
        let text = r#"
            pattern {
              # infos that do not link anywhere
              info: Info;
              !sink: Info;
              info -links-to-!> sink;
            }
        "#;
        let (pattern, _) = parse_pattern(text).unwrap();
        assert!(pattern.has_negation());
        assert_eq!(pattern.positive_nodes().len(), 1);
    }

    #[test]
    fn parses_all_value_kinds() {
        let text = r#"{
            a: String = "hello world";
            b: Number = 42;
            c: Date = date(1990-12-31);
        }"#;
        let (pattern, names) = parse_pattern(text).unwrap();
        pattern.validate(&scheme()).unwrap();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn roundtrips_through_the_printer() {
        let (original, _) = parse_pattern(FIGURE4).unwrap();
        let printed = format_pattern(&original);
        let (reparsed, _) = parse_pattern(&printed).unwrap();
        // Compare structurally via the isomorphism checker on the raw
        // graphs.
        assert!(good_graph::iso::isomorphic(
            original.graph(),
            reparsed.graph(),
            |n| format!("{:?}{:?}{}", n.kind, n.print, n.negated),
            |n| format!("{:?}{:?}{}", n.kind, n.print, n.negated),
            |e| (e.label.clone(), e.negated),
            |e| (e.label.clone(), e.negated),
        ));
    }

    #[test]
    fn error_positions_are_reported() {
        for (text, needle) in [
            ("{ info Info; }", "expected `:`"),
            ("{ info: Info ", "found None"),
            ("{ a -x-> b; }", "undeclared node"),
            ("{ a: Info; a: Info; }", "declared twice"),
            ("{ a: Info; } trailing", "trailing input"),
            ("{ v: String = \"unterminated; }", "unterminated string"),
            ("{ d: Date = date(1990-13-01); }", "out of range"),
            ("{ d: Date = date(oops); }", "bad"),
        ] {
            let err = parse_pattern(text).unwrap_err();
            let message = err.to_string();
            assert!(
                message.contains(needle),
                "for {text:?} expected {needle:?} in {message:?}"
            );
        }
    }

    #[test]
    fn format_operation_renders_bracket_notation() {
        let (pattern, names) = parse_pattern(FIGURE4).unwrap();
        let na =
            crate::ops::NodeAddition::new(pattern, "Tag", [(Label::new("of"), names["other"])]);
        let text = format_operation(&crate::program::Operation::NodeAdd(na), &scheme());
        assert!(text.starts_with("NA[J, Tag"));
        assert!(text.contains("pattern {"));
        assert!(text.contains("links-to"));
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input() {
        let mut runner = proptest::test_runner::TestRunner::default();
        runner
            .run(
                &proptest::string::string_regex("[ -~\n]{0,80}").unwrap(),
                |text| {
                    let _ = parse_pattern(&text); // Ok or Err, never panic
                    Ok(())
                },
            )
            .unwrap();
        // And on near-miss inputs around valid syntax:
        let mut runner = proptest::test_runner::TestRunner::default();
        runner
            .run(
                &proptest::string::string_regex(
                    r#"\{( *[a-z]{1,3}[:;!=-]{1,3}[A-Za-z0-9"(){}]{0,8} *)*\}?"#,
                )
                .unwrap(),
                |text| {
                    let _ = parse_pattern(&text);
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn empty_pattern_parses() {
        let (pattern, names) = parse_pattern("{}").unwrap();
        assert_eq!(pattern.node_count(), 0);
        assert!(names.is_empty());
    }
}
