//! Determinism and zero-cost contracts of the matcher's tracing.
//!
//! The recorder is process-global, so every test that installs one
//! serializes on a local lock.

use good_core::gen::{random_instance, GenConfig};
use good_core::pattern::Pattern;
use good_core::prelude::*;
use std::sync::{Arc, Mutex};

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn bench_pattern() -> Pattern {
    let mut pattern = Pattern::new();
    let a = pattern.node("Info");
    let b = pattern.node("Info");
    pattern.edge(a, "links-to", b);
    pattern
}

/// Run one traced match and return the span tree.
fn traced_run(config: MatchConfig) -> good_trace::SpanTree {
    let db = random_instance(&GenConfig {
        infos: 300,
        seed: 17,
        ..GenConfig::default()
    });
    let pattern = bench_pattern();
    let collector = Arc::new(good_trace::Collector::new());
    let previous = good_trace::swap_recorder(Some(collector.clone()));
    let result = find_matchings_with(&pattern, &db, config);
    good_trace::swap_recorder(previous);
    result.expect("match succeeds");
    good_trace::SpanTree::build(&collector.take())
}

#[test]
fn sequential_seeded_runs_produce_byte_identical_span_trees() {
    let _guard = lock();
    let first = traced_run(MatchConfig::sequential()).render();
    let second = traced_run(MatchConfig::sequential()).render();
    assert!(!first.is_empty());
    assert!(first.contains("match/find"), "{first}");
    assert!(first.contains("match/plan"), "{first}");
    assert!(first.contains("match/roots"), "{first}");
    assert_eq!(first, second, "sequential trace must be deterministic");
}

#[test]
fn parallel_seeded_runs_produce_the_same_canonical_tree() {
    let _guard = lock();
    let config = MatchConfig {
        threads: 4,
        parallel_threshold: 0,
    };
    let mut first = traced_run(config);
    let mut second = traced_run(config);
    // Raw capture order depends on worker scheduling; the canonical
    // sort must erase it completely.
    first.canonicalize();
    second.canonicalize();
    let first = first.render();
    let second = second.render();
    assert!(first.contains("match/morsel"), "{first}");
    assert_eq!(
        first, second,
        "canonicalized parallel trace must be thread-schedule independent"
    );
}

#[test]
fn no_recorder_means_tracing_stays_disabled_and_captures_nothing() {
    let _guard = lock();
    good_trace::uninstall();
    assert!(!good_trace::enabled());
    let db = random_instance(&GenConfig {
        infos: 50,
        seed: 17,
        ..GenConfig::default()
    });
    find_matchings_with(&bench_pattern(), &db, MatchConfig::sequential()).expect("match succeeds");
    // Installing a collector *after* the run proves nothing was queued
    // anywhere: the capture starts empty.
    let collector = Arc::new(good_trace::Collector::new());
    let previous = good_trace::swap_recorder(Some(collector.clone()));
    good_trace::swap_recorder(previous);
    assert!(collector.take().is_empty());
    assert!(!good_trace::enabled());
}
