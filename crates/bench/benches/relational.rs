//! E6 — relational algebra natively vs via the GOOD simulation
//! (Section 4.3 T1), over relation cardinality. Reports the constant-
//! factor cost of faithfulness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use good_core::program::Env;
use good_core::value::{Value, ValueType};
use good_relational::algebra::{Predicate, RelExpr};
use good_relational::compile::Compiler;
use good_relational::encode::encode;
use good_relational::relation::{RelDatabase, RelSchema, Relation};
use std::time::Duration;

const CARDINALITIES: [usize; 3] = [50, 200, 800];

fn database(rows: usize) -> RelDatabase {
    let mut emp = Relation::new(RelSchema::new([
        ("name", ValueType::Str),
        ("dept", ValueType::Str),
        ("grade", ValueType::Int),
    ]));
    for index in 0..rows {
        emp.insert(vec![
            Value::str(format!("e{index}")),
            Value::str(format!("d{}", index % 10)),
            Value::int((index % 5) as i64),
        ])
        .expect("typed row");
    }
    let mut dept = Relation::new(RelSchema::new([
        ("dept", ValueType::Str),
        ("floor", ValueType::Int),
    ]));
    for index in 0..10 {
        dept.insert(vec![
            Value::str(format!("d{index}")),
            Value::int(index as i64),
        ])
        .expect("typed row");
    }
    let mut db = RelDatabase::new();
    db.add("emp", emp);
    db.add("dept", dept);
    db
}

fn query() -> RelExpr {
    RelExpr::base("emp")
        .join(RelExpr::base("dept"))
        .select(Predicate::AttrEqConst("grade".into(), Value::int(2)))
        .project(["name", "floor"])
}

fn bench_native(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6/native-algebra");
    for rows in CARDINALITIES {
        let db = database(rows);
        let expr = query();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| expr.eval(&db).expect("evaluates"));
        });
    }
    group.finish();
}

fn bench_good_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6/good-simulation");
    group.sample_size(10);
    for rows in CARDINALITIES {
        let db = database(rows);
        let expr = query();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter_batched(
                || encode(&db).expect("encodes"),
                |mut instance| {
                    let compiled = Compiler::new().compile(&expr, &db).expect("compiles");
                    compiled
                        .program
                        .apply(&mut instance, &mut Env::with_fuel(10_000_000))
                        .expect("runs")
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_encode_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6/encode-cost");
    for rows in CARDINALITIES {
        let db = database(rows);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| encode(&db).expect("encodes"));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_native, bench_good_simulation, bench_encode_cost
}
criterion_main!(benches);
