//! The version-management scenario: abstraction over shared link sets
//! (Figures 17–19) and the recursive Remove-Old-Versions method
//! (Figure 22).
//!
//! Run with `cargo run --example versioning`.

use good::hypermedia::{build_versions_instance, figures};
use good::model::error::Result;
use good::model::label::Label;
use good::model::method::{execute_call, MethodCall};
use good::model::pattern::Pattern;
use good::model::program::Env;

fn main() -> Result<()> {
    // Figure 17: a chain of four document versions.
    let (mut db, handles) = build_versions_instance();
    println!(
        "Figure 17: {} documents in a version chain, {} version nodes",
        handles.documents.len(),
        handles.versions.len()
    );

    // Figures 18–19: abstraction groups documents sharing link sets.
    for ab in figures::fig18_abstractions() {
        ab.apply(&mut db)?;
    }
    let contains = Label::new("contains");
    println!(
        "Figure 18: abstraction created {} Same-Info groups:",
        db.label_count(&"Same-Info".into())
    );
    for group in db.nodes_with_label(&"Same-Info".into()).collect::<Vec<_>>() {
        println!(
            "  group with {} members",
            db.targets(group, &contains).count()
        );
    }

    // Figure 22: Remove-Old-Versions, called on the newest document.
    let mut env = Env::new();
    env.register(figures::fig22_remove_old_versions());
    let mut pattern = Pattern::new();
    let info = pattern.node("Info");
    let version = pattern.node("Version");
    pattern.edge(version, "new", info);
    let never_old = pattern.negated_node("Version");
    pattern.negated_edge(never_old, "old", info);
    let call = MethodCall::new("R-O-V", pattern, info, []);
    execute_call(&call, &mut db, &mut env)?;

    println!(
        "\nFigure 22: after R-O-V, {} version nodes remain and the newest document {} survives",
        db.label_count(&"Version".into()),
        if db.contains_node(handles.documents[3]) {
            "indeed"
        } else {
            "does NOT"
        },
    );
    assert!(db.contains_node(handles.documents[3]));
    assert!(!db.contains_node(handles.documents[0]));
    db.validate()?;
    println!("instance validates — done");
    Ok(())
}
