//! Journal record framing: JSON lines, byte-accurate scanning, and the
//! torn-tail rules.
//!
//! A journal is a sequence of newline-terminated JSON records. The
//! scanner enforces the crash-recovery contract:
//!
//! * every intact record is **newline-terminated** — an unterminated
//!   final segment is a torn append, *even if the JSON happens to
//!   parse* (the record was never acknowledged, and appending after it
//!   without truncation would concatenate two records on one line);
//! * a final newline-terminated segment that fails to parse is also
//!   treated as torn (on real disks a crashed multi-sector write can
//!   persist the trailing sector without the leading one);
//! * a parse failure anywhere *earlier* is corruption, reported with
//!   its 1-based line number — never silently truncated;
//! * a **group commit** is a run of [`LogRecord::BatchApply`] records
//!   closed by one [`LogRecord::BatchCommit`] carrying the run length.
//!   The whole group becomes visible atomically: a scan that reaches
//!   end-of-journal (or a torn tail) with an unclosed group discards
//!   the *entire* group and truncates back to the byte before its
//!   first record — recovery always lands on a batch boundary, never
//!   mid-batch. A batch record interleaved with non-batch records, or
//!   a commit whose count disagrees with the run, is corruption.

use crate::vfs::VfsFile;
use crate::{Result, StoreError};
use good_core::instance::Instance;
use good_core::method::Method;
use good_core::program::Program;
use serde::{Deserialize, Serialize};

/// One journal record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LogRecord {
    /// A full snapshot of the instance — the first record of every
    /// journal generation.
    Snapshot(Box<Instance>),
    /// A method registration.
    RegisterMethod(Box<Method>),
    /// An applied program.
    Apply(Program),
    /// One program of a group commit. Not replayable on its own: it
    /// only takes effect when the group's [`LogRecord::BatchCommit`]
    /// is durable too.
    BatchApply(Program),
    /// The commit marker closing a group of `count` preceding
    /// [`LogRecord::BatchApply`] records. The group-commit writer
    /// fsyncs once, here, for the whole group.
    BatchCommit {
        /// Number of `BatchApply` records in the group.
        count: usize,
    },
}

/// The outcome of scanning a journal byte-for-byte.
#[derive(Debug)]
pub(crate) struct JournalScan {
    /// Intact records with their 1-based line numbers.
    pub records: Vec<(usize, LogRecord)>,
    /// True if a torn tail (crash mid-append) was detected.
    pub torn_tail: bool,
    /// Byte length of the intact prefix; a torn tail is truncated to
    /// this length before the journal accepts new appends.
    pub intact_len: u64,
}

/// Scan raw journal bytes into records, detecting a torn tail and
/// discarding any trailing uncommitted group (see the module docs).
///
/// `intact_len` only advances when a *committed unit* completes — a
/// self-committing record, or a batch group closed by its commit
/// marker — so a crash anywhere inside a group truncates the whole
/// group: recovery is all-or-nothing per batch.
pub(crate) fn scan(bytes: &[u8]) -> Result<JournalScan> {
    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut intact_len = 0u64;
    let mut offset = 0usize;
    let mut line = 0usize;
    // BatchApply records of the currently open (not yet committed)
    // group. While non-empty, `intact_len` is pinned at the byte before
    // the group's first record.
    let mut pending: Vec<(usize, LogRecord)> = Vec::new();
    while offset < bytes.len() {
        line += 1;
        let (segment, segment_end, terminated) =
            match bytes[offset..].iter().position(|&b| b == b'\n') {
                Some(i) => (&bytes[offset..offset + i], offset + i + 1, true),
                None => (&bytes[offset..], bytes.len(), false),
            };
        let is_final = segment_end == bytes.len();
        if segment.iter().all(u8::is_ascii_whitespace) {
            // Blank lines are tolerated but an unterminated whitespace
            // tail is still torn debris to truncate, and a blank line
            // inside an open group must not move the truncation point
            // past the group's start.
            if terminated {
                if pending.is_empty() {
                    intact_len = segment_end as u64;
                }
            } else {
                torn_tail = true;
            }
            offset = segment_end;
            continue;
        }
        if !terminated {
            torn_tail = true;
            break;
        }
        let parsed = std::str::from_utf8(segment)
            .map_err(|err| err.to_string())
            .and_then(|text| {
                serde_json::from_str::<LogRecord>(text).map_err(|err| err.to_string())
            });
        match parsed {
            Ok(LogRecord::BatchApply(program)) => {
                pending.push((line, LogRecord::BatchApply(program)));
            }
            Ok(LogRecord::BatchCommit { count }) => {
                if count != pending.len() {
                    return Err(StoreError::Corrupt {
                        line,
                        message: format!(
                            "batch commit expects {count} records, group has {}",
                            pending.len()
                        ),
                    });
                }
                records.append(&mut pending);
                records.push((line, LogRecord::BatchCommit { count }));
                intact_len = segment_end as u64;
            }
            Ok(record) => {
                if !pending.is_empty() {
                    // Prefix-only tearing cannot interleave a
                    // self-committing record into an open group; this
                    // is a writer bug or external tampering.
                    return Err(StoreError::Corrupt {
                        line,
                        message: "non-batch record inside an uncommitted group".into(),
                    });
                }
                records.push((line, record));
                intact_len = segment_end as u64;
            }
            Err(err) => {
                if is_final {
                    torn_tail = true;
                } else {
                    return Err(StoreError::Corrupt {
                        line,
                        message: err.to_string(),
                    });
                }
            }
        }
        offset = segment_end;
    }
    if !pending.is_empty() {
        // The journal ends inside a group: the commit marker never
        // became durable, so the whole group is discarded (a torn
        // tail back to the group's first byte).
        torn_tail = true;
    }
    Ok(JournalScan {
        records,
        torn_tail,
        intact_len,
    })
}

/// Serialize `record` as one newline-terminated JSON line and append
/// it **without syncing** — the group-commit building block. A
/// serialization failure happens before any byte reaches the file; an
/// I/O failure may leave a torn record behind (the caller decides
/// whether to poison).
pub(crate) fn write_record(file: &mut dyn VfsFile, record: &LogRecord) -> Result<()> {
    let mut line = serde_json::to_string(record).map_err(|err| StoreError::Corrupt {
        line: 0,
        message: err.to_string(),
    })?;
    line.push('\n');
    let mut append_span = good_trace::span("store", "store/append");
    append_span.arg("bytes", line.len());
    file.append(line.as_bytes())?;
    Ok(())
}

/// fdatasync the journal file — one call per committed unit, however
/// many records it spans. Always-on fsync latency feeds the live
/// `store/fsync_ns` histogram (served by the server's stats frame);
/// the `store/fsync` span additionally captures it when tracing.
pub(crate) fn sync_file(file: &mut dyn VfsFile) -> Result<()> {
    static LIVE_FSYNC_NS: good_trace::LiveHistogram =
        good_trace::LiveHistogram::new("store/fsync_ns");
    let _fsync_span = good_trace::span("store", "store/fsync");
    let started = std::time::Instant::now();
    file.sync_data()?;
    LIVE_FSYNC_NS.observe(started.elapsed().as_nanos() as u64);
    Ok(())
}

/// Append one self-committing record: [`write_record`] + [`sync_file`].
pub(crate) fn append_record(file: &mut dyn VfsFile, record: &LogRecord) -> Result<()> {
    write_record(file, record)?;
    sync_file(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use good_core::scheme::Scheme;

    fn snapshot_line() -> String {
        let db = Instance::new(Scheme::new());
        let mut line =
            serde_json::to_string(&LogRecord::Snapshot(Box::new(db))).expect("serialize");
        line.push('\n');
        line
    }

    #[test]
    fn clean_journal_scans_fully() {
        let text = snapshot_line();
        let scan = scan(text.as_bytes()).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(!scan.torn_tail);
        assert_eq!(scan.intact_len, text.len() as u64);
    }

    #[test]
    fn unterminated_parseable_tail_is_torn() {
        // The torn write happens to stop exactly at the closing brace:
        // the JSON parses, but the missing newline marks it torn.
        let mut text = snapshot_line();
        let full = text.clone();
        text.push_str(full.trim_end());
        let scan = scan(text.as_bytes()).unwrap();
        assert_eq!(scan.records.len(), 1, "the tail must not be replayed");
        assert!(scan.torn_tail);
        assert_eq!(scan.intact_len, full.len() as u64);
    }

    #[test]
    fn unterminated_garbage_tail_is_torn() {
        let mut text = snapshot_line();
        let intact = text.len();
        text.push_str("{\"Apply\":{\"ops\":[");
        let scan = scan(text.as_bytes()).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_tail);
        assert_eq!(scan.intact_len, intact as u64);
    }

    #[test]
    fn terminated_garbage_final_line_is_torn_not_corrupt() {
        let mut text = snapshot_line();
        let intact = text.len();
        text.push_str("sector-salad}\n");
        let scan = scan(text.as_bytes()).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.intact_len, intact as u64);
    }

    #[test]
    fn garbage_before_the_end_is_corruption() {
        let mut text = snapshot_line();
        text.push_str("garbage\n");
        text.push_str(&snapshot_line());
        match scan(text.as_bytes()) {
            Err(StoreError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn blank_lines_are_skipped_but_counted() {
        let mut text = snapshot_line();
        text.push('\n');
        text.push_str("garbage\n");
        text.push_str(&snapshot_line());
        match scan(text.as_bytes()) {
            Err(StoreError::Corrupt { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    fn record_line(record: &LogRecord) -> String {
        let mut line = serde_json::to_string(record).expect("serialize");
        line.push('\n');
        line
    }

    fn batch_apply_line() -> String {
        record_line(&LogRecord::BatchApply(Program::from_ops(Vec::new())))
    }

    #[test]
    fn committed_group_scans_fully() {
        let mut text = snapshot_line();
        text.push_str(&batch_apply_line());
        text.push_str(&batch_apply_line());
        text.push_str(&record_line(&LogRecord::BatchCommit { count: 2 }));
        let scan = scan(text.as_bytes()).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert!(!scan.torn_tail);
        assert_eq!(scan.intact_len, text.len() as u64);
    }

    #[test]
    fn unclosed_group_is_discarded_back_to_its_start() {
        let mut text = snapshot_line();
        let group_start = text.len();
        text.push_str(&batch_apply_line());
        text.push_str(&batch_apply_line());
        // Crash before the commit marker: every line is intact and
        // terminated, but the group never committed.
        let scan = scan(text.as_bytes()).unwrap();
        assert_eq!(scan.records.len(), 1, "no batch record may replay");
        assert!(scan.torn_tail);
        assert_eq!(scan.intact_len, group_start as u64);
    }

    #[test]
    fn torn_commit_marker_discards_the_whole_group() {
        let mut text = snapshot_line();
        let group_start = text.len();
        text.push_str(&batch_apply_line());
        text.push_str("{\"BatchCommit\":{\"cou");
        let scan = scan(text.as_bytes()).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_tail);
        assert_eq!(scan.intact_len, group_start as u64);
    }

    #[test]
    fn blank_line_inside_group_does_not_advance_intact_len() {
        let mut text = snapshot_line();
        let group_start = text.len();
        text.push_str(&batch_apply_line());
        text.push('\n');
        let scan = scan(text.as_bytes()).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.intact_len, group_start as u64);
    }

    #[test]
    fn commit_count_mismatch_is_corruption() {
        let mut text = snapshot_line();
        text.push_str(&batch_apply_line());
        text.push_str(&record_line(&LogRecord::BatchCommit { count: 2 }));
        text.push_str(&snapshot_line());
        match scan(text.as_bytes()) {
            Err(StoreError::Corrupt { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn non_batch_record_inside_group_is_corruption() {
        let mut text = snapshot_line();
        text.push_str(&batch_apply_line());
        text.push_str(&record_line(&LogRecord::Apply(Program::from_ops(
            Vec::new(),
        ))));
        text.push_str(&record_line(&LogRecord::BatchCommit { count: 1 }));
        match scan(text.as_bytes()) {
            Err(StoreError::Corrupt { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("uncommitted group"), "{message}");
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }
}
