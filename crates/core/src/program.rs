//! Programs — sequences of GOOD operations — and the execution
//! environment.
//!
//! "In GOOD, basic operations are applied in a predetermined order
//! (possibly within method executions), and, importantly, work on every
//! matching of the pattern, in parallel" (Section 5). [`Program`] is
//! that predetermined order; [`Env`] carries the method registry and a
//! fuel bound that makes divergent recursion detectable (the full
//! language simulates Turing machines, so termination cannot be checked
//! statically).

use crate::error::{GoodError, Result};
use crate::instance::Instance;
use crate::method::{execute_call, Method, MethodCall};
use crate::ops::{Abstraction, EdgeAddition, EdgeDeletion, NodeAddition, NodeDeletion, OpReport};
use crate::pattern::Pattern;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One step of a GOOD program: a basic operation or a method call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Operation {
    /// Node addition (`NA`).
    NodeAdd(NodeAddition),
    /// Edge addition (`EA`).
    EdgeAdd(EdgeAddition),
    /// Node deletion (`ND`).
    NodeDel(NodeDeletion),
    /// Edge deletion (`ED`).
    EdgeDel(EdgeDeletion),
    /// Abstraction (`AB`).
    Abstract(Abstraction),
    /// Method call (`MC`).
    Call(MethodCall),
}

impl Operation {
    /// The operation's source pattern.
    pub fn pattern(&self) -> &Pattern {
        match self {
            Operation::NodeAdd(op) => &op.pattern,
            Operation::EdgeAdd(op) => &op.pattern,
            Operation::NodeDel(op) => &op.pattern,
            Operation::EdgeDel(op) => &op.pattern,
            Operation::Abstract(op) => &op.pattern,
            Operation::Call(op) => &op.pattern,
        }
    }

    /// Mutable access to the source pattern (used by the method
    /// machinery to graft frame nodes).
    pub(crate) fn pattern_mut(&mut self) -> &mut Pattern {
        match self {
            Operation::NodeAdd(op) => &mut op.pattern,
            Operation::EdgeAdd(op) => &mut op.pattern,
            Operation::NodeDel(op) => &mut op.pattern,
            Operation::EdgeDel(op) => &mut op.pattern,
            Operation::Abstract(op) => &mut op.pattern,
            Operation::Call(op) => &mut op.pattern,
        }
    }

    /// A short mnemonic, as in the paper (`NA`, `EA`, `ND`, `ED`, `AB`,
    /// `MC`).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Operation::NodeAdd(_) => "NA",
            Operation::EdgeAdd(_) => "EA",
            Operation::NodeDel(_) => "ND",
            Operation::EdgeDel(_) => "ED",
            Operation::Abstract(_) => "AB",
            Operation::Call(_) => "MC",
        }
    }

    /// Apply this operation to `db` within `env`.
    pub fn apply(&self, db: &mut Instance, env: &mut Env) -> Result<OpReport> {
        env.burn_fuel()?;
        // Static span names for the five basic ops keep the disabled
        // path allocation-free; the method call's dynamic name is built
        // only when a recorder is installed.
        let mut op_span = match self {
            Operation::NodeAdd(_) => good_trace::span("op", "op/NA"),
            Operation::EdgeAdd(_) => good_trace::span("op", "op/EA"),
            Operation::NodeDel(_) => good_trace::span("op", "op/ND"),
            Operation::EdgeDel(_) => good_trace::span("op", "op/ED"),
            Operation::Abstract(_) => good_trace::span("op", "op/AB"),
            Operation::Call(op) => {
                if good_trace::enabled() {
                    good_trace::span("op", &format!("op/MC:{}", op.method))
                } else {
                    good_trace::SpanGuard::disabled()
                }
            }
        };
        let result = match self {
            Operation::NodeAdd(op) => op.apply(db),
            Operation::EdgeAdd(op) => op.apply(db),
            Operation::NodeDel(op) => op.apply(db),
            Operation::EdgeDel(op) => op.apply(db),
            Operation::Abstract(op) => op.apply(db),
            Operation::Call(op) => execute_call(op, db, env),
        };
        if op_span.is_live() {
            good_trace::counter_add("op.applied", 1);
            if let Ok(report) = &result {
                op_span.arg("matchings", report.matchings);
                op_span.arg("nodes_added", report.created_nodes.len());
                op_span.arg("edges_added", report.edges_added);
                op_span.arg("nodes_deleted", report.nodes_deleted);
                op_span.arg("edges_deleted", report.edges_deleted);
            }
        }
        result
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::NodeAdd(op) => write!(
                f,
                "NA[{} node(s), add {} with {} bold edge(s)]",
                op.pattern.node_count(),
                op.label,
                op.edges.len()
            ),
            Operation::EdgeAdd(op) => write!(
                f,
                "EA[{} node(s), add {} bold edge(s)]",
                op.pattern.node_count(),
                op.edges.len()
            ),
            Operation::NodeDel(op) => {
                write!(f, "ND[{} node(s)]", op.pattern.node_count())
            }
            Operation::EdgeDel(op) => write!(
                f,
                "ED[{} node(s), delete {} edge(s)]",
                op.pattern.node_count(),
                op.edges.len()
            ),
            Operation::Abstract(op) => write!(
                f,
                "AB[{} node(s), {} per {} via {}]",
                op.pattern.node_count(),
                op.group_label,
                op.key_edge,
                op.member_edge
            ),
            Operation::Call(op) => write!(f, "MC[{}]", op.method),
        }
    }
}

/// One entry of the execution scope stack: which program op or method
/// call the engine is currently inside. Maintained by [`Program::apply`]
/// and the method machinery so fuel exhaustion can say *where* the
/// budget ran out.
#[derive(Debug, Clone)]
enum ScopeEntry {
    /// Inside a method call of the named method.
    Method(String),
    /// Inside a program or method-body operation.
    Op {
        index: usize,
        mnemonic: &'static str,
    },
}

/// The execution environment: registered methods plus a fuel bound.
#[derive(Debug, Clone)]
pub struct Env {
    methods: HashMap<String, Method>,
    fuel: u64,
    budget: u64,
    frame_counter: u64,
    scope: Vec<ScopeEntry>,
}

/// Default fuel: generous for any reasonable program, small enough that
/// a divergent recursion fails in well under a second.
pub const DEFAULT_FUEL: u64 = 100_000;

impl Default for Env {
    fn default() -> Self {
        Env::with_fuel(DEFAULT_FUEL)
    }
}

impl Env {
    /// An environment with the default fuel and no methods.
    pub fn new() -> Self {
        Env::default()
    }

    /// An environment with an explicit fuel budget.
    pub fn with_fuel(fuel: u64) -> Self {
        Env {
            methods: HashMap::new(),
            fuel,
            budget: fuel,
            frame_counter: 0,
            scope: Vec::new(),
        }
    }

    /// Register a method under its specification name. Replaces any
    /// previous definition with the same name.
    pub fn register(&mut self, method: Method) {
        self.methods.insert(method.spec.name.clone(), method);
    }

    /// Look up a method by name.
    pub fn method(&self, name: &str) -> Result<&Method> {
        self.methods
            .get(name)
            .ok_or_else(|| GoodError::UnknownMethod(name.to_string()))
    }

    /// Consume one unit of fuel. Public so that macro layers and system
    /// methods built outside this crate can participate in the fuel
    /// accounting.
    pub fn burn_fuel(&mut self) -> Result<()> {
        if self.fuel == 0 {
            return Err(GoodError::OutOfFuel {
                budget: self.budget,
                context: self.scope_context(),
            });
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Human description of the current execution scope — the method
    /// call stack interleaved with op indices, outermost first, e.g.
    /// `op 2 (MC) > method Update > op 1 (EA)`. Empty outside any
    /// program or method.
    pub fn scope_context(&self) -> String {
        self.scope
            .iter()
            .map(|entry| match entry {
                ScopeEntry::Method(name) => format!("method {name}"),
                ScopeEntry::Op { index, mnemonic } => format!("op {index} ({mnemonic})"),
            })
            .collect::<Vec<_>>()
            .join(" > ")
    }

    /// Current method recursion depth (number of method frames on the
    /// scope stack).
    pub fn method_depth(&self) -> usize {
        self.scope
            .iter()
            .filter(|entry| matches!(entry, ScopeEntry::Method(_)))
            .count()
    }

    pub(crate) fn enter_op(&mut self, index: usize, mnemonic: &'static str) {
        self.scope.push(ScopeEntry::Op { index, mnemonic });
    }

    pub(crate) fn exit_op(&mut self) {
        debug_assert!(matches!(self.scope.last(), Some(ScopeEntry::Op { .. })));
        self.scope.pop();
    }

    pub(crate) fn enter_method(&mut self, name: &str) {
        self.scope.push(ScopeEntry::Method(name.to_string()));
    }

    pub(crate) fn exit_method(&mut self) {
        debug_assert!(matches!(self.scope.last(), Some(ScopeEntry::Method(_))));
        self.scope.pop();
    }

    /// Remaining fuel (for diagnostics).
    pub fn fuel_left(&self) -> u64 {
        self.fuel
    }

    /// Reset fuel to the original budget.
    pub fn refuel(&mut self) {
        self.fuel = self.budget;
    }

    /// A fresh, unique frame counter value for method-call frame labels.
    pub(crate) fn next_frame_id(&mut self) -> u64 {
        let id = self.frame_counter;
        self.frame_counter += 1;
        id
    }
}

/// A sequence of operations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Program {
    ops: Vec<Operation>,
}

impl Program {
    /// The empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Build from operations.
    pub fn from_ops(ops: impl IntoIterator<Item = Operation>) -> Self {
        Program {
            ops: ops.into_iter().collect(),
        }
    }

    /// Append an operation.
    pub fn push(&mut self, op: Operation) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The operations in order.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the program has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Run all operations in order, merging their reports. Stops at the
    /// first error (the paper treats a failing edge addition as an
    /// undefined result for the whole program).
    pub fn apply(&self, db: &mut Instance, env: &mut Env) -> Result<OpReport> {
        let mut total = OpReport::default();
        for (index, op) in self.ops.iter().enumerate() {
            env.enter_op(index, op.mnemonic());
            let result = op.apply(db, env);
            env.exit_op();
            total.absorb(&result?);
        }
        Ok(total)
    }

    /// PROFILE variant of [`Program::apply`]: runs the program with a
    /// private span collector spliced in (teeing to any recorder that
    /// was already installed, which is restored afterwards) and returns
    /// the per-op cost tree alongside the report. Works whether or not
    /// tracing was enabled before the call.
    pub fn apply_profiled(&self, db: &mut Instance, env: &mut Env) -> Result<(OpReport, Profile)> {
        use std::sync::Arc;
        let collector = Arc::new(good_trace::Collector::new());
        let previous = good_trace::current_recorder();
        let recorder: Arc<dyn good_trace::Recorder> = match &previous {
            Some(outer) => Arc::new(good_trace::Tee(collector.clone(), outer.clone())),
            None => collector.clone(),
        };
        good_trace::swap_recorder(Some(recorder));
        let result = self.apply(db, env);
        good_trace::swap_recorder(previous);
        let report = result?;
        let tree = good_trace::SpanTree::build(&collector.take());
        Ok((report, Profile { tree }))
    }

    /// Run the program in **query mode** (Section 3's "whether this
    /// latter database graph is only a temporary entity or actually
    /// replaces the original database graph depends on whether the
    /// transformation represents, e.g., a query or an update"): the
    /// program is applied to a copy, the original stays untouched, and
    /// the resulting temporary instance is returned.
    pub fn apply_as_query(&self, db: &Instance, env: &mut Env) -> Result<(Instance, OpReport)> {
        let mut temporary = db.clone();
        let report = self.apply(&mut temporary, env)?;
        Ok((temporary, report))
    }
}

/// The cost tree captured by [`Program::apply_profiled`]: every span
/// the program emitted (op, matcher, method, and — when the program
/// runs inside a store — journal spans), nested and timed.
#[derive(Debug, Clone)]
pub struct Profile {
    /// The captured span forest.
    pub tree: good_trace::SpanTree,
}

impl Profile {
    /// Indented per-op cost report with durations.
    pub fn render(&self) -> String {
        self.tree.render_with_times()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (index, op) in self.ops.iter().enumerate() {
            writeln!(f, "{:>3}. {op}", index + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::NodeAddition;
    use crate::scheme::SchemeBuilder;
    use crate::value::ValueType;

    fn db() -> Instance {
        let scheme = SchemeBuilder::new()
            .object("Info")
            .printable("String", ValueType::Str)
            .functional("Info", "name", "String")
            .build();
        let mut db = Instance::new(scheme);
        let info = db.add_object("Info").unwrap();
        let s = db.add_printable("String", "x").unwrap();
        db.add_edge(info, "name", s).unwrap();
        db
    }

    #[test]
    fn program_runs_operations_in_order() {
        let mut db = db();
        let mut env = Env::new();
        let mut program = Program::new();
        // Tag every Info, then tag every Tag.
        let mut p = Pattern::new();
        let info = p.node("Info");
        program.push(Operation::NodeAdd(NodeAddition::new(
            p,
            "Tag",
            [(crate::label::Label::new("of"), info)],
        )));
        let mut p2 = Pattern::new();
        let tag = p2.node("Tag");
        program.push(Operation::NodeAdd(NodeAddition::new(
            p2,
            "Meta",
            [(crate::label::Label::new("over"), tag)],
        )));
        let report = program.apply(&mut db, &mut env).unwrap();
        assert_eq!(report.created_nodes.len(), 2);
        assert_eq!(db.label_count(&"Tag".into()), 1);
        assert_eq!(db.label_count(&"Meta".into()), 1);
    }

    #[test]
    fn query_mode_leaves_the_original_untouched() {
        let original = db();
        let mut env = Env::new();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let program = Program::from_ops([Operation::NodeAdd(NodeAddition::new(
            p,
            "Answer",
            [(crate::label::Label::new("of"), info)],
        ))]);
        let (result, report) = program.apply_as_query(&original, &mut env).unwrap();
        assert_eq!(report.created_nodes.len(), 1);
        assert_eq!(result.label_count(&"Answer".into()), 1);
        // The original knows nothing of Answer — not even its label.
        assert_eq!(original.label_count(&"Answer".into()), 0);
        assert!(!original.scheme().is_object_label(&"Answer".into()));
    }

    #[test]
    fn fuel_exhaustion_reported() {
        let mut db = db();
        let mut env = Env::with_fuel(1);
        let program = Program::from_ops([
            Operation::NodeAdd(NodeAddition::new(Pattern::new(), "A", [])),
            Operation::NodeAdd(NodeAddition::new(Pattern::new(), "B", [])),
        ]);
        let err = program.apply(&mut db, &mut env).unwrap_err();
        assert!(matches!(err, GoodError::OutOfFuel { budget: 1, .. }));
        // The error names the op whose application exhausted the budget.
        assert!(
            err.to_string().contains("op 1 (NA)"),
            "fuel error should carry scope context: {err}"
        );
        env.refuel();
        assert_eq!(env.fuel_left(), 1);
    }

    #[test]
    fn scope_context_unwinds_cleanly() {
        let mut db = db();
        let mut env = Env::new();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let program = Program::from_ops([Operation::NodeAdd(NodeAddition::new(
            p,
            "Tag",
            [(crate::label::Label::new("of"), info)],
        ))]);
        program.apply(&mut db, &mut env).unwrap();
        assert_eq!(env.scope_context(), "");
        assert_eq!(env.method_depth(), 0);
    }

    #[test]
    fn profiled_apply_captures_op_spans() {
        let mut db = db();
        let mut env = Env::new();
        let mut p = Pattern::new();
        let info = p.node("Info");
        let program = Program::from_ops([Operation::NodeAdd(NodeAddition::new(
            p,
            "Tag",
            [(crate::label::Label::new("of"), info)],
        ))]);
        let (report, profile) = program.apply_profiled(&mut db, &mut env).unwrap();
        assert_eq!(report.created_nodes.len(), 1);
        let rendered = profile.render();
        assert!(rendered.contains("op/NA"), "{rendered}");
        assert!(rendered.contains("match/find"), "{rendered}");
        // The splice is restored: tracing is off again afterwards.
        assert!(!good_trace::enabled());
    }

    #[test]
    fn unknown_method_lookup() {
        let env = Env::new();
        assert!(matches!(
            env.method("nope"),
            Err(GoodError::UnknownMethod(_))
        ));
    }

    #[test]
    fn display_lists_steps() {
        let program = Program::from_ops([Operation::NodeAdd(NodeAddition::new(
            Pattern::new(),
            "A",
            [],
        ))]);
        let text = program.to_string();
        assert!(text.contains("1. NA["));
    }

    #[test]
    fn empty_program_is_noop() {
        let mut instance = db();
        let before = instance.node_count();
        Program::new()
            .apply(&mut instance, &mut Env::new())
            .unwrap();
        assert_eq!(instance.node_count(), before);
    }
}
