//! Relations: schemas, typed tuples, and databases of named relations.
//!
//! Set semantics throughout — tuples are stored in a `BTreeSet`, which
//! also gives deterministic iteration for tests and display.

use good_core::error::{GoodError, Result};
use good_core::value::{Value, ValueType};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A relation schema: an ordered list of `(attribute, domain)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelSchema {
    attrs: Vec<(String, ValueType)>,
}

impl RelSchema {
    /// Build a schema; attribute names must be distinct.
    ///
    /// # Panics
    /// Panics on duplicate attribute names — a schema is authored, not
    /// computed.
    pub fn new(attrs: impl IntoIterator<Item = (impl Into<String>, ValueType)>) -> Self {
        let attrs: Vec<(String, ValueType)> = attrs
            .into_iter()
            .map(|(name, ty)| (name.into(), ty))
            .collect();
        let mut seen = BTreeSet::new();
        for (name, _) in &attrs {
            assert!(seen.insert(name.clone()), "duplicate attribute {name}");
        }
        RelSchema { attrs }
    }

    /// The attributes in order.
    pub fn attrs(&self) -> &[(String, ValueType)] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Position of an attribute.
    pub fn position(&self, attr: &str) -> Option<usize> {
        self.attrs.iter().position(|(name, _)| name == attr)
    }

    /// Domain of an attribute.
    pub fn domain(&self, attr: &str) -> Option<ValueType> {
        self.attrs
            .iter()
            .find(|(name, _)| name == attr)
            .map(|(_, ty)| *ty)
    }

    /// Attribute names shared with `other`.
    pub fn common_attrs(&self, other: &RelSchema) -> Vec<String> {
        self.attrs
            .iter()
            .filter(|(name, _)| other.position(name).is_some())
            .map(|(name, _)| name.clone())
            .collect()
    }
}

/// A tuple: values in schema order.
pub type Tuple = Vec<Value>;

/// A relation: a schema plus a set of tuples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    schema: RelSchema,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// An empty relation over `schema`.
    pub fn new(schema: RelSchema) -> Self {
        Relation {
            schema,
            tuples: BTreeSet::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// Insert a tuple, checking arity and domains.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.len() != self.schema.arity() {
            return Err(GoodError::InvariantViolation(format!(
                "tuple arity {} != schema arity {}",
                tuple.len(),
                self.schema.arity()
            )));
        }
        for (value, (attr, ty)) in tuple.iter().zip(self.schema.attrs()) {
            if value.value_type() != *ty {
                return Err(GoodError::ValueTypeMismatch {
                    label: attr.as_str().into(),
                    expected: *ty,
                    value: value.clone(),
                });
            }
        }
        Ok(self.tuples.insert(tuple))
    }

    /// Insert many tuples.
    pub fn extend(&mut self, tuples: impl IntoIterator<Item = Tuple>) -> Result<()> {
        for tuple in tuples {
            self.insert(tuple)?;
        }
        Ok(())
    }

    /// The tuples, in deterministic order.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// The value of `attr` in `tuple`.
    pub fn value<'t>(&self, tuple: &'t Tuple, attr: &str) -> Option<&'t Value> {
        self.schema.position(attr).map(|pos| &tuple[pos])
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self
            .schema
            .attrs()
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        writeln!(f, "| {} |", names.join(" | "))?;
        for tuple in &self.tuples {
            let cells: Vec<String> = tuple.iter().map(Value::to_string).collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// A database: named relations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelDatabase {
    relations: BTreeMap<String, Relation>,
}

impl RelDatabase {
    /// An empty database.
    pub fn new() -> Self {
        RelDatabase::default()
    }

    /// Add (or replace) a relation under `name`.
    pub fn add(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations.insert(name.into(), relation);
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| GoodError::InvariantViolation(format!("unknown relation {name}")))
    }

    /// Iterate over `(name, relation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Relation)> {
        self.relations.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn employees() -> Relation {
        let mut r = Relation::new(RelSchema::new([
            ("name", ValueType::Str),
            ("dept", ValueType::Str),
            ("salary", ValueType::Int),
        ]));
        r.extend([
            vec![Value::str("ann"), Value::str("db"), Value::int(90)],
            vec![Value::str("bob"), Value::str("os"), Value::int(80)],
        ])
        .unwrap();
        r
    }

    #[test]
    fn schema_queries() {
        let r = employees();
        assert_eq!(r.schema().arity(), 3);
        assert_eq!(r.schema().position("dept"), Some(1));
        assert_eq!(r.schema().domain("salary"), Some(ValueType::Int));
        assert_eq!(r.schema().domain("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attrs_rejected() {
        RelSchema::new([("a", ValueType::Int), ("a", ValueType::Str)]);
    }

    #[test]
    fn set_semantics() {
        let mut r = employees();
        let dup = vec![Value::str("ann"), Value::str("db"), Value::int(90)];
        assert!(!r.insert(dup).unwrap());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn arity_and_type_checked() {
        let mut r = employees();
        assert!(r.insert(vec![Value::str("x")]).is_err());
        assert!(r
            .insert(vec![Value::str("x"), Value::str("y"), Value::str("oops")])
            .is_err());
    }

    #[test]
    fn value_by_attr() {
        let r = employees();
        let tuple = r.tuples().next().unwrap();
        assert_eq!(r.value(tuple, "name"), Some(&Value::str("ann")));
        assert_eq!(r.value(tuple, "nope"), None);
    }

    #[test]
    fn database_lookup() {
        let mut db = RelDatabase::new();
        db.add("emp", employees());
        assert_eq!(db.get("emp").unwrap().len(), 2);
        assert!(db.get("nope").is_err());
    }

    #[test]
    fn display_renders_rows() {
        let text = employees().to_string();
        assert!(text.contains("| name | dept | salary |"));
        assert!(text.contains("ann"));
    }

    #[test]
    fn common_attrs() {
        let a = RelSchema::new([("x", ValueType::Int), ("y", ValueType::Str)]);
        let b = RelSchema::new([("y", ValueType::Str), ("z", ValueType::Int)]);
        assert_eq!(a.common_attrs(&b), vec!["y".to_string()]);
    }
}
