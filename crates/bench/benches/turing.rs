//! E9 — per-step cost of the GOOD Turing machine simulation vs the
//! direct interpreter, over input length (binary increment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use good_turing::machine::binary_increment;
use good_turing::run_in_good;
use std::time::Duration;

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9/interpreter");
    let machine = binary_increment();
    for bits in [4usize, 8, 16] {
        let input = "1".repeat(bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| machine.run(&input, 100_000));
        });
    }
    group.finish();
}

fn bench_good_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9/good-simulation");
    group.sample_size(10);
    let machine = binary_increment();
    for bits in [4usize, 8, 16] {
        let input = "1".repeat(bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| run_in_good(&machine, &input, 10_000_000).expect("halts"));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_interpreter, bench_good_simulation
}
criterion_main!(benches);
