//! Checked-in regression corpus of GOODQL query strings, mirroring
//! `crates/server/tests/corpus/` for the wire protocol: every `ok-*`
//! file must parse (and round-trip through the canonical printer),
//! every `err-*` file must be rejected with an error, and nothing may
//! panic. Regenerate with
//!
//! ```text
//! UPDATE_CORPUS=1 cargo test -p good-query --test corpus
//! ```
//!
//! and commit the diff. The corpus freezes today's accept/reject
//! boundary: a parser change that silently starts accepting garbage
//! (or rejecting valid queries) shows up as a red test, not a silent
//! drift.

use good_query::gen::random_query;
use good_query::parser::{parse_query, MAX_QUERY_LEN};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// The corpus contents, as `(name, query text)`. Regenerated
/// byte-for-byte by `UPDATE_CORPUS=1`.
fn corpus_entries() -> Vec<(String, String)> {
    let mut entries: Vec<(String, String)> = Vec::new();

    // Hand-picked valid queries covering every grammar production.
    let ok: &[&str] = &[
        "MATCH (a:Info) RETURN a",
        "MATCH (a:Info)-[:links-to]->(b:Info) RETURN a, b",
        "MATCH (a:Info)-[:name]->(n:String) RETURN n",
        "MATCH (a:Info)-[:name]->(n:String = \"info-3\") RETURN a",
        "MATCH (a:Info)-[:links-to*]->(b:Info) RETURN a, b",
        "MATCH (a:Info)-[:links-to*0..]->(b:Info) RETURN DISTINCT b",
        "MATCH (a:Info)-[:links-to*2..4]->(b:Info) RETURN a, b LIMIT 5",
        "MATCH (a:Info)-[:links-to*3]->(b:Info) RETURN a",
        "MATCH (a:Info)-[:rec-links-to*1..2]->(a) RETURN a",
        "MATCH (a:Info)-[:created]->(d:Date) WHERE d < date(1990-01-08) RETURN a",
        "MATCH (a:Info)-[:name]->(n:String) WHERE n CONTAINS \"inf\" AND n <> \"info-0\" RETURN n",
        "MATCH (a:Info)-[:name]->(n:String) WHERE n STARTS WITH \"info-\" RETURN a, n",
        "MATCH (a:Info)-[:created]->(d:Date) WHERE d BETWEEN date(1990-01-02) AND date(1990-01-09) RETURN d",
        "MATCH (a:Info)-[:name]->(n:String) WHERE n IN [\"info-1\", \"info-2\"] RETURN a",
        "MATCH (a:Info), (b:Info) WHERE NOT (a)-[:links-to]->(b) RETURN a, b",
        "MATCH (a:Info)-[:links-to]->(b:Info), (b)-[:name]->(n:String) RETURN a, n",
        "match (a:info) return a",
        "  MATCH   (a:Info)   RETURN   a  ",
        "MATCH (a:Info)-[:name]->(n:String = \"with \\\"quotes\\\" and \\\\ back\") RETURN n",
        "MATCH (a:Info) RETURN a LIMIT 0",
    ];
    for (index, text) in ok.iter().enumerate() {
        entries.push((format!("ok-{index:02}.txt"), (*text).to_string()));
    }
    // A band of generated queries, pinned by seed: the generator's
    // whole surface stays parseable forever.
    for seed in 0..10u64 {
        entries.push((
            format!("ok-gen-{seed:02}.txt"),
            random_query(seed).to_string(),
        ));
    }

    // Rejected inputs: syntax errors, structural violations, limits.
    let err: &[(&str, &str)] = &[
        ("empty", ""),
        ("only-whitespace", "   \n\t  "),
        ("no-match-keyword", "SELECT * FROM infos"),
        ("unclosed-node", "MATCH (a:Info RETURN a"),
        ("missing-return", "MATCH (a:Info)"),
        ("missing-return-vars", "MATCH (a:Info) RETURN"),
        ("bad-arrow", "MATCH (a:Info)-[:links-to]>(b:Info) RETURN a"),
        ("reserved-variable", "MATCH (match:Info) RETURN match"),
        (
            "bad-path-bounds",
            "MATCH (a:Info)-[:links-to*1..2..3]->(b:Info) RETURN a",
        ),
        (
            "path-under-not",
            "MATCH (a:Info), (b:Info) WHERE NOT (a)-[:links-to*]->(b) RETURN a",
        ),
        (
            "unterminated-string",
            "MATCH (a:Info)-[:name]->(n:String = \"oops) RETURN n",
        ),
        (
            "bad-escape",
            "MATCH (a:Info)-[:name]->(n:String = \"\\q\") RETURN n",
        ),
        (
            "bad-date",
            "MATCH (a:Info)-[:created]->(d:Date) WHERE d = date(1990-13-40) RETURN a",
        ),
        ("trailing-garbage", "MATCH (a:Info) RETURN a extra"),
        ("double-where", "MATCH (a:Info) WHERE WHERE RETURN a"),
        (
            "empty-in-list",
            "MATCH (a:Info)-[:name]->(n:String) WHERE n IN [] RETURN a",
        ),
        ("limit-no-number", "MATCH (a:Info) RETURN a LIMIT"),
        ("lone-edge", "-[:links-to]->"),
    ];
    for (name, text) in err {
        entries.push((format!("err-{name}.txt"), (*text).to_string()));
    }
    entries.push((
        "err-oversized.txt".to_string(),
        format!("MATCH (a:Info) RETURN a{}", " ".repeat(MAX_QUERY_LEN)),
    ));
    entries
}

#[test]
fn regression_corpus_is_checked_in_and_classified() {
    let dir = corpus_dir();
    if std::env::var("UPDATE_CORPUS").is_ok() {
        std::fs::create_dir_all(&dir).expect("create corpus dir");
        for (name, text) in corpus_entries() {
            std::fs::write(dir.join(&name), &text).expect("write corpus file");
        }
    }
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|err| {
            panic!(
                "corpus dir {} missing ({err}); regenerate with UPDATE_CORPUS=1",
                dir.display()
            )
        })
        .map(|entry| entry.expect("dir entry").file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(
        names.len() >= corpus_entries().len(),
        "corpus incomplete: {} files, expected at least {}",
        names.len(),
        corpus_entries().len()
    );
    for name in names {
        let text = std::fs::read_to_string(dir.join(&name)).expect("read corpus file");
        let result = parse_query(&text);
        if name.starts_with("ok-") {
            let query = result.unwrap_or_else(|err| {
                panic!("corpus file {name} must parse:\n{}", err.render(&text))
            });
            // Valid queries round-trip through the canonical printer.
            let reprinted = query.to_string();
            let reparsed = parse_query(&reprinted).unwrap_or_else(|err| {
                panic!(
                    "corpus file {name}: reprint failed to parse\n{}",
                    err.render(&reprinted)
                )
            });
            assert_eq!(
                reparsed.normalized(),
                query.normalized(),
                "corpus file {name}: print/parse round-trip drifted"
            );
        } else if name.starts_with("err-") {
            assert!(
                result.is_err(),
                "corpus file {name} must be rejected, but parsed: {text}"
            );
        } else {
            panic!("corpus file {name} must be named ok-* or err-*");
        }
    }
}

#[test]
fn corpus_generation_is_deterministic() {
    assert_eq!(corpus_entries(), corpus_entries());
}
