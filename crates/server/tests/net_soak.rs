//! Nightly soak: hundreds of concurrent TCP clients hammer one server
//! for a sustained window. Asserts zero hard failures (the only
//! tolerated refusals are the typed, retryable shed/quota/backpressure
//! codes), a dense global commit sequence, and a final state equal to
//! the serial replay of every acked commit.
//!
//! Tier-1 runs a scaled-down smoke (16 clients, ~2s). The full soak is
//! `#[ignore]`d and runs in the nightly CI cron; size it with
//! `SOAK_CLIENTS` / `SOAK_SECS`.

use good_core::gen::{bench_scheme, random_workload};
use good_core::instance::Instance;
use good_core::program::{Env, Program, DEFAULT_FUEL};
use good_server::client::{Client, ClientError};
use good_server::net::{NetConfig, NetServer};
use good_server::{Server, ServerConfig};
use good_store::vfs::{FaultPlan, FaultVfs, Vfs};
use good_store::Store;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One client's life: connect (retrying typed sheds), loop
/// submit/query until the deadline, goodbye. Returns the acked commits
/// `(seq, program)` and how many typed refusals were ridden out.
fn client_life(
    addr: std::net::SocketAddr,
    programs: &[Program],
    deadline: Instant,
    typed_refusals: &AtomicU64,
) -> Result<Vec<(u64, Program)>, String> {
    let mut client = loop {
        match Client::connect(addr) {
            Ok(client) => break client,
            Err(ClientError::Rejected {
                code,
                retry_after_ms,
                ..
            }) if code.retryable() => {
                typed_refusals.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(retry_after_ms.max(1) as u64));
            }
            // Accept-queue overflow under 500-way connect storms
            // surfaces as a stream error; retry like a typed shed.
            Err(ClientError::Io(_)) | Err(ClientError::Disconnected) => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(other) => return Err(format!("connect: {other}")),
        }
        if Instant::now() >= deadline {
            return Ok(Vec::new());
        }
    };
    let mut committed = Vec::new();
    let mut index = 0;
    while Instant::now() < deadline {
        let program = &programs[index % programs.len()];
        index += 1;
        match client.submit_wait_retrying(program, 1_000) {
            Ok(ack) => {
                if let Some(seq) = ack.commit_seq {
                    committed.push((seq, program.clone()));
                }
            }
            Err(err) => return Err(format!("submit: {err}")),
        }
        if index % 7 == 0 {
            if let Err(err) = client.snapshot(None, false) {
                return Err(format!("snapshot: {err}"));
            }
        }
    }
    client.goodbye().map_err(|err| format!("goodbye: {err}"))?;
    Ok(committed)
}

fn run_soak(clients: usize, secs: u64, max_connections: usize) {
    let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(FaultPlan::reliable(23)));
    let store =
        Store::create_with_vfs(vfs, "/soak/db.journal", bench_scheme()).expect("create store");
    let server = Server::start(
        store,
        ServerConfig {
            queue_capacity: 256,
            max_batch: 32,
            ..ServerConfig::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let net = NetServer::start(
        server,
        listener,
        NetConfig {
            // Deliberately below the client count so admission-control
            // shedding actually exercises under load.
            max_connections,
            session_inflight: 8,
            retry_after_ms: 5,
            ..NetConfig::default()
        },
    )
    .expect("start net");
    let addr = net.local_addr();
    let deadline = Instant::now() + Duration::from_secs(secs);
    let typed_refusals = AtomicU64::new(0);

    let results: Vec<Result<Vec<(u64, Program)>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let programs = random_workload(1_000 + i as u64, 4);
                let typed_refusals = &typed_refusals;
                std::thread::Builder::new()
                    .name(format!("soak-client-{i}"))
                    .stack_size(256 * 1024)
                    .spawn_scoped(scope, move || {
                        client_life(addr, &programs, deadline, typed_refusals)
                    })
                    .expect("spawn client")
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut history: Vec<(u64, Program)> = Vec::new();
    let mut hard_failures = Vec::new();
    for result in results {
        match result {
            Ok(commits) => history.extend(commits),
            Err(err) => hard_failures.push(err),
        }
    }
    assert!(
        hard_failures.is_empty(),
        "{} hard failures (first: {})",
        hard_failures.len(),
        hard_failures[0]
    );

    let final_snapshot = net.server().snapshot();
    let store = net.shutdown().expect("drain after soak");

    // Dense global commit sequence: every acked seq 1..=N, no gaps, no
    // duplicates.
    history.sort_by_key(|(seq, _)| *seq);
    let seqs: Vec<u64> = history.iter().map(|(seq, _)| *seq).collect();
    assert_eq!(
        seqs,
        (1..=seqs.len() as u64).collect::<Vec<u64>>(),
        "commit sequence must be dense across {clients} clients"
    );

    // Serial replay oracle over the full soak history.
    let mut serial = Instance::new(bench_scheme());
    let mut env = Env::with_fuel(DEFAULT_FUEL);
    for (_, program) in &history {
        env.refuel();
        program.apply(&mut serial, &mut env).expect("serial replay");
    }
    assert_eq!(
        store.instance().to_dot("soak"),
        serial.to_dot("soak"),
        "soak result diverged from its serial witness"
    );
    assert!(final_snapshot.instance().isomorphic_to(store.instance()));
    eprintln!(
        "soak: {clients} clients, {secs}s, {} commits, {} typed refusals ridden out",
        seqs.len(),
        typed_refusals.load(Ordering::Relaxed)
    );
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Tier-1 smoke: small enough to stay in the default test budget.
#[test]
fn soak_smoke_sixteen_clients() {
    run_soak(16, 2, 12);
}

/// The nightly soak (`cargo test --workspace --release -- --ignored`):
/// 500 clients for 60 seconds against a 256-connection admission
/// ceiling — every error must be a typed, retryable shed.
#[test]
#[ignore = "nightly: 500-client 60s soak"]
fn nightly_soak_five_hundred_clients() {
    run_soak(
        env_usize("SOAK_CLIENTS", 500),
        env_usize("SOAK_SECS", 60) as u64,
        256,
    );
}
