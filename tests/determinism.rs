//! Determinism and invariant-preservation properties.
//!
//! The paper: "All operations of the language are deterministic up to
//! the particular choice of new objects." We check that running any
//! operation sequence twice from equal instances yields isomorphic
//! results, and that random operation sequences can never drive an
//! instance out of its invariants.

use good::model::gen::{random_instance, GenConfig};
use good::model::instance::Instance;
use good::model::label::Label;
use good::model::ops::{Abstraction, EdgeAddition, NodeAddition, NodeDeletion};
use good::model::pattern::Pattern;
use good::model::program::{Env, Operation, Program};
use proptest::prelude::*;

/// A small op-sequence generator over the bench scheme.
#[derive(Debug, Clone)]
enum OpSpec {
    TagInfos(u8),
    LinkTagged(u8),
    DeleteNamed(u8),
    AbstractLinks(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<OpSpec>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..5).prop_map(OpSpec::TagInfos),
            (0u8..5).prop_map(OpSpec::LinkTagged),
            (0u8..20).prop_map(OpSpec::DeleteNamed),
            (0u8..5).prop_map(OpSpec::AbstractLinks),
        ],
        1..6,
    )
}

fn to_operation(spec: &OpSpec) -> Operation {
    match spec {
        OpSpec::TagInfos(k) => {
            let mut p = Pattern::new();
            let info = p.node("Info");
            let date = p.node("Date");
            p.edge(info, "created", date);
            Operation::NodeAdd(NodeAddition::new(
                p,
                format!("Tag{k}").as_str(),
                [(Label::new(format!("of{k}")), info)],
            ))
        }
        OpSpec::LinkTagged(k) => {
            let mut p = Pattern::new();
            let tag = p.node(format!("Tag{k}").as_str());
            let info = p.node("Info");
            p.edge(tag, format!("of{k}").as_str(), info);
            let other = p.node("Info");
            p.edge(info, "links-to", other);
            Operation::EdgeAdd(EdgeAddition::multivalued(
                p,
                tag,
                format!("sees{k}").as_str(),
                other,
            ))
        }
        OpSpec::DeleteNamed(k) => {
            let mut p = Pattern::new();
            let info = p.node("Info");
            let name = p.printable("String", format!("info-{k}"));
            p.edge(info, "name", name);
            Operation::NodeDel(NodeDeletion::new(p, info))
        }
        OpSpec::AbstractLinks(k) => {
            let mut p = Pattern::new();
            let info = p.node("Info");
            let date = p.node("Date");
            p.edge(info, "created", date);
            Operation::Abstract(Abstraction::new(
                p,
                info,
                format!("Grp{k}").as_str(),
                format!("member{k}").as_str(),
                "links-to",
            ))
        }
    }
}

fn run(specs: &[OpSpec], db: &mut Instance) {
    // Seed the Tag classes first so LinkTagged patterns always validate
    // regardless of generated order.
    let seed_tags = (0..5).map(|k| to_operation(&OpSpec::TagInfos(k)));
    let program = Program::from_ops(seed_tags.chain(specs.iter().map(to_operation)));
    program.apply(db, &mut Env::new()).expect("program applies");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn same_program_twice_gives_isomorphic_results(
        seed in 0u64..500,
        specs in arb_ops(),
    ) {
        let config = GenConfig { infos: 12, avg_links: 1.5, distinct_dates: 3, seed };
        let mut first = random_instance(&config);
        let mut second = random_instance(&config);
        run(&specs, &mut first);
        run(&specs, &mut second);
        prop_assert!(first.isomorphic_to(&second));
    }

    #[test]
    fn invariants_survive_random_programs(
        seed in 0u64..500,
        specs in arb_ops(),
    ) {
        let mut db = random_instance(&GenConfig {
            infos: 12,
            avg_links: 1.5,
            distinct_dates: 3,
            seed,
        });
        run(&specs, &mut db);
        db.validate().expect("invariants hold");
    }

    #[test]
    fn operations_are_idempotent_where_the_paper_says_so(
        seed in 0u64..500,
    ) {
        // NA, EA and AB re-applied must not change the instance (up to
        // isomorphism); deletions trivially so on a fixed pattern.
        let mut db = random_instance(&GenConfig {
            infos: 10,
            avg_links: 1.5,
            distinct_dates: 3,
            seed,
        });
        let specs = [OpSpec::TagInfos(0), OpSpec::LinkTagged(0), OpSpec::AbstractLinks(1)];
        run(&specs, &mut db);
        let snapshot = db.clone();
        run(&specs, &mut db);
        prop_assert!(db.isomorphic_to(&snapshot));
    }
}

#[test]
fn method_calls_are_deterministic() {
    // The transitive-closure method on equal random instances yields
    // isomorphic results — determinism through the whole frame
    // machinery, recursion included.
    use good::model::macros::recursion::transitive_closure_method;
    use good::model::method::execute_call;
    for seed in 0..5 {
        let config = GenConfig {
            infos: 10,
            avg_links: 1.5,
            distinct_dates: 3,
            seed,
        };
        let run = || {
            let mut db = random_instance(&config);
            let (method, call) = transitive_closure_method("Info", "links-to", "rec-links-to");
            let mut env = Env::with_fuel(10_000_000);
            env.register(method);
            execute_call(&call, &mut db, &mut env).unwrap();
            db
        };
        assert!(run().isomorphic_to(&run()), "seed {seed}");
    }
}

#[test]
fn figure_programs_are_deterministic() {
    let build = || {
        let (mut db, _) = good::hypermedia::build_instance();
        good::hypermedia::figures::fig6_node_addition()
            .apply(&mut db)
            .unwrap();
        good::hypermedia::figures::fig8_node_addition()
            .apply(&mut db)
            .unwrap();
        db
    };
    assert!(build().isomorphic_to(&build()));
}
